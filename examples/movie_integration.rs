//! Integrate a curated movie KB with a large catalogue, beat the label
//! baseline, and publish `owl:sameAs` links.
//!
//! This is the paper's yago–IMDb use case (§6.4) end to end: the curated
//! side stores person→movie facts, the catalogue stores the inverted
//! movie→person relations; a quarter of the labels differ, which caps the
//! exact-label baseline's recall — PARIS recovers those entities through
//! shared relational structure, then the alignment is serialized as
//! N-Triples `owl:sameAs` statements ready to ship.
//!
//! Run: `cargo run --release --example movie_integration`

use paris_repro::baselines::label_baseline;
use paris_repro::datagen::movies::{generate, MoviesConfig};
use paris_repro::eval::{evaluate_instances, Counts};
use paris_repro::paris::{Aligner, ParisConfig};
use paris_repro::rdf::ntriples;

fn main() {
    let pair = generate(&MoviesConfig::default());
    println!(
        "curated:   {}\ncatalogue: {}",
        paris_repro::kb::KbStats::of(&pair.kb1),
        paris_repro::kb::KbStats::of(&pair.kb2)
    );

    // ---- label baseline --------------------------------------------------
    let baseline = label_baseline(&pair.kb1, &pair.kb2);
    let gold: std::collections::HashSet<(&str, &str)> = pair
        .gold
        .instances
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let correct = baseline
        .pairs
        .iter()
        .filter(|&&(e1, e2)| match (pair.kb1.iri(e1), pair.kb2.iri(e2)) {
            (Some(a), Some(b)) => gold.contains(&(a.as_str(), b.as_str())),
            _ => false,
        })
        .count();
    let base_counts = Counts::new(
        correct,
        baseline.pairs.len() - correct,
        gold.len() - correct,
    );
    println!("\nlabel baseline: {}", base_counts.summary());

    // ---- PARIS ------------------------------------------------------------
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let paris_counts = evaluate_instances(&result, &pair.gold);
    println!("PARIS:          {}", paris_counts.summary());
    assert!(
        paris_counts.f1() > base_counts.f1(),
        "PARIS must beat the baseline (paper Table 5)"
    );

    // ---- publish the links -------------------------------------------------
    let links = result.sameas_triples(0.5);
    let doc = ntriples::to_string(&links);
    println!("\n{} owl:sameAs links; first three:", links.len());
    for line in doc.lines().take(3) {
        println!("  {line}");
    }

    let out = std::env::temp_dir().join("paris_movie_links.nt");
    std::fs::write(&out, &doc).expect("write links file");
    println!("\nfull link set written to {}", out.display());
}
