//! Compare literal-similarity functions on dirty catalogue data.
//!
//! §5.3 of the paper: literal equivalence is the one application-dependent
//! ingredient of PARIS. This example runs the restaurant benchmark (whose
//! phone numbers are systematically reformatted, §6.3) under every
//! similarity function shipped in `paris-literals` and prints the
//! precision/recall trade-off each one buys — the experiment you would run
//! when tuning PARIS for a new dataset pair.
//!
//! Run: `cargo run --release --example literal_similarity_tuning`

use paris_repro::datagen::restaurants::{generate, RestaurantsConfig};
use paris_repro::eval::evaluate_instances;
use paris_repro::literals::LiteralSimilarity;
use paris_repro::paris::{Aligner, ParisConfig};

fn main() {
    let pair = generate(&RestaurantsConfig::default());

    let candidates: Vec<(&str, LiteralSimilarity)> = vec![
        ("identity (paper default)", LiteralSimilarity::Identity),
        ("normalized (paper §6.3)", LiteralSimilarity::Normalized),
        (
            "edit distance ≥ 0.8",
            LiteralSimilarity::EditDistance {
                min_similarity: 0.8,
            },
        ),
        ("token sort", LiteralSimilarity::TokenSort),
        (
            "numeric ±5%",
            LiteralSimilarity::NumericProportional { tolerance: 0.05 },
        ),
    ];

    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "literal similarity", "P", "R", "F", "#matched", "iters"
    );
    for (label, sim) in candidates {
        let config = ParisConfig::default().with_literal_similarity(sim);
        let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
        let counts = evaluate_instances(&result, &pair.gold);
        println!(
            "{label:<28} {:>7.1}% {:>7.1}% {:>7.1}% {:>9} {:>7}",
            counts.precision() * 100.0,
            counts.recall() * 100.0,
            counts.f1() * 100.0,
            result.instance_pairs().len(),
            result.iterations.len(),
        );
    }

    println!("\nedit distance recovers typo'd names that identity misses;");
    println!("normalized fixes the 213/467-1108 vs 213-467-1108 phones (paper §6.3).");
}
