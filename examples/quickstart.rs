//! Quickstart: align two tiny hand-written ontologies.
//!
//! This is the paper's introductory scenario in miniature: two knowledge
//! bases describe overlapping people with *entirely different* vocabularies
//! (relation and class names share nothing), and PARIS discovers the
//! instance equivalences, the relation inclusions, and the class inclusions
//! in one run — no training data, no tuning.
//!
//! Run: `cargo run --release --example quickstart`

use paris_repro::kb::KbBuilder;
use paris_repro::paris::{Aligner, ParisConfig};
use paris_repro::rdf::Literal;

fn main() {
    // ---- ontology 1: a small curated KB --------------------------------
    let mut a = KbBuilder::new("curated");
    for (person, email, city) in [
        ("alice", "alice@example.org", "paris"),
        ("bob", "bob@example.org", "paris"),
        ("carla", "carla@example.org", "lyon"),
    ] {
        let p = format!("http://curated.org/{person}");
        a.add_type(p.as_str(), "http://curated.org/Person");
        a.add_literal_fact(
            p.as_str(),
            "http://curated.org/email",
            Literal::plain(email),
        );
        a.add_fact(
            p.as_str(),
            "http://curated.org/livesIn",
            format!("http://curated.org/{city}"),
        );
    }
    a.add_literal_fact(
        "http://curated.org/paris",
        "http://curated.org/name",
        Literal::plain("Paris"),
    );
    a.add_literal_fact(
        "http://curated.org/lyon",
        "http://curated.org/name",
        Literal::plain("Lyon"),
    );
    a.add_type("http://curated.org/paris", "http://curated.org/City");
    a.add_type("http://curated.org/lyon", "http://curated.org/City");

    // ---- ontology 2: an extracted KB with different design --------------
    let mut b = KbBuilder::new("extracted");
    for (id, email, city) in [
        ("u17", "alice@example.org", "c1"),
        ("u42", "bob@example.org", "c1"),
        ("u99", "carla@example.org", "c2"),
        ("u07", "dave@example.org", "c2"), // only in this ontology
    ] {
        let p = format!("http://extracted.net/{id}");
        b.add_type(p.as_str(), "http://extracted.net/Agent");
        b.add_literal_fact(
            p.as_str(),
            "http://extracted.net/mbox",
            Literal::plain(email),
        );
        // Inverted direction: city → resident.
        b.add_fact(
            format!("http://extracted.net/{city}"),
            "http://extracted.net/resident",
            p.as_str(),
        );
    }
    b.add_literal_fact(
        "http://extracted.net/c1",
        "http://extracted.net/label",
        Literal::plain("Paris"),
    );
    b.add_literal_fact(
        "http://extracted.net/c2",
        "http://extracted.net/label",
        Literal::plain("Lyon"),
    );
    b.add_type("http://extracted.net/c1", "http://extracted.net/Settlement");
    b.add_type("http://extracted.net/c2", "http://extracted.net/Settlement");

    // ---- align ----------------------------------------------------------
    let (kb1, kb2) = (a.build(), b.build());
    let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();

    println!("converged after {} iterations\n", result.iterations.len());

    println!("instance alignments (maximal assignment):");
    for (x, x2, p) in result.instance_pairs() {
        println!(
            "  {:<28} ≡ {:<28} {p:.2}",
            kb1.iri(x).expect("instances have IRIs").as_str(),
            kb2.iri(x2).expect("instances have IRIs").as_str(),
        );
    }

    println!("\nrelation inclusions (curated ⊆ extracted, score ≥ 0.3):");
    for (sub, sup, p) in result.relation_alignments_1to2(0.3) {
        println!("  {sub:<12} ⊆ {sup:<12} {p:.2}");
    }

    println!("\nclass inclusions (score ≥ 0.3):");
    for score in result.classes.above_1to2(0.3) {
        println!(
            "  {:<10} ⊆ {:<12} {:.2}",
            kb1.iri(score.sub).expect("classes have IRIs").local_name(),
            kb2.iri(score.sup).expect("classes have IRIs").local_name(),
            score.prob,
        );
    }
}
