//! Align the OAEI-style person benchmark and inspect the result in depth.
//!
//! Mirrors the paper's §6.2 evaluation workflow: generate the benchmark
//! pair (500 matched people, disjoint vocabularies on the two sides), run
//! PARIS to convergence, then score instances / classes / relations
//! against the gold standard and print the per-iteration progress.
//!
//! Run: `cargo run --release --example benchmark_alignment`

use paris_repro::datagen::persons::{generate, PersonsConfig};
use paris_repro::eval::{evaluate_classes_1to2, evaluate_instances, evaluate_relations};
use paris_repro::paris::{Aligner, ParisConfig};

fn main() {
    let pair = generate(&PersonsConfig::default());
    println!(
        "generated: {} / {}",
        paris_repro::kb::KbStats::of(&pair.kb1),
        paris_repro::kb::KbStats::of(&pair.kb2)
    );

    let aligner = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default());
    let result = aligner.run_with_progress(|stats| {
        println!(
            "iteration {}: {} instances assigned, {:.1}% changed, {:.2}s",
            stats.iteration,
            stats.assigned_instances,
            stats.changed_fraction * 100.0,
            stats.instance_seconds + stats.subrelation_seconds,
        );
    });

    println!(
        "\ninstances: {}",
        evaluate_instances(&result, &pair.gold).summary()
    );
    println!(
        "classes:   {}",
        evaluate_classes_1to2(&result, &pair.gold, 0.4).summary()
    );
    let (rel_12, rel_21) = evaluate_relations(&result, &pair.gold);
    println!(
        "relations: {} (→) / {} (←)",
        rel_12.counts.summary(),
        rel_21.counts.summary()
    );

    println!("\ntop relation alignments:");
    for (sub, sup, p) in result.relation_alignments_1to2(0.5).into_iter().take(8) {
        println!("  {sub:<14} ⊆ {sup:<22} {p:.2}");
    }

    // Spot-check one person end to end.
    let aligned = result
        .instance_alignment_by_iri("http://person1.test/p0")
        .expect("p0 must align");
    println!("\np0 aligned to {aligned}");
    assert_eq!(aligned.as_str(), "http://person2.test/q0");
}
