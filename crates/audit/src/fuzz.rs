//! Deterministic, structure-aware fuzzing of the workspace decoders.
//!
//! Every byte format the workspace accepts from disk or the network —
//! v1 snapshot payloads, v2 section-table snapshots, deltas,
//! N-Triples, HTTP requests, JSON — has a fuzz target here. The
//! harness is seed-reproducible: the same `--seed`/`--iters` replays
//! the identical mutation stream (the RNG is the in-workspace
//! xoshiro256**, and nothing reads the clock), so a CI failure
//! reproduces locally with one command.
//!
//! The contract under test is *no panic, Err-not-abort*: a decoder
//! handed garbage must return its error type, never unwind. Panics
//! are caught, the offending input is greedily minimized, and the
//! caller writes it to `tests/corpus/<target>/` where the corpus
//! replay test keeps it as a permanent regression.
//!
//! Mutations: bit flips, random byte writes, truncation, random
//! insertion, cross-corpus splicing, and — for the v2 format — two
//! structure-aware tampers: rewriting section-table entry fields
//! (id/offset/length/checksum) and corrupting section *data* while
//! fixing up the entry checksum so the corruption survives the
//! checksum gate and reaches the layout validator.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Every fuzz target name, in CLI order.
pub const TARGETS: &[&str] = &[
    "snapshot",
    "snapshot-v2",
    "delta",
    "ntriples",
    "http",
    "json",
];

/// One panicking input found by the fuzzer (already minimized).
#[derive(Debug)]
pub struct Crash {
    /// The minimized panicking input.
    pub input: Vec<u8>,
    /// Iteration (0-based) at which the original input was generated.
    pub iteration: u64,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// Summary of one fuzz run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Target name.
    pub target: String,
    /// RNG seed.
    pub seed: u64,
    /// Mutation iterations requested.
    pub iters: u64,
    /// Total decoder executions (iterations plus minimization).
    pub executions: u64,
    /// Panicking inputs, minimized. Empty means the run passed.
    pub crashes: Vec<Crash>,
}

/// Feeds `bytes` to the named decoder. `Err` is the decoder's own
/// rejection (fine); a panic is the bug the harness exists to catch.
pub fn decode(target: &str, bytes: &[u8]) -> Result<(), String> {
    match target {
        "snapshot" => {
            // Framed path (checksum gate) and the bare payload decoder
            // (reaches the guts even when the frame checksum is stale).
            let framed = paris_kb::snapshot::read_payload(&mut &bytes[..])
                .map_err(|e| e.to_string())
                .and_then(|(_, payload)| {
                    let mut r = paris_kb::snapshot::PayloadReader::new(&payload);
                    paris_kb::snapshot::decode_kb(&mut r)
                        .map(drop)
                        .map_err(|e| e.to_string())
                });
            let mut r = paris_kb::snapshot::PayloadReader::new(bytes);
            let bare = paris_kb::snapshot::decode_kb(&mut r)
                .map(drop)
                .map_err(|e| e.to_string());
            framed.or(bare)
        }
        "snapshot-v2" => {
            let verified = paris_kb::SnapshotArena::from_bytes(bytes.to_vec())
                .and_then(|arena| {
                    let layout =
                        paris_kb::KbLayout::validate(&arena, paris_kb::snapshot_v2::KB1_BASE)?;
                    exercise_view(&arena, &layout);
                    Ok(())
                })
                .map_err(|e| e.to_string());
            // Deferred path: skips the checksum pass, so tampered bytes
            // reach the structural validator and the view accessors.
            let deferred = paris_kb::SnapshotArena::from_bytes_deferred(bytes.to_vec())
                .and_then(|arena| {
                    let layout =
                        paris_kb::KbLayout::validate(&arena, paris_kb::snapshot_v2::KB1_BASE)?;
                    exercise_view(&arena, &layout);
                    Ok(())
                })
                .map_err(|e| e.to_string());
            verified.or(deferred)
        }
        "delta" => {
            let framed = paris_kb::snapshot::read_payload(&mut &bytes[..])
                .map_err(|e| e.to_string())
                .and_then(|(_, payload)| {
                    let mut r = paris_kb::snapshot::PayloadReader::new(&payload);
                    paris_kb::KbDelta::decode(&mut r)
                        .map(drop)
                        .map_err(|e| e.to_string())
                });
            let mut r = paris_kb::snapshot::PayloadReader::new(bytes);
            let bare = paris_kb::KbDelta::decode(&mut r)
                .map(drop)
                .map_err(|e| e.to_string());
            framed.or(bare)
        }
        "ntriples" => {
            let sequential = match std::str::from_utf8(bytes) {
                Ok(text) => paris_rdf::ntriples::Parser::parse_all(text)
                    .map(drop)
                    .map_err(|e| e.to_string()),
                Err(e) => Err(e.to_string()),
            };
            let opts = paris_rdf::ntriples::ChunkOptions {
                threads: 2,
                chunk_bytes: 4096,
                quads: true,
            };
            let chunked = paris_rdf::ntriples::parse_chunked(bytes, &opts, |_| Ok(()))
                .map(drop)
                .map_err(|e| e.to_string());
            sequential.and(chunked)
        }
        "http" => {
            let mut reader = std::io::BufReader::new(bytes);
            paris_server::http::read_request(&mut reader)
                .map(|req| {
                    // The query decoder runs on every request path.
                    let _ = paris_server::http::percent_decode(&req.path);
                })
                .map_err(|e| format!("{e:?}"))
        }
        "json" => match std::str::from_utf8(bytes) {
            Ok(text) => paris_client::json::parse(text).map(|v| {
                let _ = v.get("pairs").and_then(|p| p.as_array()).map(<[_]>::len);
                let _ = v.as_u64();
            }),
            Err(e) => Err(e.to_string()),
        },
        other => Err(format!("unknown fuzz target `{other}`")),
    }
}

/// Walks a validated v2 view the way real readers do — term decode,
/// IRI lookup, fact slices — so validator gaps surface as panics here
/// rather than in production.
fn exercise_view(arena: &paris_kb::SnapshotArena, layout: &paris_kb::KbLayout) {
    let view = layout.view(arena);
    let _ = view.name().len();
    let _ = (
        view.num_base_relations(),
        view.num_classes(),
        view.num_facts(),
    );
    for i in 0..view.num_entities().min(64) as u32 {
        let e = paris_kb::EntityId(i);
        let _ = view.kind(e);
        let term = view.term(e);
        let _ = view.iri_str(e);
        let _ = view.entity(&term);
    }
}

/// Canonical valid inputs for `target` — the corpus the mutators start
/// from, and the seed files `paris-audit corpus` checks in. Fully
/// deterministic (no clocks, no RNG).
pub fn seeds(target: &str) -> Vec<Vec<u8>> {
    match target {
        "snapshot" => vec![paris_kb::snapshot::kb_to_bytes(&sample_kb())],
        "snapshot-v2" => vec![paris_kb::snapshot_v2::kb_to_bytes_v2(&sample_kb())],
        "delta" => {
            let mut delta = paris_kb::KbDelta::new("sample");
            delta.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
            delta.add_literal_fact(
                "http://x/Elvis",
                "http://x/label",
                paris_rdf::term::Literal::plain("Elvis Presley"),
            );
            delta.remove_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
            vec![delta.to_bytes()]
        }
        "ntriples" => vec![
            concat!(
                "# sample corpus document\n",
                "<http://x/Elvis> <http://x/bornIn> <http://x/Tupelo> .\n",
                "<http://x/Elvis> <http://x/label> \"Elvis \\\"the King\\\" Presley\"@en .\n",
                "<http://x/Elvis> <http://x/age> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
                "_:b1 <http://x/knows> _:b2 .\n",
                "\n",
                "<http://x/caf\u{e9}> <http://x/label> \"na\u{ef}ve\" .\n",
            )
            .as_bytes()
            .to_vec(),
        ],
        "http" => vec![
            b"GET /v1/pairs?name=demo%20pair&limit=10 HTTP/1.1\r\nHost: localhost\r\n\r\n".to_vec(),
            b"POST /v1/batch HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 13\r\n\r\n{\"queries\":[]}".to_vec(),
        ],
        "json" => vec![
            r#"{"server_version":"0.1.0","pairs":[{"name":"alpha","format":2,"generation":3,"bytes":12345,"checksum":"00ffab"}],"note":"café 😀"}"#.as_bytes().to_vec(),
        ],
        _ => Vec::new(),
    }
}

fn sample_kb() -> paris_kb::Kb {
    let mut b = paris_kb::KbBuilder::new("sample");
    b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
    b.add_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
    b.add_fact("http://x/Elvis", "http://x/type", "http://x/Singer");
    b.build()
}

/// Runs `iters` mutation iterations against `target`, starting from
/// the built-in seeds plus `extra_corpus`. Deterministic for a given
/// `(target, seed, iters, extra_corpus)`.
pub fn run(
    target: &str,
    seed: u64,
    iters: u64,
    extra_corpus: &[Vec<u8>],
) -> Result<FuzzReport, String> {
    if !TARGETS.contains(&target) {
        return Err(format!(
            "unknown target `{target}` (expected one of: {})",
            TARGETS.join(", ")
        ));
    }
    let mut corpus = seeds(target);
    corpus.extend(extra_corpus.iter().cloned());
    if corpus.is_empty() {
        corpus.push(Vec::new());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = FuzzReport {
        target: target.to_owned(),
        seed,
        iters,
        executions: 0,
        crashes: Vec::new(),
    };
    // Panics are expected traffic here: silence the default hook's
    // backtrace spam for the duration of the run.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for iteration in 0..iters {
        let base_idx = (rng.next_u64() % corpus.len() as u64) as usize;
        let base = corpus.get(base_idx).cloned().unwrap_or_default();
        let input = mutate(&mut rng, base, &corpus, target == "snapshot-v2");
        report.executions += 1;
        if let Some(message) = panics(target, &input) {
            let minimized = minimize(target, input, &mut report.executions);
            report.crashes.push(Crash {
                input: minimized,
                iteration,
                message,
            });
            if report.crashes.len() >= 10 {
                break;
            }
        }
    }
    std::panic::set_hook(previous_hook);
    Ok(report)
}

/// Executes once, returning the panic message if the decoder unwound.
fn panics(target: &str, input: &[u8]) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| {
        let _ = decode(target, input);
    })) {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned()),
        ),
    }
}

/// Greedy ddmin-style shrink: repeatedly drop chunks (halving the
/// chunk size down to one byte) while the input still panics.
fn minimize(target: &str, mut input: Vec<u8>, executions: &mut u64) -> Vec<u8> {
    let mut budget = 512u64;
    let mut chunk = (input.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut start = 0;
        let mut shrunk = false;
        while start < input.len() && budget > 0 {
            let end = (start + chunk).min(input.len());
            let mut candidate = Vec::with_capacity(input.len() - (end - start));
            candidate.extend_from_slice(input.get(..start).unwrap_or_default());
            candidate.extend_from_slice(input.get(end..).unwrap_or_default());
            *executions += 1;
            budget -= 1;
            if panics(target, &candidate).is_some() {
                input = candidate;
                shrunk = true;
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        if !shrunk {
            chunk /= 2;
        }
    }
    input
}

/// Applies 1–4 random mutations to `base`.
fn mutate(rng: &mut StdRng, mut base: Vec<u8>, corpus: &[Vec<u8>], structured: bool) -> Vec<u8> {
    let rounds = 1 + rng.next_u64() % 4;
    for _ in 0..rounds {
        let choices = if structured { 8 } else { 6 };
        match rng.next_u64() % choices {
            0 => bit_flip(rng, &mut base),
            1 => byte_set(rng, &mut base),
            2 => truncate(rng, &mut base),
            3 => insert(rng, &mut base),
            4 => splice(rng, &mut base, corpus),
            5 => {
                // Duplicate a window in place (repeats sections/lines).
                if !base.is_empty() {
                    let start = (rng.next_u64() % base.len() as u64) as usize;
                    let len = ((rng.next_u64() % 64) + 1) as usize;
                    let window: Vec<u8> = base
                        .get(start..(start + len).min(base.len()))
                        .unwrap_or_default()
                        .to_vec();
                    base.splice(start..start, window);
                }
            }
            6 => tamper_v2_entry(rng, &mut base),
            _ => tamper_v2_data_with_checksum_fixup(rng, &mut base),
        }
    }
    base
}

fn bit_flip(rng: &mut StdRng, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let pos = (rng.next_u64() % buf.len() as u64) as usize;
    let bit = rng.next_u64() % 8;
    if let Some(b) = buf.get_mut(pos) {
        *b ^= 1 << bit;
    }
}

fn byte_set(rng: &mut StdRng, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let pos = (rng.next_u64() % buf.len() as u64) as usize;
    let value = (rng.next_u64() & 0xFF) as u8;
    if let Some(b) = buf.get_mut(pos) {
        *b = value;
    }
}

fn truncate(rng: &mut StdRng, buf: &mut Vec<u8>) {
    if buf.is_empty() {
        return;
    }
    let keep = (rng.next_u64() % (buf.len() as u64 + 1)) as usize;
    buf.truncate(keep);
}

fn insert(rng: &mut StdRng, buf: &mut Vec<u8>) {
    let pos = if buf.is_empty() {
        0
    } else {
        (rng.next_u64() % (buf.len() as u64 + 1)) as usize
    };
    let count = (rng.next_u64() % 16 + 1) as usize;
    let fresh: Vec<u8> = (0..count).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
    buf.splice(pos..pos, fresh);
}

fn splice(rng: &mut StdRng, buf: &mut Vec<u8>, corpus: &[Vec<u8>]) {
    let Some(donor) = corpus.get((rng.next_u64() % corpus.len().max(1) as u64) as usize) else {
        return;
    };
    if donor.is_empty() {
        return;
    }
    let from = (rng.next_u64() % donor.len() as u64) as usize;
    let len = ((rng.next_u64() % 128) + 1) as usize;
    let window = donor
        .get(from..(from + len).min(donor.len()))
        .unwrap_or_default()
        .to_vec();
    let at = if buf.is_empty() {
        0
    } else {
        (rng.next_u64() % (buf.len() as u64 + 1)) as usize
    };
    buf.splice(at..at.min(buf.len()), window);
}

/// v2 layout constants, mirrored from `paris_kb::snapshot_v2` (the
/// writer's framing is a stable on-disk format).
const V2_HEADER_LEN: usize = 24;
const V2_ENTRY_LEN: usize = 32;

fn v2_entry_count(buf: &[u8]) -> usize {
    if buf.len() < V2_HEADER_LEN {
        return 0;
    }
    let count = u32::from_le_bytes([
        buf.get(12).copied().unwrap_or(0),
        buf.get(13).copied().unwrap_or(0),
        buf.get(14).copied().unwrap_or(0),
        buf.get(15).copied().unwrap_or(0),
    ]) as usize;
    count.min(buf.len().saturating_sub(V2_HEADER_LEN) / V2_ENTRY_LEN)
}

/// Rewrites one section-table entry field (id/offset/length/checksum)
/// with a random value — the hostile-offset case the validator must
/// reject without panicking.
fn tamper_v2_entry(rng: &mut StdRng, buf: &mut [u8]) {
    let count = v2_entry_count(buf);
    if count == 0 {
        return;
    }
    let entry = V2_HEADER_LEN + ((rng.next_u64() % count as u64) as usize) * V2_ENTRY_LEN;
    let (field, width) = match rng.next_u64() % 4 {
        0 => (0usize, 4usize), // id
        1 => (8, 8),           // offset
        2 => (16, 8),          // length
        _ => (24, 8),          // checksum
    };
    let value = rng.next_u64().to_le_bytes();
    for (k, &v) in value.iter().take(width).enumerate() {
        if let Some(b) = buf.get_mut(entry + field + k) {
            *b = v;
        }
    }
}

/// Corrupts one byte of section *data* and rewrites the entry's
/// checksum to match, so the corruption passes the checksum gate and
/// exercises the structural validator and view accessors.
fn tamper_v2_data_with_checksum_fixup(rng: &mut StdRng, buf: &mut [u8]) {
    let count = v2_entry_count(buf);
    if count == 0 {
        return;
    }
    let entry = V2_HEADER_LEN + ((rng.next_u64() % count as u64) as usize) * V2_ENTRY_LEN;
    let field = |at: usize| -> u64 {
        let mut w = [0u8; 8];
        for (k, dst) in w.iter_mut().enumerate() {
            *dst = buf.get(entry + at + k).copied().unwrap_or(0);
        }
        u64::from_le_bytes(w)
    };
    let offset = field(8) as usize;
    let len = field(16) as usize;
    let Some(end) = offset
        .checked_add(len)
        .filter(|&e| e <= buf.len() && len > 0)
    else {
        return;
    };
    let pos = offset + (rng.next_u64() % len as u64) as usize;
    let value = (rng.next_u64() & 0xFF) as u8;
    if let Some(b) = buf.get_mut(pos) {
        *b = value;
    }
    let sum = paris_kb::snapshot_v2::checksum_v2(buf.get(offset..end).unwrap_or_default());
    for (k, &v) in sum.to_le_bytes().iter().enumerate() {
        if let Some(b) = buf.get_mut(entry + 24 + k) {
            *b = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_target_decodes_its_own_seeds() {
        for &target in TARGETS {
            for (i, seed) in seeds(target).iter().enumerate() {
                assert!(
                    decode(target, seed).is_ok(),
                    "{target} seed {i} should decode cleanly"
                );
            }
        }
    }

    #[test]
    fn runs_are_seed_reproducible() {
        for &target in TARGETS {
            let a = run(target, 7, 50, &[]).expect("run");
            let b = run(target, 7, 50, &[]).expect("run");
            assert_eq!(a.executions, b.executions, "{target}");
            assert_eq!(a.crashes.len(), b.crashes.len(), "{target}");
        }
    }

    #[test]
    fn smoke_iterations_find_no_panics() {
        for &target in TARGETS {
            let report = run(target, 0xC0FFEE, 300, &[]).expect("run");
            assert!(
                report.crashes.is_empty(),
                "{target}: {} crashes, first: {:?}",
                report.crashes.len(),
                report.crashes.first().map(|c| &c.message)
            );
        }
    }

    #[test]
    fn v2_entry_count_is_clamped() {
        let seed = seeds("snapshot-v2").remove(0);
        assert!(v2_entry_count(&seed) > 0);
        let mut hostile = seed.clone();
        if let Some(b) = hostile.get_mut(12) {
            *b = 0xFF;
        }
        assert!(v2_entry_count(&hostile) <= hostile.len() / V2_ENTRY_LEN);
        assert_eq!(v2_entry_count(&[]), 0);
    }
}
