//! # paris-audit — workspace invariant lints and decoder fuzzing
//!
//! The serving stack decodes bytes from disk, the network, and user
//! input; the aligner promises deterministic fixpoints. Those are
//! *invariants*, and this crate is the tool that keeps them true as
//! the codebase grows:
//!
//! * **Lints** ([`rules`]) — five custom static checks driven by the
//!   checked-in `audit.toml` allowlist, run as a hard CI gate
//!   (`cargo run -p paris-audit -- lint`). No `syn`, no registry: a
//!   [minimal lexer](lexer) blanks comments and literals, and the
//!   rules are token scans over the sanitized text with `file:line`
//!   diagnostics.
//! * **Fuzzing** ([`fuzz`]) — deterministic, corpus-seeded,
//!   structure-aware mutation of every untrusted decoder
//!   (`cargo run -p paris-audit -- fuzz <target> --seed N --iters N`),
//!   asserting *no panic, Err-not-abort*. Crashes are minimized and
//!   checked into `tests/corpus/` as permanent regressions.
//!
//! docs/CORRECTNESS.md is the narrative companion: the rule catalog,
//! the `audit.toml` format, and how to reproduce a CI fuzz failure.

#![forbid(unsafe_code)]

pub mod config;
pub mod fuzz;
pub mod lexer;
pub mod rules;
