//! A minimal Rust surface lexer for the audit rules.
//!
//! The workspace forbids external dependencies, so there is no `syn`;
//! the lint rules do not need a parse tree anyway — they match tokens.
//! What they *do* need is to never match inside comments, string
//! literals, or char literals (a doc comment mentioning `unwrap()` is
//! not a violation). [`scan`] produces a *sanitized* copy of the
//! source with the same byte length in which every comment and every
//! literal body has been blanked with spaces (newlines are preserved,
//! so offsets and line numbers carry over unchanged). Rules then run
//! plain substring scans over the sanitized text and read the original
//! text only for comment-borne directives (`// SAFETY:`,
//! `// audit:allow(...)`).
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any number of `#`s), byte
//! and byte-raw strings, char literals (including escapes), and the
//! char-versus-lifetime ambiguity (`'a'` blanks, `'a` does not).

/// The sanitized view of one source file.
pub struct Scan {
    /// Same byte length as the input; comments and literal bodies are
    /// spaces, newlines are kept.
    pub sanitized: String,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Blanks `out[i]` unless it is a newline (which must survive so line
/// numbers stay aligned with the original).
fn blank(out: &mut [u8], i: usize) {
    if let Some(b) = out.get_mut(i) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Lexes `src` and blanks everything the rules must not match in.
pub fn scan(src: &str) -> Scan {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        let prev_ident = i > 0 && bytes.get(i - 1).copied().is_some_and(is_ident);
        match b {
            b'/' if next == Some(b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(&mut out, i);
                    i += 1;
                }
            }
            b'/' if next == Some(b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank(&mut out, i);
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if !prev_ident => {
                // Possible raw/byte literal prefix: r", r#", b", br", b'.
                let mut j = i + 1;
                if b == b'b' && bytes.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                let raw = hashes > 0 || bytes.get(i + 1) == Some(&b'r') || b == b'r';
                match bytes.get(j) {
                    Some(&b'"') if raw || b == b'b' => {
                        i = blank_string(&mut out, bytes, j, if raw { Some(hashes) } else { None });
                    }
                    Some(&b'\'') if b == b'b' && hashes == 0 => {
                        i = blank_char(&mut out, bytes, j);
                    }
                    _ => i += 1,
                }
            }
            b'"' => {
                i = blank_string(&mut out, bytes, i, None);
            }
            b'\'' if !prev_ident => {
                i = maybe_blank_char_or_lifetime(&mut out, bytes, i);
            }
            _ => i += 1,
        }
    }
    Scan {
        sanitized: String::from_utf8(out).unwrap_or_default(),
    }
}

/// Blanks a string literal whose opening `"` is at `open`. For raw
/// strings, `raw_hashes` is the number of `#`s that must follow the
/// closing quote. Returns the index just past the literal.
fn blank_string(out: &mut [u8], bytes: &[u8], open: usize, raw_hashes: Option<usize>) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match (bytes[i], raw_hashes) {
            (b'\\', None) => {
                blank(out, i);
                blank(out, i + 1);
                i += 2;
            }
            (b'"', None) => return i + 1,
            (b'"', Some(h)) => {
                let tail = bytes.get(i + 1..i + 1 + h).unwrap_or_default();
                if tail.len() == h && tail.iter().all(|&c| c == b'#') {
                    return i + 1 + h;
                }
                blank(out, i);
                i += 1;
            }
            _ => {
                blank(out, i);
                i += 1;
            }
        }
    }
    i
}

/// Blanks a char literal whose opening `'` is at `open`; returns the
/// index just past it.
fn blank_char(out: &mut [u8], bytes: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                blank(out, i);
                blank(out, i + 1);
                i += 2;
            }
            b'\'' => return i + 1,
            _ => {
                blank(out, i);
                i += 1;
            }
        }
    }
    i
}

/// Disambiguates `'` at `open`: a char literal is blanked, a lifetime
/// is left alone. Returns the index to resume at.
fn maybe_blank_char_or_lifetime(out: &mut [u8], bytes: &[u8], open: usize) -> usize {
    match bytes.get(open + 1) {
        Some(&b'\\') => blank_char(out, bytes, open),
        Some(&c) if is_ident(c) => {
            // `'x'` is a char; `'x` (no close after one char) is a
            // lifetime. Multi-byte scalars ('é') always close.
            let char_len = if c < 0x80 {
                1
            } else if c < 0xE0 {
                2
            } else if c < 0xF0 {
                3
            } else {
                4
            };
            if bytes.get(open + 1 + char_len) == Some(&b'\'') {
                blank_char(out, bytes, open)
            } else {
                open + 1
            }
        }
        Some(_) => blank_char(out, bytes, open),
        None => open + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let s = scan("let a = 1; // unwrap()\n/* expect( */ let b;");
        assert_eq!(s.sanitized, "let a = 1;            \n              let b;");
    }

    #[test]
    fn blanks_nested_block_comments() {
        let s = scan("a /* x /* y */ z */ b");
        assert_eq!(s.sanitized, "a                   b");
    }

    #[test]
    fn blanks_string_bodies_but_keeps_quotes() {
        let s = scan(r#"err("unwrap() failed")"#);
        assert_eq!(s.sanitized, r#"err("               ")"#);
    }

    #[test]
    fn handles_escaped_quotes() {
        let s = scan(r#"x("a\"b") + y"#);
        assert_eq!(s.sanitized, r#"x("    ") + y"#);
    }

    #[test]
    fn handles_raw_and_byte_strings() {
        let s = scan(r##"a(r#"panic!"#) + b(b"[0]") + c"##);
        assert_eq!(s.sanitized, r##"a(r#"      "#) + b(b"   ") + c"##);
    }

    #[test]
    fn distinguishes_chars_from_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { m('['); }");
        assert_eq!(s.sanitized, "fn f<'a>(x: &'a str) { m(' '); }");
        let s = scan(r"let c = '\n'; let l: &'static str;");
        assert_eq!(s.sanitized, "let c = '  '; let l: &'static str;");
    }

    #[test]
    fn preserves_newlines_inside_literals() {
        let s = scan("let d = \"a\nb\";");
        assert_eq!(s.sanitized, "let d = \" \n \";");
        assert_eq!(s.sanitized.len(), "let d = \"a\nb\";".len());
    }

    #[test]
    fn multibyte_scalars_blank_to_ascii_spaces() {
        let s = scan("let x = \"héllo\"; let c = 'é';");
        assert!(s.sanitized.is_ascii());
        assert_eq!(s.sanitized.len(), "let x = \"héllo\"; let c = 'é';".len());
    }
}
