//! The workspace invariant lints.
//!
//! Five rules, all driven by the checked-in `audit.toml` allowlist
//! (docs/CORRECTNESS.md is the rule catalog):
//!
//! * `unsafe-inventory` — `unsafe` may appear only in allowlisted
//!   files, and every occurrence needs a nearby `// SAFETY:` comment.
//! * `no-panic-decode` — decoder modules may not `unwrap()`,
//!   `expect(…)`, `panic!` (or its siblings), or bare-index a slice.
//! * `checked-casts-in-decoders` — decoder modules may not use bare
//!   `as usize` on wire-derived values; the checked `paris_kb::wire`
//!   helpers exist for exactly this.
//! * `no-wallclock-in-deterministic` — the aligner fixpoint and
//!   ingest passes may not read `Instant::now` / `SystemTime::now`
//!   directly (the sanctioned stopwatch is `paris_obs::span`).
//! * `no-lock-across-call` — a `let`-bound `.lock()` / `.read()` /
//!   `.write()` guard may not be live across a call into the
//!   configured I/O function list (heuristic; see below).
//!
//! Rules scan the [`lexer`]-sanitized text, so comments
//! and string literals never trigger them. `#[cfg(test)]` regions are
//! skipped (tests are allowed to be blunt). A finding on one specific
//! line can be waived in place with
//! `// audit:allow(rule-name): reason` on the same line or the line
//! above — the reason is mandatory prose for the reviewer, and the
//! directive is deliberately loud in the diff.

use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer;

/// One rule violation, pointing at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable diagnosis.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints every `.rs` file under `root` (skipping `target/`, `.git/`,
/// and the configured `[lint] exclude` prefixes). Findings are sorted
/// by file then line.
pub fn lint_root(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let exclude = cfg.list("lint", "exclude");
    let mut files = Vec::new();
    collect_rs_files(root, root, &exclude, &mut files)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        findings.extend(lint_source(&rel, &src, cfg));
    }
    Ok(findings)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if exclude
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(root, &path, exclude, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file's source text. Exposed separately so the fixture
/// self-tests can drive the engine without touching the filesystem.
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let scan = lexer::scan(src);
    let ctx = FileCtx {
        rel,
        orig_lines: src.lines().collect(),
        san_lines: scan.sanitized.lines().map(str::to_owned).collect(),
        test_line: test_region_lines(&scan.sanitized),
    };
    let mut findings = Vec::new();
    rule_unsafe_inventory(&ctx, cfg, &mut findings);
    rule_no_panic_decode(&ctx, cfg, &mut findings);
    rule_checked_casts(&ctx, cfg, &mut findings);
    rule_no_wallclock(&ctx, cfg, &mut findings);
    rule_no_lock_across_call(&ctx, cfg, &mut findings);
    findings
}

struct FileCtx<'a> {
    rel: &'a str,
    orig_lines: Vec<&'a str>,
    san_lines: Vec<String>,
    /// Per 0-based line: inside a `#[cfg(test)]` region?
    test_line: Vec<bool>,
}

impl FileCtx<'_> {
    /// Is finding `rule` waived at 1-based `line`? The directive may
    /// sit on the flagged line or the one above.
    fn allowed(&self, rule: &str, line: usize) -> bool {
        let needle = format!("audit:allow({rule})");
        [line, line.saturating_sub(1)]
            .iter()
            .filter(|&&l| l >= 1)
            .filter_map(|&l| self.orig_lines.get(l - 1))
            .any(|text| text.contains(&needle))
    }

    fn is_test_line(&self, line: usize) -> bool {
        self.test_line.get(line - 1).copied().unwrap_or(false)
    }

    /// Non-test, sanitized lines as (1-based line, text).
    fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.san_lines
            .iter()
            .enumerate()
            .map(|(i, l)| (i + 1, l.as_str()))
            .filter(|(n, _)| !self.is_test_line(*n))
    }
}

/// Marks every line covered by a `#[cfg(test)]` attribute's item (the
/// brace-matched block that follows it).
fn test_region_lines(sanitized: &str) -> Vec<bool> {
    let bytes = sanitized.as_bytes();
    let num_lines = sanitized.lines().count();
    let mut test = vec![false; num_lines];
    let line_of = |pos: usize| bytes.iter().take(pos).filter(|&&b| b == b'\n').count();
    let mut search = 0;
    while let Some(hit) = sanitized.get(search..).and_then(|s| s.find("#[cfg(test)]")) {
        let attr = search + hit;
        search = attr + 1;
        let Some(open_rel) = sanitized.get(attr..).and_then(|s| s.find('{')) else {
            continue;
        };
        let open = attr + open_rel;
        let mut depth = 0i64;
        let mut close = bytes.len();
        for (i, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        for flag in test.iter_mut().take(line_of(close) + 1).skip(line_of(attr)) {
            *flag = true;
        }
    }
    test
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Occurrences of `word` in `line` with identifier boundaries on both
/// sides, as byte offsets.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(hit) = line.get(from..).and_then(|s| s.find(word)) {
        let at = from + hit;
        from = at + word.len().max(1);
        let before_ok = line
            .get(..at)
            .and_then(|s| s.chars().last())
            .is_none_or(|c| !is_ident(c));
        let after_ok = line
            .get(at + word.len()..)
            .and_then(|s| s.chars().next())
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

// ----------------------------------------------------------------------
// Rule: unsafe-inventory
// ----------------------------------------------------------------------

fn rule_unsafe_inventory(ctx: &FileCtx<'_>, cfg: &Config, findings: &mut Vec<Finding>) {
    const RULE: &str = "unsafe-inventory";
    let allow_files = cfg.list(RULE, "allow-files");
    let lookback = cfg.int(RULE, "safety-comment-lines", 8).max(1) as usize;
    let allowed_file = allow_files.iter().any(|f| f == ctx.rel);
    for (line_no, line) in ctx
        .san_lines
        .iter()
        .enumerate()
        .map(|(i, l)| (i + 1, l.as_str()))
    {
        for _ in word_positions(line, "unsafe") {
            if ctx.allowed(RULE, line_no) {
                continue;
            }
            if !allowed_file {
                findings.push(Finding {
                    rule: RULE,
                    file: ctx.rel.to_owned(),
                    line: line_no,
                    message: "`unsafe` outside the audited allowlist (audit.toml \
                              [unsafe-inventory] allow-files)"
                        .to_owned(),
                });
                continue;
            }
            let documented = (line_no.saturating_sub(lookback)..=line_no)
                .filter(|&l| l >= 1)
                .filter_map(|l| ctx.orig_lines.get(l - 1))
                .any(|text| text.contains("SAFETY:"));
            if !documented {
                findings.push(Finding {
                    rule: RULE,
                    file: ctx.rel.to_owned(),
                    line: line_no,
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment within {lookback} lines"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule: no-panic-decode
// ----------------------------------------------------------------------

/// Keywords that legitimately precede `[` without being an indexed
/// expression (slice patterns, array types/literals, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break", "continue",
    "loop", "while", "for", "where", "dyn", "impl", "fn", "pub", "use", "mod", "const", "static",
    "type", "enum", "struct", "trait", "box", "yield",
];

fn rule_no_panic_decode(ctx: &FileCtx<'_>, cfg: &Config, findings: &mut Vec<Finding>) {
    const RULE: &str = "no-panic-decode";
    if !cfg.list(RULE, "files").iter().any(|f| f == ctx.rel) {
        return;
    }
    for (line_no, line) in ctx.code_lines() {
        if ctx.allowed(RULE, line_no) {
            continue;
        }
        let mut report = |message: String| {
            findings.push(Finding {
                rule: RULE,
                file: ctx.rel.to_owned(),
                line: line_no,
                message,
            });
        };
        for method in ["unwrap", "expect"] {
            for at in method_call_positions(line, method) {
                let _ = at;
                report(format!(
                    "`.{method}(…)` in a decoder — propagate an error instead \
                     (see paris_kb::wire for checked helpers)"
                ));
            }
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            let bare = mac.trim_end_matches('!');
            if !word_positions(line, bare).is_empty() && line.contains(mac) {
                report(format!(
                    "`{mac}` in a decoder — return a decode error instead"
                ));
            }
        }
        for at in bare_index_positions(line) {
            let _ = at;
            report(
                "bare `[…]` indexing in a decoder — use `.get(…)` or the \
                 paris_kb::wire helpers"
                    .to_owned(),
            );
        }
    }
}

/// Positions where `.method(` is called — `.method_or(…)` and other
/// longer identifiers do not match.
fn method_call_positions(line: &str, method: &str) -> Vec<usize> {
    let needle = format!(".{method}");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(hit) = line.get(from..).and_then(|s| s.find(&needle)) {
        let at = from + hit;
        from = at + needle.len();
        let rest = line.get(at + needle.len()..).unwrap_or_default();
        let mut chars = rest.chars();
        match chars.next() {
            Some(c) if is_ident(c) => continue, // .unwrap_or(…), .expect_byte(…)
            Some('(') => out.push(at),
            Some(c) if c.is_whitespace() => {
                if chars.find(|c| !c.is_whitespace()) == Some('(') {
                    out.push(at);
                }
            }
            _ => continue,
        }
    }
    out
}

/// Positions of `[` that index a value: the previous non-space token is
/// an identifier (that is not a keyword), a `)`, or a `]`.
fn bare_index_positions(line: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (at, c) in line.char_indices() {
        if c != '[' {
            continue;
        }
        let before = line.get(..at).unwrap_or_default().trim_end();
        match before.chars().last() {
            Some(')') | Some(']') => out.push(at),
            Some(c) if is_ident(c) => {
                let word: String = before
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident(c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                // `&'a [u8]` is a lifetime before a slice type, not an
                // indexed expression.
                let lifetime = before
                    .get(..before.len() - word.len())
                    .and_then(|s| s.chars().last())
                    == Some('\'');
                if !lifetime && !NON_INDEX_KEYWORDS.contains(&word.as_str()) {
                    out.push(at);
                }
            }
            _ => {}
        }
    }
    out
}

// ----------------------------------------------------------------------
// Rule: checked-casts-in-decoders
// ----------------------------------------------------------------------

fn rule_checked_casts(ctx: &FileCtx<'_>, cfg: &Config, findings: &mut Vec<Finding>) {
    const RULE: &str = "checked-casts-in-decoders";
    if !cfg.list(RULE, "files").iter().any(|f| f == ctx.rel) {
        return;
    }
    for (line_no, line) in ctx.code_lines() {
        if ctx.allowed(RULE, line_no) {
            continue;
        }
        for at in word_positions(line, "as") {
            let rest = line.get(at + 2..).unwrap_or_default().trim_start();
            let target_is_usize = rest.starts_with("usize")
                && rest
                    .get("usize".len()..)
                    .and_then(|s| s.chars().next())
                    .is_none_or(|c| !is_ident(c));
            if target_is_usize {
                findings.push(Finding {
                    rule: RULE,
                    file: ctx.rel.to_owned(),
                    line: line_no,
                    message: "bare `as usize` in a decoder — use \
                              paris_kb::wire::saturating_usize or try_into"
                        .to_owned(),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule: no-wallclock-in-deterministic
// ----------------------------------------------------------------------

fn rule_no_wallclock(ctx: &FileCtx<'_>, cfg: &Config, findings: &mut Vec<Finding>) {
    const RULE: &str = "no-wallclock-in-deterministic";
    if !cfg.list(RULE, "files").iter().any(|f| f == ctx.rel) {
        return;
    }
    for (line_no, line) in ctx.code_lines() {
        if ctx.allowed(RULE, line_no) {
            continue;
        }
        for clock in ["Instant::now", "SystemTime::now"] {
            if line.contains(clock) {
                findings.push(Finding {
                    rule: RULE,
                    file: ctx.rel.to_owned(),
                    line: line_no,
                    message: format!(
                        "`{clock}` in a deterministic pass — use \
                         paris_obs::span::now_ns / seconds_since"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule: no-lock-across-call
// ----------------------------------------------------------------------

/// How many lines a guard is tracked for before the heuristic gives up
/// (real guard scopes in this workspace are far shorter).
const GUARD_SCAN_LINES: usize = 200;

fn rule_no_lock_across_call(ctx: &FileCtx<'_>, cfg: &Config, findings: &mut Vec<Finding>) {
    const RULE: &str = "no-lock-across-call";
    let io_functions = cfg.list(RULE, "io-functions");
    if io_functions.is_empty() {
        return;
    }
    for (line_no, line) in ctx.code_lines() {
        let Some(guard) = guard_binding(line) else {
            continue;
        };
        if ctx.allowed(RULE, line_no) {
            continue;
        }
        // Track the guard to the end of its enclosing block (or an
        // explicit drop), flagging the first I/O call inside.
        let mut depth = brace_delta(line);
        for offset in 1..=GUARD_SCAN_LINES {
            let later_no = line_no + offset;
            let Some(later) = ctx.san_lines.get(later_no - 1) else {
                break;
            };
            if later.contains(&format!("drop({guard})")) {
                break;
            }
            if let Some(hit) = io_functions.iter().find(|f| later.contains(f.as_str())) {
                if !ctx.allowed(RULE, later_no) && !ctx.is_test_line(later_no) {
                    findings.push(Finding {
                        rule: RULE,
                        file: ctx.rel.to_owned(),
                        line: later_no,
                        message: format!(
                            "I/O call `{hit}…` while sync guard `{guard}` \
                             (acquired on line {line_no}) is still held"
                        ),
                    });
                }
                break;
            }
            depth += brace_delta(later);
            if depth < 0 {
                break;
            }
        }
    }
}

fn brace_delta(line: &str) -> i64 {
    line.chars().fold(0i64, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    })
}

/// If `line` let-binds a synchronization guard (`let g = ….lock()…;`
/// with *empty* parens — `io::Read::read(&mut buf)` never matches),
/// returns the binding name.
fn guard_binding(line: &str) -> Option<String> {
    if ![".lock()", ".read()", ".write()"]
        .iter()
        .any(|m| line.contains(m))
    {
        return None;
    }
    let after_let = line.get(word_positions(line, "let").first()? + 3..)?;
    let after_let = after_let.trim_start();
    let after_let = after_let
        .strip_prefix("mut ")
        .unwrap_or(after_let)
        .trim_start();
    let name: String = after_let.chars().take_while(|&c| is_ident(c)).collect();
    // `if let Ok(g) = …` patterns are skipped: the heuristic only
    // understands plain bindings.
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None;
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(text: &str) -> Config {
        Config::parse(text).expect("test config parses")
    }

    #[test]
    fn panic_rule_matches_only_real_calls() {
        let cfg = cfg("[no-panic-decode]\nfiles = [\"d.rs\"]");
        let src = "fn f(v: Vec<u8>) {\n\
                   let a = v.first().unwrap();\n\
                   let b = v.iter().next().unwrap_or_default();\n\
                   let c = r.expect_byte(b'x');\n\
                   let d = v[0];\n\
                   let [e] = pair;\n\
                   }\n";
        let hits = lint_source("d.rs", src, &cfg);
        let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 5], "{hits:?}");
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let cfg = cfg("[no-panic-decode]\nfiles = [\"d.rs\"]");
        let src = "// calling unwrap() would panic!\n\
                   fn f() -> String { \"panic! at v[0].unwrap()\".into() }\n";
        assert!(lint_source("d.rs", src, &cfg).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let cfg = cfg("[no-panic-decode]\nfiles = [\"d.rs\"]");
        let src = "fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn g(v: &[u8]) -> u8 { v[0] }\n\
                   }\n";
        assert!(lint_source("d.rs", src, &cfg).is_empty());
    }

    #[test]
    fn allow_directive_waives_one_line() {
        let cfg = cfg("[no-panic-decode]\nfiles = [\"d.rs\"]");
        let src = "fn f(v: &[u8], i: usize) -> u8 {\n\
                   // audit:allow(no-panic-decode): i was bounds-checked above\n\
                   v[i]\n\
                   }\n\
                   fn g(v: &[u8]) -> u8 { v[1] }\n";
        let hits = lint_source("d.rs", src, &cfg);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits.first().map(|f| f.line), Some(5));
    }

    #[test]
    fn unsafe_rule_demands_allowlist_and_safety_comment() {
        let cfg = cfg("[unsafe-inventory]\nallow-files = [\"ok.rs\"]");
        let bad = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(lint_source("no.rs", bad, &cfg).len(), 1);
        let undocumented = lint_source("ok.rs", bad, &cfg);
        assert_eq!(undocumented.len(), 1);
        assert!(undocumented
            .first()
            .is_some_and(|f| f.message.contains("SAFETY")));
        let documented = "// SAFETY: provably unreachable\n\
                          fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert!(lint_source("ok.rs", documented, &cfg).is_empty());
    }

    #[test]
    fn cast_rule_flags_only_usize() {
        let cfg = cfg("[checked-casts-in-decoders]\nfiles = [\"d.rs\"]");
        let src = "fn f(n: u64) -> (usize, u32) { (n as usize, n as u32) }\n";
        let hits = lint_source("d.rs", src, &cfg);
        assert_eq!(hits.len(), 1);
        assert!(lint_source("other.rs", src, &cfg).is_empty());
    }

    #[test]
    fn wallclock_rule() {
        let cfg = cfg("[no-wallclock-in-deterministic]\nfiles = [\"p.rs\"]");
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(lint_source("p.rs", src, &cfg).len(), 1);
        assert!(lint_source("q.rs", src, &cfg).is_empty());
    }

    #[test]
    fn lock_rule_flags_io_under_guard() {
        let cfg = cfg("[no-lock-across-call]\nio-functions = [\".write_all(\"]");
        let src = "fn f(&self) {\n\
                   let mut g = self.m.lock().unwrap_or_else(|e| e.into_inner());\n\
                   g.push(1);\n\
                   self.file.write_all(b\"x\").ok();\n\
                   }\n";
        let hits = lint_source("s.rs", src, &cfg);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits.first().map(|f| f.line), Some(4));
    }

    #[test]
    fn lock_rule_respects_drop_and_scope() {
        let cfg = cfg("[no-lock-across-call]\nio-functions = [\".write_all(\"]");
        let dropped = "fn f(&self) {\n\
                       let g = self.m.lock().unwrap_or_else(|e| e.into_inner());\n\
                       drop(g);\n\
                       self.file.write_all(b\"x\").ok();\n\
                       }\n";
        assert!(lint_source("s.rs", dropped, &cfg).is_empty());
        let scoped = "fn f(&self) {\n\
                      {\n\
                      let g = self.m.lock().unwrap_or_else(|e| e.into_inner());\n\
                      }\n\
                      self.file.write_all(b\"x\").ok();\n\
                      }\n";
        assert!(lint_source("s.rs", scoped, &cfg).is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let cfg = cfg("[no-lock-across-call]\nio-functions = [\".write_all(\"]");
        let src = "fn f(r: &mut impl std::io::Read, w: &mut impl std::io::Write) {\n\
                   let mut buf = [0u8; 8];\n\
                   let n = r.read(&mut buf).unwrap_or(0);\n\
                   w.write_all(&buf).ok();\n\
                   let _ = n;\n\
                   }\n";
        assert!(lint_source("s.rs", src, &cfg).is_empty());
    }
}
