//! `paris-audit` CLI: `lint`, `fuzz`, and `corpus`.
//!
//! Exit status is the contract CI relies on: 0 when clean, 1 when any
//! lint finding or fuzz crash was produced, 2 for usage errors.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use paris_audit::{config::Config, fuzz, rules};

const USAGE: &str = "\
paris-audit — workspace invariant lints and decoder fuzzing

USAGE:
    paris-audit lint [--root DIR] [--config FILE]
    paris-audit fuzz <target>|all [--seed N] [--iters N] [--corpus DIR]
    paris-audit corpus [DIR]

COMMANDS:
    lint      Run the audit.toml-driven invariant lints over every .rs
              file under the workspace root. Nonzero exit on findings.
    fuzz      Deterministically fuzz one decoder (or `all`). Crashing
              inputs are minimized and written into the corpus
              directory as crash-*.bin regressions. Nonzero exit on
              any crash. Targets: snapshot, snapshot-v2, delta,
              ntriples, http, json.
    corpus    (Re)write the canonical seed inputs under DIR
              (default tests/corpus).

OPTIONS:
    --root DIR      Workspace root to lint (default: .)
    --config FILE   Lint allowlist (default: <root>/audit.toml)
    --seed N        Fuzz RNG seed, decimal or 0x-hex (default: 1)
    --iters N       Mutation iterations per target (default: 10000)
    --corpus DIR    Corpus root holding <target>/ seed and regression
                    files (default: tests/corpus)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(text: &str) -> Option<u64> {
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or("."));
    let config_path = flag_value(args, "--config")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("audit.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("paris-audit: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("paris-audit: {e}");
            return ExitCode::from(2);
        }
    };
    match rules::lint_root(&root, &cfg) {
        Ok(findings) if findings.is_empty() => {
            println!("paris-audit: lint clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("paris-audit: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("paris-audit: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let Some(target) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "paris-audit: fuzz needs a target ({} or all)",
            fuzz::TARGETS.join(", ")
        );
        return ExitCode::from(2);
    };
    let seed = match flag_value(args, "--seed") {
        Some(text) => match parse_u64(text) {
            Some(v) => v,
            None => {
                eprintln!("paris-audit: bad --seed `{text}`");
                return ExitCode::from(2);
            }
        },
        None => 1,
    };
    let iters = match flag_value(args, "--iters") {
        Some(text) => match parse_u64(text) {
            Some(v) => v,
            None => {
                eprintln!("paris-audit: bad --iters `{text}`");
                return ExitCode::from(2);
            }
        },
        None => 10_000,
    };
    let corpus_root = PathBuf::from(flag_value(args, "--corpus").unwrap_or("tests/corpus"));
    let targets: Vec<&str> = if target == "all" {
        fuzz::TARGETS.to_vec()
    } else {
        vec![target.as_str()]
    };
    let mut failed = false;
    for t in targets {
        let extra = read_corpus_dir(&corpus_root.join(t));
        let report = match fuzz::run(t, seed, iters, &extra) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("paris-audit: {e}");
                return ExitCode::from(2);
            }
        };
        if report.crashes.is_empty() {
            println!(
                "paris-audit: fuzz {t}: {} iterations ({} executions), seed {seed:#x}, 0 crashes",
                report.iters, report.executions
            );
            continue;
        }
        failed = true;
        for (i, crash) in report.crashes.iter().enumerate() {
            let name = format!("crash-{:016x}.bin", fnv1a(&crash.input));
            let path = corpus_root.join(t).join(&name);
            let wrote = std::fs::create_dir_all(corpus_root.join(t))
                .and_then(|()| std::fs::write(&path, &crash.input));
            println!(
                "paris-audit: fuzz {t}: CRASH #{i} at iteration {} ({} bytes minimized): {}",
                crash.iteration,
                crash.input.len(),
                crash.message
            );
            match wrote {
                Ok(()) => println!("  reproducer written to {}", path.display()),
                Err(e) => eprintln!("  could not write reproducer {}: {e}", path.display()),
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_corpus(args: &[String]) -> ExitCode {
    let root = PathBuf::from(
        args.first()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("tests/corpus"),
    );
    for &target in fuzz::TARGETS {
        let dir = root.join(target);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("paris-audit: creating {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        for (i, bytes) in fuzz::seeds(target).iter().enumerate() {
            let path = dir.join(format!("seed-{i}.bin"));
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("paris-audit: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote {} ({} bytes)", path.display(), bytes.len());
        }
    }
    ExitCode::SUCCESS
}

/// Every regular file directly inside `dir`, sorted by name for
/// deterministic corpus order.
fn read_corpus_dir(dir: &Path) -> Vec<Vec<u8>> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| std::fs::read(p).ok())
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h
}
