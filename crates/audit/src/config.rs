//! Parser for `audit.toml`, the checked-in allowlist that drives the
//! lint rules (docs/CORRECTNESS.md documents every key).
//!
//! The workspace has no external dependencies, so this is a deliberate
//! TOML *subset*: `[section]` headers, `#` comments, and `key = value`
//! entries where a value is a quoted string, an integer, or an array
//! of quoted strings (arrays may span lines). That is the whole
//! grammar `audit.toml` needs; anything else is a parse error, which
//! the CI gate turns into a loud failure rather than a silently
//! ignored rule.

/// One configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// An array of quoted strings.
    List(Vec<String>),
}

/// The parsed configuration: sections of key/value entries.
#[derive(Debug, Default)]
pub struct Config {
    sections: Vec<(String, Vec<(String, Value)>)>,
}

impl Config {
    /// Parses the TOML subset. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut current: Option<usize> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                cfg.sections.push((name.trim().to_owned(), Vec::new()));
                current = Some(cfg.sections.len() - 1);
                continue;
            }
            let (key, value_text) = line
                .split_once('=')
                .ok_or_else(|| format!("audit.toml:{line_no}: expected `key = value`"))?;
            let mut value_text = value_text.trim().to_owned();
            // An array may span lines: keep consuming until brackets
            // balance outside of quotes.
            while value_text.starts_with('[') && !brackets_balance(&value_text) {
                let (idx2, cont) = lines
                    .next()
                    .ok_or_else(|| format!("audit.toml:{line_no}: unterminated array"))?;
                let _ = idx2;
                value_text.push(' ');
                value_text.push_str(strip_comment(cont).trim());
            }
            let value =
                parse_value(&value_text).map_err(|e| format!("audit.toml:{line_no}: {e}"))?;
            let section = current
                .ok_or_else(|| format!("audit.toml:{line_no}: entry before any [section]"))?;
            if let Some((_, entries)) = cfg.sections.get_mut(section) {
                entries.push((key.trim().to_owned(), value));
            }
        }
        Ok(cfg)
    }

    fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|(name, _)| name == section)
            .and_then(|(_, entries)| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A string-array value; missing keys yield an empty list.
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.get(section, key) {
            Some(Value::List(items)) => items.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    /// An integer value with a default.
    pub fn int(&self, section: &str, key: &str, default: i64) -> i64 {
        match self.get(section, key) {
            Some(Value::Int(v)) => *v,
            _ => default,
        }
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

/// Whether `[` and `]` balance outside quoted strings.
fn brackets_balance(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_owned())?;
        let mut items = Vec::new();
        for item in split_items(inner) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only hold quoted strings".to_owned()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_owned())?;
        if inner.contains('"') {
            return Err("unexpected inner quote".to_owned());
        }
        return Ok(Value::Str(inner.to_owned()));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unrecognized value `{text}`"))
}

/// Splits array items on commas outside quotes.
fn split_items(text: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(text.get(start..i).unwrap_or_default());
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(text.get(start..).unwrap_or_default());
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_ints_and_arrays() {
        let cfg = Config::parse(
            r#"
# comment
[lint]
exclude = ["target", "fixtures"] # trailing comment
max = 8

[rule-a]
files = [
    "a/b.rs",
    "c/d.rs",
]
"#,
        )
        .unwrap();
        assert_eq!(cfg.list("lint", "exclude"), vec!["target", "fixtures"]);
        assert_eq!(cfg.int("lint", "max", 0), 8);
        assert_eq!(cfg.list("rule-a", "files"), vec!["a/b.rs", "c/d.rs"]);
        assert_eq!(cfg.int("lint", "missing", 7), 7);
        assert!(cfg.list("missing", "files").is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Config::parse("key = 1").is_err(), "entry before section");
        assert!(Config::parse("[s]\nkey 1").is_err(), "missing equals");
        assert!(Config::parse("[s]\nkey = [\"a\"").is_err(), "open array");
        assert!(Config::parse("[s]\nkey = nope").is_err(), "bare word");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[s]\nk = \"a#b\"").unwrap();
        assert_eq!(cfg.list("s", "k"), vec!["a#b"]);
    }
}
