//! Fixture self-tests for the lint engine.
//!
//! `tests/fixtures/bad/` holds files with deliberate violations;
//! `tests/fixtures/good/` holds the checked spellings and every shape
//! that historically produced a false positive. The tests drive
//! [`lint_root`] over the whole fixture tree with a fixture-local
//! config, then assert the bad files fire at *exactly* the expected
//! `(file, rule, line)` triples and the good files produce nothing.
//!
//! The workspace `audit.toml` excludes this tree from the real lint
//! run — the bad fixtures would otherwise fail CI by design.

use std::path::Path;

use paris_audit::config::Config;
use paris_audit::rules::{lint_root, Finding};

/// Mirrors the workspace `audit.toml`, retargeted at the fixture tree.
const FIXTURE_CONFIG: &str = r#"
[unsafe-inventory]
allow-files = ["bad/unsafe_undocumented.rs", "good/unsafe_documented.rs"]
safety-comment-lines = 8

[no-panic-decode]
files = ["bad/decoder.rs", "good/decoder.rs"]

[checked-casts-in-decoders]
files = ["bad/decoder.rs", "good/decoder.rs"]

[no-wallclock-in-deterministic]
files = ["bad/wallclock.rs", "good/wallclock.rs"]

[no-lock-across-call]
io-functions = [".write_all(", ".flush("]
"#;

fn fixture_findings() -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let cfg = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    lint_root(&root, &cfg).expect("fixture walk succeeds")
}

#[test]
fn known_bad_fixtures_fire_at_exact_lines() {
    let mut got: Vec<(String, String, usize)> = fixture_findings()
        .into_iter()
        .filter(|f| f.file.starts_with("bad/"))
        .map(|f| (f.file, f.rule.to_owned(), f.line))
        .collect();
    got.sort();
    let mut want: Vec<(String, String, usize)> = [
        ("bad/decoder.rs", "no-panic-decode", 6),
        ("bad/decoder.rs", "no-panic-decode", 7),
        ("bad/decoder.rs", "no-panic-decode", 9),
        ("bad/decoder.rs", "no-panic-decode", 11),
        ("bad/decoder.rs", "checked-casts-in-decoders", 13),
        ("bad/lock_io.rs", "no-lock-across-call", 17),
        ("bad/unsafe_outside.rs", "unsafe-inventory", 10),
        ("bad/unsafe_undocumented.rs", "unsafe-inventory", 5),
        ("bad/wallclock.rs", "no-wallclock-in-deterministic", 5),
        ("bad/wallclock.rs", "no-wallclock-in-deterministic", 6),
    ]
    .iter()
    .map(|&(f, r, l)| (f.to_owned(), r.to_owned(), l))
    .collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn known_good_fixtures_are_clean() {
    let false_positives: Vec<Finding> = fixture_findings()
        .into_iter()
        .filter(|f| f.file.starts_with("good/"))
        .collect();
    assert!(
        false_positives.is_empty(),
        "good fixtures must lint clean, got: {false_positives:?}"
    );
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let rendered: Vec<String> = fixture_findings()
        .iter()
        .filter(|f| f.file == "bad/unsafe_undocumented.rs")
        .map(Finding::to_string)
        .collect();
    assert_eq!(rendered.len(), 1);
    let line = rendered.first().map(String::as_str).unwrap_or_default();
    assert!(
        line.starts_with("bad/unsafe_undocumented.rs:5: [unsafe-inventory]"),
        "unexpected rendering: {line}"
    );
}
