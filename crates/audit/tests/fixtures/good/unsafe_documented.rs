// Known-good fixture: allowlisted `unsafe` with the required safety
// comment within the configured lookback.

pub fn peek(bytes: &[u8]) -> u8 {
    if bytes.is_empty() {
        return 0;
    }
    // SAFETY: non-emptiness was checked above, so the pointer read is
    // within the allocation.
    unsafe { *bytes.as_ptr() }
}
