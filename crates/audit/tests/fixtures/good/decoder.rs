// Known-good fixture: everything here is the checked spelling of
// something the decoder rules would flag if written bluntly, plus the
// shapes that historically produced false positives (lifetimes before
// slice types, slice patterns, `.unwrap_or*` methods, test modules).

/// Comments may say unwrap() or panic! freely, and so may strings.
pub fn decode<'a>(bytes: &'a [u8]) -> Result<(u8, usize), String> {
    let first = bytes.first().copied().unwrap_or_default();
    let rest = bytes.get(1..).unwrap_or_default();
    let (a, b) = match *rest {
        [a, b, ..] => (a, b),
        _ => (0, 0),
    };
    let wide = usize::try_from(u64::from(first) + u64::from(a) + u64::from(b))
        .unwrap_or(usize::MAX);
    let msg = "never panic! or unwrap() here, and v[0] is fine in a string";
    if msg.is_empty() {
        return Err("unreachable".to_owned());
    }
    Ok((first, wide))
}

pub fn first_after_check(bytes: &[u8]) -> u8 {
    if bytes.is_empty() {
        return 0;
    }
    // audit:allow(no-panic-decode): emptiness was checked above
    bytes[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_be_blunt() {
        let v = vec![1u8, 2];
        assert_eq!(v[0], 1);
        let _ = v.first().unwrap();
        let _ = v.len() as usize;
    }
}
