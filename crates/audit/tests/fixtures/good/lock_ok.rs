// Known-good fixture for `no-lock-across-call`: guards are released
// (scope end or explicit drop) before any I/O, or the hold carries an
// inline waiver.

use std::io::Write;
use std::sync::Mutex;

pub struct Log {
    counters: Mutex<u64>,
    file: std::fs::File,
}

impl Log {
    pub fn record_scoped(&mut self) {
        let line = {
            let mut guard = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            *guard += 1;
            format!("count={guard}\n")
        };
        let _ = self.file.write_all(line.as_bytes());
    }

    pub fn record_dropped(&mut self) {
        let mut guard = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        *guard += 1;
        drop(guard);
        let _ = self.file.write_all(b"tick\n");
    }

    pub fn record_waived(&mut self) {
        // audit:allow(no-lock-across-call): single-writer log; the hold is deliberate
        let mut guard = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        *guard += 1;
        let _ = self.file.write_all(b"tick\n");
    }
}
