// Known-good fixture for `no-wallclock-in-deterministic`: elapsed time
// comes from the sanctioned epoch-based stopwatch, never from a direct
// clock read.

pub fn elapsed_seconds(start_ns: u64) -> f64 {
    paris_obs::span::seconds_since(start_ns)
}
