// Known-bad fixture for `no-lock-across-call`: the log write happens
// while the counter guard is still held.

use std::io::Write;
use std::sync::Mutex;

pub struct Log {
    counters: Mutex<u64>,
    file: std::fs::File,
}

impl Log {
    pub fn record(&mut self) {
        let mut guard = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        *guard += 1;
        let line = format!("count={guard}\n");
        let _ = self.file.write_all(line.as_bytes());
    }
}
