// Known-bad fixture for `no-panic-decode` and
// `checked-casts-in-decoders`. Line numbers are asserted by
// tests/lint_fixtures.rs — keep edits in sync.

pub fn decode(bytes: &[u8]) -> u32 {
    let first = *bytes.first().unwrap();
    let second = *bytes.get(1).expect("need a second byte");
    if bytes.len() < 4 {
        panic!("truncated input");
    }
    let third = bytes[2];
    let len = bytes.len() as u64;
    let wide = len as usize;
    u32::from(first) + u32::from(second) + u32::from(third) + (wide as u32)
}
