// Known-bad fixture for `no-wallclock-in-deterministic`: both clock
// reads below must be reported.

pub fn stamp() -> (std::time::Instant, u64) {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    (t, s)
}
