// Known-bad fixture: `unsafe` in a file absent from the
// [unsafe-inventory] allow-files list. A SAFETY: comment alone does
// not make it allowlisted.

pub fn peek(bytes: &[u8]) -> u8 {
    if bytes.is_empty() {
        return 0;
    }
    // SAFETY: emptiness was checked; still outside the allowlist.
    unsafe { *bytes.as_ptr() }
}
