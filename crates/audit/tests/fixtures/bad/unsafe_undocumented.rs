// Known-bad fixture: this file IS on the allow-files list, but the
// `unsafe` block below carries no safety comment in the lookback.

pub fn peek(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
