//! Span-based tracing: structural timing for individual operations.
//!
//! The metrics side of this crate answers "how is the daemon doing on
//! average"; spans answer "why was *this* request slow" and "which pass
//! is iteration 7 stuck in". A [`Span`] is one timed operation —
//! monotonic-nanosecond start/end, a parent link, and a bounded set of
//! key–value attributes — and every span belongs to a trace identified
//! by a [`TraceId`]. Traces cross process boundaries through
//! W3C-`traceparent`-style headers ([`SpanContext::traceparent`] /
//! [`SpanContext::parse_traceparent`]), which is how one replica sync
//! cycle becomes a single trace spanning two daemons.
//!
//! Finished spans land in a [`SpanStore`]: a bounded ring buffer (the
//! recent window) plus a **tail-sampled** slow-trace set — when a root
//! span finishes, the store decides *then* (at the tail, with the
//! duration known) whether its trace is among the slowest seen and, if
//! so, pins the trace's spans past ring eviction. The slowest traces are
//! therefore always inspectable, no matter how much traffic has flowed
//! since. Recording is lock-cheap: one short mutex section per finished
//! span, O(1) except when a new slowest trace is pinned, and a poisoned
//! lock degrades to dropping the span rather than panicking the worker.
//!
//! [`SpanCollector`] is the scoped variant for long jobs (alignment
//! fixpoints, bulk ingest): it buffers one operation's spans so they can
//! be rendered live mid-run and drained into a [`SpanStore`] at the end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::Counter;

/// Cap on attributes per span; later attributes are dropped.
pub const MAX_SPAN_ATTRS: usize = 16;
/// Cap on one string attribute value; longer values are truncated.
pub const MAX_ATTR_STR: usize = 128;
/// Default number of slowest traces the tail sampler pins past ring
/// eviction ([`SpanStore::with_pinned`] overrides per store).
pub const SLOW_TRACES: usize = 8;
/// Cap on spans pinned per slow trace.
pub const MAX_TRACE_SPANS: usize = 512;

/// Nanoseconds since the process-wide trace epoch (the first call).
/// Monotonic — wall-clock steps cannot reorder spans.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Seconds elapsed since a [`now_ns`] reading — the sanctioned stopwatch
/// for deterministic passes, where the `no-wallclock-in-deterministic`
/// audit rule (docs/CORRECTNESS.md) forbids direct `Instant::now()` /
/// `SystemTime::now()` calls.
pub fn seconds_since(start_ns: u64) -> f64 {
    now_ns().saturating_sub(start_ns) as f64 / 1e9
}

/// A process-unique-enough random value: the std SipHash keys (randomly
/// seeded per `RandomState`) mixed with a global counter and the
/// monotonic clock. Not cryptographic — trace ids need to be *distinct*,
/// not unguessable.
fn rand_u64() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = RandomState::new().build_hasher();
    h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    h.write_u64(now_ns());
    h.finish()
}

/// Identifies one trace: every span of one logical operation (a request,
/// a sync cycle, an alignment job) shares it, across daemons.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(pub u128);

impl TraceId {
    /// A fresh non-zero random id.
    pub fn random() -> TraceId {
        let hi = u128::from(rand_u64());
        let lo = u128::from(rand_u64());
        let id = (hi << 64) | lo;
        TraceId(if id == 0 { 1 } else { id })
    }

    /// The 32-hex-digit `traceparent` spelling.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses exactly 32 lower/upper hex digits; zero is rejected (the
    /// spec's "invalid trace" value).
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let id = u128::from_str_radix(s, 16).ok()?;
        (id != 0).then_some(TraceId(id))
    }
}

/// Identifies one span within its trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpanId(pub u64);

impl SpanId {
    /// A fresh non-zero random id.
    pub fn random() -> SpanId {
        let id = rand_u64();
        SpanId(if id == 0 { 1 } else { id })
    }

    /// The 16-hex-digit `traceparent` spelling.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses exactly 16 hex digits; zero is rejected.
    pub fn from_hex(s: &str) -> Option<SpanId> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let id = u64::from_str_radix(s, 16).ok()?;
        (id != 0).then_some(SpanId(id))
    }
}

/// What propagates across a process boundary: the trace plus the caller
/// span a continued span should hang under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanContext {
    /// The trace every downstream span joins.
    pub trace: TraceId,
    /// The span that is the parent of whatever the callee starts.
    pub span: SpanId,
}

impl SpanContext {
    /// A fresh root context (new trace, new span id).
    pub fn new_root() -> SpanContext {
        SpanContext {
            trace: TraceId::random(),
            span: SpanId::random(),
        }
    }

    /// Renders the W3C `traceparent` header value:
    /// `00-<32 hex trace-id>-<16 hex parent-id>-01` (sampled flag set —
    /// this workspace records every propagated trace).
    pub fn traceparent(&self) -> String {
        format!("00-{}-{}-01", self.trace.to_hex(), self.span.to_hex())
    }

    /// Parses a `traceparent` header value. Accepts any known-layout
    /// version except the reserved `ff`; rejects malformed lengths,
    /// non-hex digits, and the all-zero trace/span ids.
    pub fn parse_traceparent(header: &str) -> Option<SpanContext> {
        let header = header.trim();
        let mut parts = header.splitn(4, '-');
        let version = parts.next()?;
        if version.len() != 2
            || !version.bytes().all(|b| b.is_ascii_hexdigit())
            || version.eq_ignore_ascii_case("ff")
        {
            return None;
        }
        let trace = TraceId::from_hex(parts.next()?)?;
        let span = SpanId::from_hex(parts.next()?)?;
        let flags = parts.next()?;
        // Version 00 fixes the flags field at exactly 2 hex digits;
        // future versions may append `-extra` fields after it.
        let flags = flags.split('-').next()?;
        if flags.len() != 2 || !flags.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(SpanContext { trace, span })
    }
}

/// One attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An integer count (rows, bytes, entities, …).
    Int(u64),
    /// A floating-point measurement.
    Float(f64),
    /// A short string (truncated to [`MAX_ATTR_STR`]).
    Str(String),
}

/// One timed operation inside a trace.
#[derive(Clone, Debug)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// The parent span, `None` for a locally-rooted span. A span
    /// continued from a remote `traceparent` carries the remote caller's
    /// span id here, which is what stitches the cross-daemon tree.
    pub parent: Option<SpanId>,
    /// Operation name (static — span names are a bounded vocabulary).
    pub name: &'static str,
    /// Start, nanoseconds on the [`now_ns`] clock.
    pub start_ns: u64,
    /// End, nanoseconds on the [`now_ns`] clock; 0 while still open.
    pub end_ns: u64,
    /// Bounded key–value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Starts a span now.
    pub fn begin(name: &'static str, trace: TraceId, parent: Option<SpanId>) -> Span {
        Span {
            trace,
            id: SpanId::random(),
            parent,
            name,
            start_ns: now_ns(),
            end_ns: 0,
            attrs: Vec::new(),
        }
    }

    /// The context a child (local or remote) should hang under.
    pub fn context(&self) -> SpanContext {
        SpanContext {
            trace: self.trace,
            span: self.id,
        }
    }

    /// Attaches an integer attribute (dropped beyond [`MAX_SPAN_ATTRS`]).
    pub fn attr_int(&mut self, key: &'static str, value: u64) {
        if self.attrs.len() < MAX_SPAN_ATTRS {
            self.attrs.push((key, AttrValue::Int(value)));
        }
    }

    /// Attaches a float attribute (dropped beyond [`MAX_SPAN_ATTRS`]).
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        if self.attrs.len() < MAX_SPAN_ATTRS {
            self.attrs.push((key, AttrValue::Float(value)));
        }
    }

    /// Attaches a string attribute, truncated to [`MAX_ATTR_STR`] bytes
    /// (on a char boundary); dropped beyond [`MAX_SPAN_ATTRS`].
    pub fn attr_str(&mut self, key: &'static str, value: &str) {
        if self.attrs.len() >= MAX_SPAN_ATTRS {
            return;
        }
        let mut end = value.len().min(MAX_ATTR_STR);
        while end > 0 && !value.is_char_boundary(end) {
            end -= 1;
        }
        self.attrs
            .push((key, AttrValue::Str(value[..end].to_owned())));
    }

    /// Closes the span (idempotent).
    pub fn end(&mut self) {
        if self.end_ns == 0 {
            self.end_ns = now_ns().max(self.start_ns);
        }
    }

    /// Duration in nanoseconds (0 while open).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One pinned slow trace.
struct SlowTrace {
    trace: TraceId,
    root_name: &'static str,
    root_duration_ns: u64,
    spans: Vec<Span>,
}

/// Summary of one retained slow trace, as [`SpanStore::slowest`] reports.
#[derive(Clone, Debug)]
pub struct SlowTraceSummary {
    /// The trace id.
    pub trace: TraceId,
    /// Name of the root span that qualified the trace.
    pub root_name: &'static str,
    /// The root span's duration in nanoseconds.
    pub root_duration_ns: u64,
    /// Spans pinned for the trace.
    pub spans: usize,
}

struct StoreInner {
    recent: std::collections::VecDeque<Span>,
    slow: Vec<SlowTrace>,
}

/// Bounded retention for finished spans: a ring buffer of the most
/// recent `capacity` spans, plus up to `pinned` (default
/// [`SLOW_TRACES`]) tail-sampled slowest traces pinned past eviction.
/// Capacity 0 disables recording entirely ([`SpanStore::finish`]
/// becomes a cheap early return); pinned 0 disables tail sampling.
pub struct SpanStore {
    capacity: usize,
    pinned: usize,
    inner: Mutex<StoreInner>,
    recorded: Arc<Counter>,
    dropped: Arc<Counter>,
}

impl SpanStore {
    /// A store retaining at most `capacity` recent spans and pinning the
    /// [`SLOW_TRACES`] slowest traces.
    pub fn new(capacity: usize) -> SpanStore {
        SpanStore::with_pinned(capacity, SLOW_TRACES)
    }

    /// A store retaining at most `capacity` recent spans and pinning the
    /// `pinned` slowest traces past eviction.
    pub fn with_pinned(capacity: usize, pinned: usize) -> SpanStore {
        SpanStore {
            capacity,
            pinned,
            inner: Mutex::new(StoreInner {
                recent: std::collections::VecDeque::new(),
                slow: Vec::new(),
            }),
            recorded: Arc::new(Counter::new()),
            dropped: Arc::new(Counter::new()),
        }
    }

    /// Whether spans are recorded at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured slow-trace pin count.
    pub fn pinned(&self) -> usize {
        self.pinned
    }

    /// Spans ever finished into the store.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Spans evicted from the recent ring (pinned copies persist).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The recorded-spans counter, for registration in a [`Registry`](crate::Registry).
    pub fn recorded_counter(&self) -> &Arc<Counter> {
        &self.recorded
    }

    /// The evicted-spans counter, for registration in a [`Registry`](crate::Registry).
    pub fn dropped_counter(&self) -> &Arc<Counter> {
        &self.dropped
    }

    /// Starts a span: continuing `parent`'s trace when given one (the
    /// parsed `traceparent` of an incoming request), else rooting a
    /// fresh trace.
    pub fn begin(&self, name: &'static str, parent: Option<SpanContext>) -> Span {
        match parent {
            Some(ctx) => Span::begin(name, ctx.trace, Some(ctx.span)),
            None => Span::begin(name, TraceId::random(), None),
        }
    }

    /// Closes `span` and retains it. A root span finishing is the tail
    /// sampling point: if its duration ranks among the `pinned` slowest
    /// roots seen, the whole trace (its spans currently in the ring plus
    /// the root) is pinned, evicting the fastest pinned trace. A
    /// poisoned lock drops the span instead of panicking.
    pub fn finish(&self, mut span: Span) {
        span.end();
        if self.capacity == 0 {
            return;
        }
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        // A continued span (remote parent) is a local root for sampling
        // purposes only if nothing in this store parents it; keep it
        // simple and sample on parent-less spans only — the replica's
        // sync root is the cross-daemon sampling point.
        if span.parent.is_none() {
            self.maybe_pin(&mut inner, &span);
        } else if let Some(slow) = inner.slow.iter_mut().find(|s| s.trace == span.trace) {
            // Late child of an already-pinned trace: keep it with its tree.
            if slow.spans.len() < MAX_TRACE_SPANS {
                slow.spans.push(span.clone());
            }
        }
        inner.recent.push_back(span);
        while inner.recent.len() > self.capacity {
            inner.recent.pop_front();
            self.dropped.inc();
        }
        self.recorded.inc();
    }

    fn maybe_pin(&self, inner: &mut StoreInner, root: &Span) {
        if self.pinned == 0 {
            return;
        }
        let duration = root.duration_ns();
        if inner.slow.len() >= self.pinned {
            let (fastest, fastest_duration) = inner
                .slow
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.root_duration_ns))
                .min_by_key(|&(_, d)| d)
                .expect("non-empty slow set");
            if duration <= fastest_duration {
                return;
            }
            inner.slow.swap_remove(fastest);
        }
        let mut spans: Vec<Span> = inner
            .recent
            .iter()
            .filter(|s| s.trace == root.trace)
            .take(MAX_TRACE_SPANS - 1)
            .cloned()
            .collect();
        spans.push(root.clone());
        inner.slow.push(SlowTrace {
            trace: root.trace,
            root_name: root.name,
            root_duration_ns: duration,
            spans,
        });
    }

    /// The most recent finished spans, newest first, capped at `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Span> {
        let Ok(inner) = self.inner.lock() else {
            return Vec::new();
        };
        inner.recent.iter().rev().take(limit).cloned().collect()
    }

    /// The pinned slowest traces, slowest first.
    pub fn slowest(&self) -> Vec<SlowTraceSummary> {
        let Ok(inner) = self.inner.lock() else {
            return Vec::new();
        };
        let mut out: Vec<SlowTraceSummary> = inner
            .slow
            .iter()
            .map(|s| SlowTraceSummary {
                trace: s.trace,
                root_name: s.root_name,
                root_duration_ns: s.root_duration_ns,
                spans: s.spans.len(),
            })
            .collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.root_duration_ns));
        out
    }

    /// Every retained span of one trace (recent ring + pinned copies,
    /// deduplicated by span id), in start order.
    pub fn trace(&self, trace: TraceId) -> Vec<Span> {
        let Ok(inner) = self.inner.lock() else {
            return Vec::new();
        };
        let mut out: Vec<Span> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let pinned = inner
            .slow
            .iter()
            .filter(|s| s.trace == trace)
            .flat_map(|s| s.spans.iter());
        for span in pinned.chain(inner.recent.iter().filter(|s| s.trace == trace)) {
            if seen.insert(span.id) {
                out.push(span.clone());
            }
        }
        out.sort_by_key(|s| s.start_ns);
        out
    }

    /// Drains a collector's spans into the store (e.g. when a job whose
    /// progress was collected live completes).
    pub fn absorb(&self, collector: &SpanCollector) {
        for span in collector.drain() {
            self.finish(span);
        }
    }
}

/// Buffers the spans of one long operation (an alignment job, an ingest
/// run) so they can be inspected live mid-run and drained into a
/// [`SpanStore`] at the end. Thread-safe; a poisoned lock degrades to
/// dropping spans.
pub struct SpanCollector {
    root: SpanContext,
    spans: Mutex<Vec<Span>>,
    cap: usize,
}

impl std::fmt::Debug for SpanCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanCollector")
            .field("trace", &self.root.trace)
            .field("spans", &self.spans.lock().map(|s| s.len()).unwrap_or(0))
            .finish()
    }
}

impl SpanCollector {
    /// A collector whose spans parent under `root`.
    pub fn new(root: SpanContext) -> SpanCollector {
        SpanCollector {
            root,
            spans: Mutex::new(Vec::new()),
            cap: 4096,
        }
    }

    /// The root context child spans attach to.
    pub fn root(&self) -> SpanContext {
        self.root
    }

    /// Starts a span parented on the collector root.
    pub fn begin(&self, name: &'static str) -> Span {
        Span::begin(name, self.root.trace, Some(self.root.span))
    }

    /// Starts a span parented on an explicit span (for pass-level
    /// children of an iteration span).
    pub fn begin_child(&self, name: &'static str, parent: SpanId) -> Span {
        Span::begin(name, self.root.trace, Some(parent))
    }

    /// Closes `span` and buffers it (dropped when full or poisoned).
    pub fn finish(&self, mut span: Span) {
        span.end();
        if let Ok(mut spans) = self.spans.lock() {
            if spans.len() < self.cap {
                spans.push(span);
            }
        }
    }

    /// A copy of the spans buffered so far (live progress rendering).
    pub fn snapshot(&self) -> Vec<Span> {
        self.spans.lock().map(|s| s.clone()).unwrap_or_default()
    }

    /// Takes every buffered span out of the collector.
    pub fn drain(&self) -> Vec<Span> {
        self.spans
            .lock()
            .map(|mut s| std::mem::take(&mut *s))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_nonzero() {
        let a = TraceId::random();
        let b = TraceId::random();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        let a = SpanId::random();
        let b = SpanId::random();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = SpanContext::new_root();
        let header = ctx.traceparent();
        assert_eq!(header.len(), 55, "{header}");
        let parsed = SpanContext::parse_traceparent(&header).expect("round trip");
        assert_eq!(parsed, ctx);
        // A fixed vector, for the exact spelling.
        let ctx = SpanContext {
            trace: TraceId(0x0af7651916cd43dd8448eb211c80319c),
            span: SpanId(0xb7ad6b7169203331),
        };
        assert_eq!(
            ctx.traceparent(),
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
        );
        assert_eq!(
            SpanContext::parse_traceparent(
                "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
            ),
            Some(ctx)
        );
        // Future versions with trailing fields still parse.
        assert_eq!(
            SpanContext::parse_traceparent(
                "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"
            ),
            Some(ctx)
        );
    }

    #[test]
    fn malformed_traceparents_are_rejected() {
        for bad in [
            "",
            "garbage",
            "00-short-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-short-01",
            // all-zero trace / span ids are the spec's invalid values
            "00-00000000000000000000000000000000-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
            // reserved version
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            // non-hex digits
            "00-0af7651916cd43dd8448eb211c8031zz-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033zz-01",
            "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
        ] {
            assert_eq!(SpanContext::parse_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn spans_nest_and_bound_their_attrs() {
        let mut root = Span::begin("request", TraceId::random(), None);
        let mut child = Span::begin("pass", root.trace, Some(root.id));
        assert_eq!(child.parent, Some(root.id));
        for i in 0..(MAX_SPAN_ATTRS as u64 + 10) {
            child.attr_int("k", i);
        }
        assert_eq!(child.attrs.len(), MAX_SPAN_ATTRS);
        let long = "x".repeat(MAX_ATTR_STR * 2);
        root.attr_str("s", &long);
        match &root.attrs[0].1 {
            AttrValue::Str(s) => assert_eq!(s.len(), MAX_ATTR_STR),
            other => panic!("unexpected {other:?}"),
        }
        child.end();
        let end = child.end_ns;
        assert!(end >= child.start_ns);
        child.end();
        assert_eq!(child.end_ns, end, "end is idempotent");
    }

    #[test]
    fn store_rings_recent_spans_and_keeps_the_slowest() {
        let store = SpanStore::new(4);
        assert!(store.enabled());
        // A slow root: artificially long via an explicit end timestamp
        // (end() is a no-op on an already-closed span).
        let mut slow = store.begin("slow", None);
        slow.end_ns = slow.start_ns + 5_000_000_000;
        let slow_trace = slow.trace;
        let mut child = Span::begin("child", slow_trace, Some(slow.id));
        child.end();
        store.finish(child);
        store.finish(slow);
        // Flood the ring with fast spans.
        for _ in 0..50 {
            let span = store.begin("fast", None);
            store.finish(span);
        }
        assert!(store.recent(100).len() <= 4);
        assert!(store.dropped() > 0);
        // The slow trace survived eviction with its child span.
        let slowest = store.slowest();
        assert_eq!(slowest[0].trace, slow_trace);
        assert_eq!(slowest[0].root_name, "slow");
        let spans = store.trace(slow_trace);
        assert_eq!(spans.len(), 2, "root + child pinned");
        assert!(spans.iter().any(|s| s.name == "child"));
    }

    #[test]
    fn slow_set_is_bounded_and_keeps_the_worst() {
        let store = SpanStore::new(2);
        for i in 0..(SLOW_TRACES as u64 + 6) {
            let mut span = store.begin("op", None);
            span.end_ns = span.start_ns + (i + 1) * 1_000_000;
            store.finish(span);
        }
        let slowest = store.slowest();
        assert_eq!(slowest.len(), SLOW_TRACES);
        // Sorted slowest-first, and the fastest ones were evicted.
        for pair in slowest.windows(2) {
            assert!(pair[0].root_duration_ns >= pair[1].root_duration_ns);
        }
        assert!(slowest.last().expect("non-empty").root_duration_ns >= 6_000_000);
    }

    #[test]
    fn pin_count_is_configurable() {
        let store = SpanStore::with_pinned(2, 3);
        assert_eq!(store.pinned(), 3);
        for i in 0..10u64 {
            let mut span = store.begin("op", None);
            span.end_ns = span.start_ns + (i + 1) * 1_000_000;
            store.finish(span);
        }
        assert_eq!(store.slowest().len(), 3);

        // Pinning disabled entirely: spans still ring, nothing pins.
        let store = SpanStore::with_pinned(2, 0);
        for i in 0..4u64 {
            let mut span = store.begin("op", None);
            span.end_ns = span.start_ns + (i + 1) * 1_000_000;
            store.finish(span);
        }
        assert!(store.slowest().is_empty());
        assert_eq!(store.recent(10).len(), 2);
    }

    #[test]
    fn disabled_store_records_nothing() {
        let store = SpanStore::new(0);
        assert!(!store.enabled());
        let span = store.begin("op", None);
        store.finish(span);
        assert_eq!(store.recorded(), 0);
        assert!(store.recent(10).is_empty());
        assert!(store.slowest().is_empty());
    }

    #[test]
    fn collector_buffers_live_and_drains_into_a_store() {
        let collector = SpanCollector::new(SpanContext::new_root());
        let iter = collector.begin("iteration");
        let mut pass = collector.begin_child("instance_pass", iter.id);
        pass.attr_int("entities", 42);
        collector.finish(pass);
        assert_eq!(collector.snapshot().len(), 1, "live mid-operation view");
        collector.finish(iter);
        let store = SpanStore::new(16);
        store.absorb(&collector);
        assert!(collector.snapshot().is_empty(), "drained");
        let spans = store.trace(collector.root().trace);
        assert_eq!(spans.len(), 2);
        let iter_span = spans.iter().find(|s| s.name == "iteration").expect("iter");
        let pass_span = spans
            .iter()
            .find(|s| s.name == "instance_pass")
            .expect("pass");
        assert_eq!(pass_span.parent, Some(iter_span.id));
        assert_eq!(iter_span.parent, Some(collector.root().span));
    }
}
