//! Trace sinks for the aligner's fixpoint loop.
//!
//! PARIS's runtime behavior *is* its iteration trace — the paper's
//! Tables 3 and 5 are per-iteration rows (assignment changes, running
//! time). A [`TraceSink`] receives one [`AlignEvent`] per fixpoint
//! iteration from both the full aligner and the incremental re-aligner,
//! so a server-side `POST /align` job or a CLI run can stream its
//! convergence progress instead of computing in silence.
//!
//! Sinks must be cheap relative to an iteration (which rescores at least
//! the dirty set) and are called from the aligning thread.

use std::io::Write;
use std::sync::Mutex;

use crate::json_string;

/// One fixpoint iteration, as reported to a sink.
#[derive(Clone, Copy, Debug)]
pub struct AlignEvent {
    /// `"align"` for the full fixpoint, `"incremental"` for a warm
    /// re-alignment.
    pub phase: &'static str,
    /// 1-based iteration number.
    pub iteration: usize,
    /// Rows rescored this iteration: the dirty-set size for an
    /// incremental run, every KB-1 entity for a full pass.
    pub dirty: usize,
    /// Instances whose maximal assignment changed (assignment churn).
    pub churn: usize,
    /// Largest score movement observed: the maximal per-row delta of an
    /// incremental iteration, or the relative change of the total
    /// assignment score for a full pass.
    pub max_delta: f64,
    /// Wall-clock seconds of the iteration.
    pub elapsed_secs: f64,
}

/// Receives per-iteration events. Implementations must be `Send + Sync`:
/// alignment may run on a job-runner thread while the sink is shared.
pub trait TraceSink: Send + Sync {
    /// Called once per completed fixpoint iteration.
    fn event(&self, event: &AlignEvent);
}

/// Discards every event (the default when tracing is off).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&self, _event: &AlignEvent) {}
}

/// Buffers events in memory — for tests and for callers that render a
/// table after the run.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<AlignEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The events recorded so far, in order. A poisoned lock (a recorder
    /// thread panicked mid-push) degrades to an empty view rather than
    /// propagating the panic to every later observer.
    pub fn events(&self) -> Vec<AlignEvent> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }
}

impl TraceSink for MemorySink {
    fn event(&self, event: &AlignEvent) {
        // Degrade on poison: tracing must never fail an alignment.
        if let Ok(mut events) = self.events.lock() {
            events.push(*event);
        }
    }
}

/// Writes one JSON line per event — the structured-log form of the
/// paper's iteration tables. Write errors are ignored: tracing must
/// never fail an alignment.
pub struct JsonLineSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLineSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> JsonLineSink<W> {
        JsonLineSink {
            out: Mutex::new(out),
        }
    }
}

/// A finite JSON number (non-finite values have no JSON spelling; zero
/// is the least-surprising substitute for a trace line).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_owned()
    }
}

impl<W: Write + Send> TraceSink for JsonLineSink<W> {
    fn event(&self, event: &AlignEvent) {
        let line = format!(
            "{{\"event\":\"align_iteration\",\"phase\":{},\"iteration\":{},\
             \"dirty\":{},\"churn\":{},\"max_delta\":{},\"elapsed_secs\":{}}}\n",
            json_string(event.phase),
            event.iteration,
            event.dirty,
            event.churn,
            json_f64(event.max_delta),
            json_f64(event.elapsed_secs),
        );
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
    }
}

/// A [`JsonLineSink`] on standard error — the conventional destination
/// for the daemon's structured logs.
pub fn stderr_json() -> JsonLineSink<std::io::Stderr> {
    JsonLineSink::new(std::io::stderr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_valid_and_ordered() {
        let sink = JsonLineSink::new(Vec::new());
        for i in 1..=3usize {
            sink.event(&AlignEvent {
                phase: "align",
                iteration: i,
                dirty: 10 * i,
                churn: i,
                max_delta: 0.25,
                elapsed_secs: 0.001,
            });
        }
        let out = sink.out.into_inner().unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"iteration\":1"), "{}", lines[0]);
        assert!(lines[2].contains("\"dirty\":30"), "{}", lines[2]);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
    }

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        sink.event(&AlignEvent {
            phase: "incremental",
            iteration: 1,
            dirty: 5,
            churn: 2,
            max_delta: 0.5,
            elapsed_secs: 0.0,
        });
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, "incremental");
        assert_eq!(events[0].dirty, 5);
    }

    #[test]
    fn non_finite_deltas_stay_json() {
        let sink = JsonLineSink::new(Vec::new());
        sink.event(&AlignEvent {
            phase: "align",
            iteration: 1,
            dirty: 0,
            churn: 0,
            max_delta: f64::INFINITY,
            elapsed_secs: f64::NAN,
        });
        let out = sink.out.into_inner().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"max_delta\":0"), "{text}");
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
    }
}
