//! Runtime telemetry for the paris workspace.
//!
//! Everything here is built for the serving hot path: a [`Counter`] or
//! [`Gauge`] is one relaxed atomic, a [`Histogram`] is a fixed array of
//! atomic buckets — recording a sample is a handful of relaxed
//! `fetch_add`s with **zero allocation**, safe to call from every worker
//! thread concurrently. Aggregation (quantiles, Prometheus text, JSON)
//! happens only at scrape time, over a consistent-enough relaxed read of
//! the buckets.
//!
//! The [`Registry`] names the instruments: a metric is `(name, labels)`,
//! families carry a help string, and the whole registry renders as either
//! Prometheus text exposition (version 0.0.4) or a JSON document — the
//! two bodies `GET /v1/metrics` serves.
//!
//! [`trace`] is the second half of observability: a sink interface for
//! the aligner's per-iteration events (dirty-set size, assignment churn,
//! score movement), which the paper reports in its tables but a long
//! `POST /align` job would otherwise compute invisibly.
//!
//! [`span`] is the third: structural timing. Where metrics aggregate and
//! trace sinks stream flat iteration rows, spans form parent-linked
//! trees per request/job/sync-cycle, propagate across daemons via
//! `traceparent` headers, and are retained with tail-sampling so the
//! slowest traces are always inspectable.
//!
//! [`series`] and [`flame`] are the analysis layer on top: bounded
//! per-iteration convergence series for long alignment runs, and
//! flame-profile aggregation that folds recorded spans into name-path
//! trees with self-time and per-path quantiles.

#![forbid(unsafe_code)]

pub mod flame;
pub mod series;
pub mod span;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

// ----------------------------------------------------------------------
// Instruments
// ----------------------------------------------------------------------

/// A monotonically increasing event count. Cheap to clone through an
/// `Arc`; all updates are relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A new counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement (resident bytes, generation, lag).
/// Unlike a [`Counter`] it can move both ways; the stored value is an
/// unsigned 64-bit quantity, which covers every gauge this workspace
/// exports.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A new gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: values 0–3 exactly, then four log-linear
/// sub-buckets per power of two up to `2^32` (µs ≈ 71 minutes), plus a
/// final overflow bucket. The relative quantile error above 4 is bounded
/// by one sub-bucket: ≤ 25% of the value, typically ~12%.
pub const HISTOGRAM_BUCKETS: usize = 124;

/// The bucket a value lands in. Log-linear: exact below 4, then
/// `4·(msb−2) + 4 + top-two-mantissa-bits`; everything ≥ `2^32` is
/// clamped into the last bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - 2)) & 3) as usize;
    (4 + (msb - 2) * 4 + sub).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive `(low, high)` value range of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 4 {
        return (idx as u64, idx as u64);
    }
    let octave = (idx - 4) / 4;
    let sub = ((idx - 4) % 4) as u64;
    let lo = (4 + sub) << octave;
    let hi = lo + (1u64 << octave) - 1;
    (lo, hi)
}

/// A fixed-bucket log-scale histogram of `u64` samples (the workspace
/// records **microseconds**). Recording is wait-free and allocation-free;
/// buckets are mergeable across threads and across histograms, and
/// p50/p90/p99/max are derived from the buckets at read time.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds another histogram's buckets into this one (e.g. per-thread
    /// histograms merged into a global one). The other histogram may be
    /// concurrently written; the merge is then a consistent snapshot of
    /// *some* prefix of its updates.
    pub fn merge_from(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A plain (non-atomic) copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // `count` is read *first*: concurrent recorders bump buckets
        // before count, so the bucket total can only be ≥ the count we
        // report, never behind it — quantile walks always terminate.
        let count = self.count.load(Ordering::Acquire);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with derived statistics.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0 < q ≤ 1`), estimated as the upper bound of
    /// the bucket containing the `⌈q·count⌉`-th sample, capped at the
    /// recorded maximum. Zero when empty. Monotone in `q` by
    /// construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Adds another snapshot's buckets into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

/// What a registered metric is, for exposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Sample {
    labels: Vec<(&'static str, String)>,
    handle: Handle,
}

struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Keyed by the rendered `{label="value",…}` suffix for determinism.
    samples: BTreeMap<String, Sample>,
}

/// Names the process's instruments and renders them. Registration takes
/// a write lock; it happens at startup and on first sight of a new label
/// value (a new pair, a new upstream), never per sample — the returned
/// `Arc` is the hot-path handle.
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<&'static str, Family>>,
}

/// The `{a="b",c="d"}` suffix of a sample (empty string for no labels).
/// Label *values* are escaped per the Prometheus text format.
fn label_suffix(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let owned: Vec<(&'static str, String)> =
            labels.iter().map(|&(k, v)| (k, v.to_owned())).collect();
        let key = label_suffix(&owned);
        let mut families = self.families.write().expect("obs registry poisoned");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind: MetricKind::Counter, // fixed up below on first insert
            samples: BTreeMap::new(),
        });
        if let Some(sample) = family.samples.get(&key) {
            assert_eq!(
                sample.handle.kind(),
                family.kind,
                "metric {name} registered with two kinds"
            );
            return sample.handle.clone();
        }
        let handle = make();
        if family.samples.is_empty() {
            family.kind = handle.kind();
        }
        assert_eq!(
            handle.kind(),
            family.kind,
            "metric {name} registered with two kinds"
        );
        family.samples.insert(
            key,
            Sample {
                labels: owned,
                handle: handle.clone(),
            },
        );
        handle
    }

    /// The counter `(name, labels)`, created on first use.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// The gauge `(name, labels)`, created on first use.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || Handle::Gauge(Arc::new(Gauge::new()))) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// The histogram `(name, labels)`, created on first use.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Handle::Histogram(Arc::new(Histogram::new()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Registers an externally owned counter (e.g. one embedded in a
    /// subsystem that must not depend on a registry). A sample already
    /// registered under `(name, labels)` is left in place.
    pub fn register_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        counter: &Arc<Counter>,
    ) {
        self.get_or_insert(name, help, labels, || Handle::Counter(Arc::clone(counter)));
    }

    /// Registers an externally owned gauge, like
    /// [`Registry::register_counter`].
    pub fn register_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        gauge: &Arc<Gauge>,
    ) {
        self.get_or_insert(name, help, labels, || Handle::Gauge(Arc::clone(gauge)));
    }

    /// The value of a registered counter, `None` when absent — test and
    /// CLI convenience, not a hot path.
    pub fn counter_value(&self, name: &str, labels: &[(&'static str, &str)]) -> Option<u64> {
        let owned: Vec<(&'static str, String)> =
            labels.iter().map(|&(k, v)| (k, v.to_owned())).collect();
        let key = label_suffix(&owned);
        let families = self.families.read().expect("obs registry poisoned");
        match &families.get(name)?.samples.get(&key)?.handle {
            Handle::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4). Histogram buckets are cumulative with `le` upper
    /// bounds in the recorded unit; empty buckets are elided (the
    /// cumulative counts stay correct without them).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.read().expect("obs registry poisoned");
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.label()));
            for sample in family.samples.values() {
                match &sample.handle {
                    Handle::Counter(c) => {
                        let suffix = label_suffix(&sample.labels);
                        out.push_str(&format!("{name}{suffix} {}\n", c.get()));
                    }
                    Handle::Gauge(g) => {
                        let suffix = label_suffix(&sample.labels);
                        out.push_str(&format!("{name}{suffix} {}\n", g.get()));
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            if n == 0 {
                                continue;
                            }
                            cumulative += n;
                            let mut labels = sample.labels.clone();
                            labels.push(("le", bucket_bounds(i).1.to_string()));
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                label_suffix(&labels)
                            ));
                        }
                        let mut labels = sample.labels.clone();
                        labels.push(("le", "+Inf".to_owned()));
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            label_suffix(&labels),
                            snap.count
                        ));
                        let suffix = label_suffix(&sample.labels);
                        out.push_str(&format!("{name}_sum{suffix} {}\n", snap.sum));
                        out.push_str(&format!("{name}_count{suffix} {}\n", snap.count));
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object:
    /// `{"counters":[…],"gauges":[…],"histograms":[…]}`, each entry
    /// `{"name":…,"labels":{…},…}`; histograms carry count/sum/max,
    /// derived p50/p90/p99, and the non-empty `[le, n]` bucket pairs.
    pub fn render_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        let families = self.families.read().expect("obs registry poisoned");
        for (name, family) in families.iter() {
            for sample in family.samples.values() {
                let mut entry = String::from("{");
                entry.push_str(&format!("\"name\":{}", json_string(name)));
                entry.push_str(",\"labels\":{");
                for (i, (k, v)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        entry.push(',');
                    }
                    entry.push_str(&format!("{}:{}", json_string(k), json_string(v)));
                }
                entry.push('}');
                match &sample.handle {
                    Handle::Counter(c) => {
                        entry.push_str(&format!(",\"value\":{}", c.get()));
                        entry.push('}');
                        counters.push(entry);
                    }
                    Handle::Gauge(g) => {
                        entry.push_str(&format!(",\"value\":{}", g.get()));
                        entry.push('}');
                        gauges.push(entry);
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        entry.push_str(&format!(
                            ",\"count\":{},\"sum\":{},\"max\":{},\
                             \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                            snap.count,
                            snap.sum,
                            snap.max,
                            snap.quantile(0.50),
                            snap.quantile(0.90),
                            snap.quantile(0.99),
                        ));
                        let mut first = true;
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            if n == 0 {
                                continue;
                            }
                            if !first {
                                entry.push(',');
                            }
                            first = false;
                            entry.push_str(&format!("[{},{n}]", bucket_bounds(i).1));
                        }
                        entry.push_str("]}");
                        histograms.push(entry);
                    }
                }
            }
        }
        format!(
            "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

/// A JSON string literal (quotes, backslashes, and control characters
/// escaped).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_roundtrip() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1000, 123456] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
        // Buckets tile the range with no gaps or overlaps.
        let mut expected_lo = 0u64;
        for idx in 0..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "gap before bucket {idx}");
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
        // Overflow clamps into the last bucket.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        let (p50, p90, p99) = (
            snap.quantile(0.50),
            snap.quantile(0.90),
            snap.quantile(0.99),
        );
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= snap.max);
        // Log-linear buckets: the estimate is within one sub-bucket
        // (≤ 25% relative) of the true quantile.
        assert!((400..=640).contains(&p50), "p50={p50}");
        assert!((850..=1000).contains(&p99), "p99={p99}");
        assert_eq!(snap.quantile(1.0), snap.max);
    }

    #[test]
    fn merge_is_exact() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 5, 9, 100, 5000] {
            a.record(v);
        }
        for v in [2u64, 5, 77, 100000] {
            b.record(v);
        }
        let combined = Histogram::new();
        combined.merge_from(&a);
        combined.merge_from(&b);
        let (sa, sb, sc) = (a.snapshot(), b.snapshot(), combined.snapshot());
        assert_eq!(sc.count, sa.count + sb.count);
        assert_eq!(sc.sum, sa.sum + sb.sum);
        assert_eq!(sc.max, sa.max.max(sb.max));
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.buckets, sc.buckets);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let (h, c) = (Arc::clone(&h), Arc::clone(&c));
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn registry_renders_both_formats() {
        let reg = Registry::new();
        reg.counter(
            "paris_requests_total",
            "Requests served.",
            &[("route", "sameas")],
        )
        .add(3);
        reg.gauge(
            "paris_pair_generation",
            "Pair generation.",
            &[("pair", "a")],
        )
        .set(7);
        let h = reg.histogram("paris_latency_us", "Latency (µs).", &[]);
        h.record(10);
        h.record(2000);

        let text = reg.render_prometheus();
        assert!(
            text.contains("# TYPE paris_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("paris_requests_total{route=\"sameas\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("paris_pair_generation{pair=\"a\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("paris_latency_us_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("paris_latency_us_sum 2010"), "{text}");
        assert!(text.contains("paris_latency_us_count 2"), "{text}");

        let json = reg.render_json();
        assert!(json.contains("\"name\":\"paris_requests_total\""), "{json}");
        assert!(json.contains("\"route\":\"sameas\""), "{json}");
        assert!(json.contains("\"count\":2"), "{json}");

        // Re-requesting the same (name, labels) returns the same handle.
        reg.counter(
            "paris_requests_total",
            "Requests served.",
            &[("route", "sameas")],
        )
        .inc();
        assert_eq!(
            reg.counter_value("paris_requests_total", &[("route", "sameas")]),
            Some(4)
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("m", "h", &[("k", "a\"b\\c")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("m{k=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
