//! Wall-time flame profiles folded from recorded spans.
//!
//! A [`SpanStore`](crate::span::SpanStore) retains individual spans; this
//! module aggregates them into the classic flame-graph shape: spans are
//! grouped by their **name path** (root name → child name → …), and each
//! path reports call count, total (inclusive) time, **self time** (total
//! minus the time spent in recorded children), and p50/p99 of the
//! individual span durations on that path.
//!
//! The fold is conservative by construction: every span is consumed by
//! exactly one path, a span whose parent is absent from the input (ring
//! eviction, cross-process parents) roots its own tree, and self time is
//! `total − Σ direct-children total`. For a well-nested forest (children
//! contained in their parents, as every span collector in this workspace
//! produces) the self times across the whole tree therefore sum to
//! exactly the root spans' wall time — the invariant
//! `/v1/debug/profile` is gated on.

use std::collections::HashMap;

use crate::span::{Span, SpanId};
use crate::Histogram;

/// One name path in the flame tree.
#[derive(Clone, Debug)]
pub struct FlameNode {
    /// Span name at this path element.
    pub name: &'static str,
    /// Spans folded into this path.
    pub count: u64,
    /// Total inclusive time of those spans, nanoseconds.
    pub total_ns: u64,
    /// Inclusive minus recorded children's inclusive, nanoseconds.
    pub self_ns: u64,
    /// Median single-span duration on this path, microseconds.
    pub p50_us: u64,
    /// 99th-percentile single-span duration on this path, microseconds.
    pub p99_us: u64,
    /// Child paths, largest total first.
    pub children: Vec<FlameNode>,
}

/// Folds a span forest into flame trees, one per root name, largest
/// total first.
///
/// Roots are the spans with no parent *in the input* — an explicit
/// `parent: None`, or a parent id the slice does not contain. With
/// `root: Some(name)`, spans of that name become the roots instead and
/// everything outside their subtrees is ignored (the `?root=` filter of
/// `/v1/debug/profile`). Duplicate span ids (a ring span also pinned in
/// a slow trace) are deduplicated; open spans (no end timestamp) are
/// skipped — a flame profile is about completed work.
pub fn aggregate(spans: &[Span], root: Option<&str>) -> Vec<FlameNode> {
    let mut seen = std::collections::HashSet::new();
    let spans: Vec<&Span> = spans
        .iter()
        .filter(|s| s.end_ns != 0 && seen.insert(s.id))
        .collect();
    let present: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
    let mut children: HashMap<SpanId, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match root {
            Some(name) => {
                if span.name == name {
                    roots.push(i);
                }
                if let Some(parent) = span.parent {
                    children.entry(parent).or_default().push(i);
                }
            }
            None => match span.parent {
                Some(parent) if present.contains(&parent) => {
                    children.entry(parent).or_default().push(i)
                }
                _ => roots.push(i),
            },
        }
    }
    // Each span is consumed by at most one path — this is what makes the
    // fold conservative even on degenerate inputs (parent cycles, a
    // filter name that appears on both a span and its descendant).
    let mut consumed = vec![false; spans.len()];
    fold_group(&spans, &children, &roots, &mut consumed)
}

fn fold_group(
    spans: &[&Span],
    children: &HashMap<SpanId, Vec<usize>>,
    members: &[usize],
    consumed: &mut [bool],
) -> Vec<FlameNode> {
    let mut by_name: HashMap<&'static str, Vec<usize>> = HashMap::new();
    let mut order: Vec<&'static str> = Vec::new();
    for &i in members {
        if consumed[i] {
            continue;
        }
        consumed[i] = true;
        let group = by_name.entry(spans[i].name).or_default();
        if group.is_empty() {
            order.push(spans[i].name);
        }
        group.push(i);
    }
    let mut nodes: Vec<FlameNode> = order
        .into_iter()
        .map(|name| {
            let group = &by_name[name];
            let durations = Histogram::new();
            let mut total_ns = 0u64;
            let mut child_members: Vec<usize> = Vec::new();
            for &i in group {
                let d = spans[i].duration_ns();
                total_ns += d;
                durations.record(d / 1_000);
                if let Some(kids) = children.get(&spans[i].id) {
                    child_members.extend_from_slice(kids);
                }
            }
            let child_nodes = fold_group(spans, children, &child_members, consumed);
            let child_total: u64 = child_nodes.iter().map(|c| c.total_ns).sum();
            let snap = durations.snapshot();
            FlameNode {
                name,
                count: group.len() as u64,
                total_ns,
                self_ns: total_ns.saturating_sub(child_total),
                p50_us: snap.quantile(0.50),
                p99_us: snap.quantile(0.99),
                children: child_nodes,
            }
        })
        .collect();
    nodes.sort_by_key(|n| std::cmp::Reverse(n.total_ns));
    nodes
}

/// Sum of inclusive root times across a forest, nanoseconds.
pub fn total_root_ns(nodes: &[FlameNode]) -> u64 {
    nodes.iter().map(|n| n.total_ns).sum()
}

/// Sum of self times across every path of a forest, nanoseconds. For a
/// well-nested forest this equals [`total_root_ns`].
pub fn total_self_ns(nodes: &[FlameNode]) -> u64 {
    nodes
        .iter()
        .map(|n| n.self_ns + total_self_ns(&n.children))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, TraceId};

    fn span(
        name: &'static str,
        trace: TraceId,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
    ) -> Span {
        let mut s = Span::begin(name, trace, parent);
        s.start_ns = start_ns;
        s.end_ns = end_ns;
        s
    }

    #[test]
    fn folds_siblings_by_name_and_conserves_self_time() {
        let trace = TraceId::random();
        let root = span("request", trace, None, 0, 1_000_000);
        let a1 = span("lookup", trace, Some(root.id), 0, 200_000);
        let a2 = span("lookup", trace, Some(root.id), 200_000, 500_000);
        let b = span("render", trace, Some(root.id), 500_000, 900_000);
        let leaf = span("decode", trace, Some(b.id), 500_000, 600_000);
        let forest = vec![root, a1, a2, b, leaf];
        let nodes = aggregate(&forest, None);

        assert_eq!(nodes.len(), 1);
        let request = &nodes[0];
        assert_eq!(request.name, "request");
        assert_eq!(request.count, 1);
        assert_eq!(request.total_ns, 1_000_000);
        // 1_000_000 − (500_000 lookup + 400_000 render)
        assert_eq!(request.self_ns, 100_000);
        let lookup = request
            .children
            .iter()
            .find(|c| c.name == "lookup")
            .expect("lookup path");
        assert_eq!(lookup.count, 2);
        assert_eq!(lookup.total_ns, 500_000);
        assert_eq!(lookup.self_ns, 500_000);
        let render = request
            .children
            .iter()
            .find(|c| c.name == "render")
            .expect("render path");
        assert_eq!(render.self_ns, 300_000);
        assert_eq!(render.children[0].name, "decode");
        assert_eq!(total_self_ns(&nodes), total_root_ns(&nodes));
    }

    #[test]
    fn orphans_root_their_own_trees_and_open_spans_are_skipped() {
        let trace = TraceId::random();
        let evicted_parent = SpanId::random();
        let orphan = span("pass", trace, Some(evicted_parent), 0, 500);
        let mut open = Span::begin("pending", trace, None);
        open.end_ns = 0;
        let nodes = aggregate(&[orphan, open], None);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].name, "pass");
        assert_eq!(nodes[0].total_ns, 500);
    }

    #[test]
    fn root_filter_reroots_the_profile() {
        let trace = TraceId::random();
        let job = span("align_job", trace, None, 0, 10_000);
        let iter1 = span("iteration", trace, Some(job.id), 0, 4_000);
        let iter2 = span("iteration", trace, Some(job.id), 4_000, 9_000);
        let pass = span("instance_pass", trace, Some(iter1.id), 0, 3_000);
        let forest = vec![job, iter1, iter2, pass];

        let nodes = aggregate(&forest, Some("iteration"));
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].name, "iteration");
        assert_eq!(nodes[0].count, 2);
        assert_eq!(nodes[0].total_ns, 9_000);
        assert_eq!(nodes[0].children[0].name, "instance_pass");
        assert_eq!(total_self_ns(&nodes), 9_000);

        assert!(aggregate(&forest, Some("no_such_span")).is_empty());
    }

    #[test]
    fn duplicate_span_ids_count_once() {
        let trace = TraceId::random();
        let s = span("op", trace, None, 0, 700);
        let nodes = aggregate(&[s.clone(), s], None);
        assert_eq!(nodes[0].count, 1);
        assert_eq!(nodes[0].total_ns, 700);
    }
}
