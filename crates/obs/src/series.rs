//! Per-iteration convergence series for alignment runs.
//!
//! The trace sinks in [`crate::trace`] stream flat iteration rows to a
//! log; this module keeps them *queryable*: a [`RunSeries`] buffers one
//! run's per-iteration measurements ([`IterationStats`]) with a fixed
//! cardinality, so a serving daemon can expose the live convergence
//! curve of a running `POST /align` job — dirty counts, assignment
//! churn, pairs appearing and vanishing, the sharpening equivalence-
//! probability distribution, per-pass durations — without unbounded
//! memory, however long the fixpoint runs.
//!
//! Scores are probabilities in `[0, 1]`; the histogram machinery in this
//! crate records `u64` samples, so probabilities are recorded in
//! **per-mille** via [`score_bucket`] (0‥=1000). A distribution that
//! piles up near 1000 is a run whose assignments have sharpened — the
//! paper's qualitative convergence story, made measurable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Histogram, HistogramSnapshot};

/// Fixed per-mille scale for probability scores recorded into `u64`
/// histograms.
pub const SCORE_SCALE: u64 = 1000;

/// Default cap on buffered iteration points — far above any real
/// fixpoint's iteration count, but a hard bound nonetheless.
pub const DEFAULT_SERIES_CAP: usize = 512;

/// The histogram sample of a probability score: per-mille, clamped to
/// `[0, 1]` first.
#[inline]
pub fn score_bucket(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * SCORE_SCALE as f64).round() as u64
}

/// A per-mille histogram snapshot of a stream of probability scores.
pub fn score_histogram(scores: impl IntoIterator<Item = f64>) -> HistogramSnapshot {
    let h = Histogram::new();
    for p in scores {
        h.record(score_bucket(p));
    }
    h.snapshot()
}

/// Measurements of one fixpoint iteration, as the observatory reports
/// them. (Distinct from `paris_core::IterationStats`, the paper-table
/// row persisted in snapshots: this type carries the live-monitoring
/// extras — pair turnover and the score distribution.)
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Entities rescored this iteration (the dirty set).
    pub dirty: u64,
    /// Instances whose maximal assignment changed (churn).
    pub changed: u64,
    /// Instances assigned now that were unassigned before.
    pub new_pairs: u64,
    /// Instances unassigned now that were assigned before.
    pub dropped_pairs: u64,
    /// Instances with an assignment after this iteration.
    pub assigned: u64,
    /// Distribution of assignment probabilities, per-mille
    /// ([`score_bucket`]).
    pub scores: HistogramSnapshot,
    /// Instance-pass wall time, microseconds.
    pub instance_us: u64,
    /// Sub-relation-pass wall time, microseconds.
    pub subrelation_us: u64,
}

/// A bounded buffer of one run's [`IterationStats`], shareable across
/// threads: the aligner pushes from its runner thread while the daemon's
/// request workers snapshot it for `GET /v1/jobs/<id>`. Points past the
/// cap are counted, not stored.
pub struct RunSeries {
    cap: usize,
    points: Mutex<Vec<IterationStats>>,
    truncated: AtomicU64,
}

impl Default for RunSeries {
    fn default() -> Self {
        RunSeries::with_capacity(DEFAULT_SERIES_CAP)
    }
}

impl RunSeries {
    /// An empty series with the default cap.
    pub fn new() -> RunSeries {
        RunSeries::default()
    }

    /// An empty series retaining at most `cap` points.
    pub fn with_capacity(cap: usize) -> RunSeries {
        RunSeries {
            cap,
            points: Mutex::new(Vec::new()),
            truncated: AtomicU64::new(0),
        }
    }

    /// The configured cap.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends one iteration's measurements; points beyond the cap are
    /// dropped and counted. A poisoned lock degrades to dropping.
    pub fn push(&self, stats: IterationStats) {
        let Ok(mut points) = self.points.lock() else {
            self.truncated.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if points.len() < self.cap {
            points.push(stats);
        } else {
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Points buffered so far.
    pub fn len(&self) -> usize {
        self.points.lock().map(|p| p.len()).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points dropped past the cap.
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// A copy of the buffered points, iteration order.
    pub fn snapshot(&self) -> Vec<IterationStats> {
        self.points.lock().map(|p| p.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(iteration: usize) -> IterationStats {
        IterationStats {
            iteration,
            dirty: 10,
            changed: 2,
            new_pairs: 1,
            dropped_pairs: 0,
            assigned: 8,
            scores: score_histogram([0.5, 0.9, 1.0]),
            instance_us: 100,
            subrelation_us: 50,
        }
    }

    #[test]
    fn score_buckets_are_per_mille_and_clamped() {
        assert_eq!(score_bucket(0.0), 0);
        assert_eq!(score_bucket(1.0), 1000);
        assert_eq!(score_bucket(0.5), 500);
        assert_eq!(score_bucket(-0.3), 0);
        assert_eq!(score_bucket(7.0), 1000);
    }

    #[test]
    fn series_is_bounded_and_counts_truncation() {
        let series = RunSeries::with_capacity(3);
        assert!(series.is_empty());
        for i in 1..=5 {
            series.push(point(i));
        }
        assert_eq!(series.len(), 3);
        assert_eq!(series.truncated(), 2);
        let points = series.snapshot();
        assert_eq!(
            points.iter().map(|p| p.iteration).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(points[0].scores.count, 3);
    }

    #[test]
    fn score_histogram_tracks_the_distribution() {
        let snap = score_histogram([0.1, 0.9, 0.95, 1.0]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max, 1000);
        assert!(snap.quantile(0.99) >= 900);
    }
}
