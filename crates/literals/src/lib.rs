//! Literal similarity functions for PARIS (paper §5.3).
//!
//! "The probability that two literals are equal is known a priori and will
//! not change" — literal equivalences are *clamped* inputs to the
//! probabilistic model, not outputs of it. This crate implements the
//! paper's default (identity after numeric normalization), the
//! normalized-string measure of §6.3, and the graded edit-distance /
//! proportional-numeric measures §5.3 sketches, behind one enum:
//! [`LiteralSimilarity`].
//!
//! ```
//! use paris_literals::LiteralSimilarity;
//! use paris_rdf::Literal;
//!
//! let identity = LiteralSimilarity::Identity;
//! let normalized = LiteralSimilarity::Normalized;
//! let a = Literal::plain("213/467-1108");
//! let b = Literal::plain("213-467-1108");
//! assert_eq!(identity.probability(&a, &b), 0.0);   // the paper's §6.3 failure
//! assert_eq!(normalized.probability(&a, &b), 1.0); // ... and its fix
//! ```

#![forbid(unsafe_code)]

pub mod distance;
pub mod normalize;
pub mod numeric;
pub mod similarity;

pub use distance::{levenshtein, levenshtein_similarity, token_jaccard};
pub use normalize::{normalize_alnum, token_sort_key, tokens};
pub use numeric::{parse_numeric, proportional_difference};
pub use similarity::LiteralSimilarity;
