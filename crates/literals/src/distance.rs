//! Edit-distance primitives.
//!
//! §5.3: "The probability that two strings are equal can be inverse
//! proportional to their edit distance." We provide Levenshtein distance
//! (banded, O(min(n,m)) memory) and a similarity normalization.

/// Levenshtein distance between two strings, by Unicode scalar values.
///
/// Classic two-row dynamic program; strings are compared by `char`, so
/// multi-byte characters count as single edits.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner loop for memory locality.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut current = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        current[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let substitution = prev[j] + usize::from(lc != sc);
            current[j + 1] = substitution.min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[short.len()]
}

/// Similarity in `[0, 1]`: `1 − lev(a, b) / max(|a|, |b|)`.
///
/// Empty-vs-empty is 1 (identical); empty-vs-nonempty is 0.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaccard similarity of the two token multisets (as sets).
pub fn token_jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::BTreeSet<&str> = a.iter().map(String::as_str).collect();
    let sb: std::collections::BTreeSet<&str> = b.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("abcdef", "azced"),
            levenshtein("azced", "abcdef")
        );
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本", "日本語"), 1);
    }

    #[test]
    fn similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("a", ""), 0.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        let s = levenshtein_similarity("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_cases() {
        let t = |s: &str| crate::normalize::tokens(s);
        assert_eq!(token_jaccard(&t("a b c"), &t("a b c")), 1.0);
        assert_eq!(token_jaccard(&t("a b"), &t("c d")), 0.0);
        assert!((token_jaccard(&t("a b c"), &t("b c d")) - 0.5).abs() < 1e-12);
        assert_eq!(token_jaccard(&t(""), &t("")), 1.0);
    }

    #[test]
    fn triangle_inequality_sample() {
        let (a, b, c) = ("restaurant", "restorant", "resturant");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }
}
