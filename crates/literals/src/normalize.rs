//! String normalization used by literal matchers.
//!
//! §6.3 of the paper: after plain identity matching failed on restaurant
//! phone numbers ("213/467-1108" vs "213-467-1108"), the authors plugged in
//! "a different string equality measure \[that] normalizes two strings by
//! removing all non-alphanumeric characters and lowercasing them".

/// Removes all non-alphanumeric characters and lowercases the rest —
/// the paper's normalization, verbatim.
pub fn normalize_alnum(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

/// Splits into lowercase alphanumeric tokens.
pub fn tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

/// Lowercase alphanumeric tokens, sorted — a word-order-insensitive key
/// ("Sugata Sanshirô" and "Sanshiro Sugata" agree after accent folding is
/// *not* applied; token sorting handles the word-swap half of that example).
pub fn token_sort_key(s: &str) -> String {
    let mut ts = tokens(s);
    ts.sort_unstable();
    ts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_number_formats_agree() {
        assert_eq!(
            normalize_alnum("213/467-1108"),
            normalize_alnum("213-467-1108")
        );
        assert_eq!(normalize_alnum("213/467-1108"), "2134671108");
    }

    #[test]
    fn case_and_punctuation_fold() {
        assert_eq!(normalize_alnum("L'Étoile, Paris!"), "létoileparis");
    }

    #[test]
    fn empty_and_symbol_only() {
        assert_eq!(normalize_alnum(""), "");
        assert_eq!(normalize_alnum("-/-"), "");
    }

    #[test]
    fn tokens_split_on_punctuation() {
        assert_eq!(
            tokens("King of the Royal-Mounted"),
            vec!["king", "of", "the", "royal", "mounted"]
        );
    }

    #[test]
    fn token_sort_key_is_order_insensitive() {
        assert_eq!(
            token_sort_key("Sanshiro Sugata"),
            token_sort_key("Sugata  Sanshiro")
        );
        assert_ne!(
            token_sort_key("Sanshiro Sugata"),
            token_sort_key("Sugata Sanshirô")
        );
    }

    #[test]
    fn unicode_lowercasing_expands() {
        // 'İ' lowercases to "i\u{307}" — two chars; must not panic.
        assert_eq!(normalize_alnum("İstanbul"), "i\u{307}stanbul");
    }
}
