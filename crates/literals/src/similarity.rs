//! Pluggable literal-equivalence functions (paper §5.3).
//!
//! "The probability that two literals are equal is known a priori and will
//! not change. Therefore, such probabilities can be set upfront (clamped)."
//! PARIS plugs those clamped probabilities into Eq. (13); everything else
//! in the model is derived. The paper's own implementation used the
//! simplest choice — identity after numeric normalization — and §6.3
//! additionally evaluates the normalized-string measure. Both are here,
//! plus the graded measures §5.3 sketches.
//!
//! A [`LiteralSimilarity`] provides two operations:
//!
//! * [`keys`](LiteralSimilarity::keys) — *blocking keys*: two literals can
//!   only have non-zero probability if they share at least one key. The
//!   aligner indexes one KB's literals by key, making candidate lookup
//!   O(1) per literal instead of O(n²) over literal pairs.
//! * [`probability`](LiteralSimilarity::probability) — the clamped
//!   `Pr(x ≡ y)` for a candidate pair.

use paris_rdf::Literal;

use crate::distance::levenshtein_similarity;
use crate::normalize::{normalize_alnum, token_sort_key};
use crate::numeric::{canonical_key, numeric_probability, parse_numeric};

/// A literal-equivalence function: blocking keys + clamped probability.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum LiteralSimilarity {
    /// The paper's default (§5.3): numeric values are normalized by
    /// stripping datatype/dimension information; then `Pr = 1` iff the
    /// lexical forms (or numeric values) are identical, else 0.
    #[default]
    Identity,
    /// §6.3's improved measure: strip non-alphanumerics, lowercase, then
    /// exact match. Fixes `213/467-1108` vs `213-467-1108`.
    Normalized,
    /// Graded similarity: `1 − lev/maxlen` when at least `min_similarity`,
    /// else 0. Blocked on normalized form and normalized 4-prefix, so only
    /// near-duplicates are even considered.
    EditDistance {
        /// Similarity threshold below which the probability is clamped to 0.
        min_similarity: f64,
    },
    /// Word-order-insensitive exact match on sorted lowercase tokens —
    /// catches the paper's *Sugata Sanshirô* / *Sanshiro Sugata* failure
    /// mode (§6.4).
    TokenSort,
    /// Numeric-aware: numbers match with probability falling linearly from
    /// 1 (equal) to 0 (at `tolerance` proportional difference); strings
    /// fall back to identity.
    NumericProportional {
        /// Proportional difference at which probability reaches 0.
        tolerance: f64,
    },
}

impl LiteralSimilarity {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LiteralSimilarity::Identity => "identity",
            LiteralSimilarity::Normalized => "normalized",
            LiteralSimilarity::EditDistance { .. } => "edit-distance",
            LiteralSimilarity::TokenSort => "token-sort",
            LiteralSimilarity::NumericProportional { .. } => "numeric-proportional",
        }
    }

    /// Blocking keys of a literal. Two literals with disjoint key sets have
    /// probability 0 by construction.
    pub fn keys(&self, literal: &Literal) -> Vec<String> {
        let value = literal.value();
        match self {
            LiteralSimilarity::Identity => {
                vec![match parse_numeric(value) {
                    Some(x) => canonical_key(x),
                    None => value.to_owned(),
                }]
            }
            LiteralSimilarity::Normalized => vec![normalize_alnum(value)],
            LiteralSimilarity::EditDistance { .. } => {
                let norm = normalize_alnum(value);
                let prefix: String = norm.chars().take(4).collect();
                if prefix == norm {
                    vec![norm]
                } else {
                    vec![norm, format!("p:{prefix}")]
                }
            }
            LiteralSimilarity::TokenSort => vec![token_sort_key(value)],
            LiteralSimilarity::NumericProportional { .. } => {
                vec![match parse_numeric(value) {
                    Some(x) => canonical_key(x),
                    None => value.to_owned(),
                }]
            }
        }
    }

    /// The clamped equivalence probability `Pr(a ≡ b)`.
    ///
    /// Always in `[0, 1]`; symmetric; `1` for identical literals under
    /// every variant (reflexivity of ≡).
    pub fn probability(&self, a: &Literal, b: &Literal) -> f64 {
        let (va, vb) = (a.value(), b.value());
        match self {
            LiteralSimilarity::Identity => match (parse_numeric(va), parse_numeric(vb)) {
                (Some(x), Some(y)) => f64::from(u8::from(x == y)),
                _ => f64::from(u8::from(va == vb)),
            },
            LiteralSimilarity::Normalized => {
                f64::from(u8::from(normalize_alnum(va) == normalize_alnum(vb)))
            }
            LiteralSimilarity::EditDistance { min_similarity } => {
                if va == vb {
                    return 1.0;
                }
                let sim = levenshtein_similarity(&normalize_alnum(va), &normalize_alnum(vb));
                if sim >= *min_similarity {
                    sim
                } else {
                    0.0
                }
            }
            LiteralSimilarity::TokenSort => {
                f64::from(u8::from(token_sort_key(va) == token_sort_key(vb)))
            }
            LiteralSimilarity::NumericProportional { tolerance } => {
                match (parse_numeric(va), parse_numeric(vb)) {
                    (Some(x), Some(y)) => numeric_probability(x, y, *tolerance),
                    _ => f64::from(u8::from(va == vb)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> Literal {
        Literal::plain(s)
    }

    #[test]
    fn identity_is_strict() {
        let m = LiteralSimilarity::Identity;
        assert_eq!(m.probability(&lit("abc"), &lit("abc")), 1.0);
        assert_eq!(m.probability(&lit("abc"), &lit("Abc")), 0.0);
        assert_eq!(
            m.probability(&lit("213/467-1108"), &lit("213-467-1108")),
            0.0
        );
    }

    #[test]
    fn identity_normalizes_numbers() {
        let m = LiteralSimilarity::Identity;
        assert_eq!(m.probability(&lit("42"), &lit("42.0")), 1.0);
        assert_eq!(m.probability(&lit("42"), &lit("42.5")), 0.0);
        assert_eq!(m.keys(&lit("42")), m.keys(&lit("4.2e1")));
    }

    #[test]
    fn normalized_fixes_phone_formats() {
        let m = LiteralSimilarity::Normalized;
        assert_eq!(
            m.probability(&lit("213/467-1108"), &lit("213-467-1108")),
            1.0
        );
        assert_eq!(m.keys(&lit("213/467-1108")), m.keys(&lit("213-467-1108")));
        assert_eq!(m.probability(&lit("abc"), &lit("ABC!")), 1.0);
        assert_eq!(m.probability(&lit("abc"), &lit("abd")), 0.0);
    }

    #[test]
    fn edit_distance_grades() {
        let m = LiteralSimilarity::EditDistance {
            min_similarity: 0.7,
        };
        assert_eq!(m.probability(&lit("restaurant"), &lit("restaurant")), 1.0);
        let p = m.probability(&lit("restaurant"), &lit("restorant"));
        assert!(p > 0.7 && p < 1.0, "{p}");
        assert_eq!(m.probability(&lit("restaurant"), &lit("zebra")), 0.0);
    }

    #[test]
    fn edit_distance_keys_include_prefix() {
        let m = LiteralSimilarity::EditDistance {
            min_similarity: 0.7,
        };
        let keys = m.keys(&lit("restaurant"));
        assert!(keys.contains(&"restaurant".to_owned()));
        assert!(keys.contains(&"p:rest".to_owned()));
        // short strings don't duplicate the key
        assert_eq!(m.keys(&lit("ab")), vec!["ab".to_owned()]);
    }

    #[test]
    fn token_sort_swaps_words() {
        let m = LiteralSimilarity::TokenSort;
        assert_eq!(
            m.probability(&lit("Sanshiro Sugata"), &lit("Sugata Sanshiro")),
            1.0
        );
        assert_eq!(
            m.probability(&lit("Sanshiro Sugata"), &lit("Sugata Sanshirô")),
            0.0
        );
    }

    #[test]
    fn numeric_proportional_grades() {
        let m = LiteralSimilarity::NumericProportional { tolerance: 0.1 };
        assert_eq!(m.probability(&lit("100"), &lit("100.0")), 1.0);
        let p = m.probability(&lit("100"), &lit("99"));
        assert!(p > 0.8 && p < 1.0, "{p}");
        assert_eq!(m.probability(&lit("100"), &lit("50")), 0.0);
        // strings fall back to identity
        assert_eq!(m.probability(&lit("x"), &lit("x")), 1.0);
        assert_eq!(m.probability(&lit("x"), &lit("y")), 0.0);
    }

    #[test]
    fn all_variants_reflexive_and_symmetric() {
        let variants = [
            LiteralSimilarity::Identity,
            LiteralSimilarity::Normalized,
            LiteralSimilarity::EditDistance {
                min_similarity: 0.5,
            },
            LiteralSimilarity::TokenSort,
            LiteralSimilarity::NumericProportional { tolerance: 0.05 },
        ];
        let samples = ["abc", "213/467-1108", "42", "Sugata Sanshiro", ""];
        for m in &variants {
            for a in samples {
                assert_eq!(
                    m.probability(&lit(a), &lit(a)),
                    1.0,
                    "{m:?} not reflexive on {a:?}"
                );
                for b in samples {
                    let ab = m.probability(&lit(a), &lit(b));
                    let ba = m.probability(&lit(b), &lit(a));
                    assert!((ab - ba).abs() < 1e-12, "{m:?} asymmetric on {a:?}/{b:?}");
                    assert!((0.0..=1.0).contains(&ab));
                }
            }
        }
    }

    #[test]
    fn shared_key_is_necessary_for_match() {
        // The blocking contract: probability > 0 ⇒ keys intersect,
        // on a sample of realistic pairs.
        let variants = [
            LiteralSimilarity::Identity,
            LiteralSimilarity::Normalized,
            LiteralSimilarity::TokenSort,
            LiteralSimilarity::NumericProportional { tolerance: 0.05 },
        ];
        let samples = [
            "abc",
            "ABC",
            "a b c",
            "42",
            "42.0",
            "213/467-1108",
            "213-467-1108",
        ];
        for m in &variants {
            for a in samples {
                for b in samples {
                    if m.probability(&lit(a), &lit(b)) > 0.0 {
                        let ka = m.keys(&lit(a));
                        let kb = m.keys(&lit(b));
                        assert!(
                            ka.iter().any(|k| kb.contains(k)),
                            "{m:?}: {a:?} ≈ {b:?} but keys disjoint ({ka:?} / {kb:?})"
                        );
                    }
                }
            }
        }
    }
}
