//! Numeric literal handling.
//!
//! §5.3: "We normalize numeric values by removing all data type or
//! dimension information", and "the probability that two numeric values of
//! the same dimension are equal can be a function of their proportional
//! difference".

/// Attempts to read a literal's lexical form as a number.
///
/// Accepts optional surrounding whitespace, a leading sign, decimal point,
/// and exponent — i.e. the union of the XSD numeric lexical spaces. Returns
/// `None` for NaN/infinite results and non-numeric strings.
pub fn parse_numeric(value: &str) -> Option<f64> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return None;
    }
    let parsed: f64 = trimmed.parse().ok()?;
    parsed.is_finite().then_some(parsed)
}

/// Proportional difference `|a − b| / max(|a|, |b|)`, with 0 for two zeros.
pub fn proportional_difference(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Equality probability for two numbers: linear fall-off from 1 at equal
/// values to 0 at `tolerance` proportional difference.
pub fn numeric_probability(a: f64, b: f64, tolerance: f64) -> f64 {
    debug_assert!(tolerance > 0.0, "tolerance must be positive");
    let d = proportional_difference(a, b);
    (1.0 - d / tolerance).max(0.0)
}

/// A canonical blocking key so that numerically-equal lexical forms ("42",
/// "42.0", "4.2e1") land in the same candidate bucket.
pub fn canonical_key(x: f64) -> String {
    // Round to 12 significant digits to absorb parse noise, then render
    // minimally. f64 formatting in Rust is already shortest-round-trip.
    let rounded = format!("{x:.12e}").parse::<f64>().unwrap_or(x);
    format!("{rounded}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_xsd_forms() {
        assert_eq!(parse_numeric("42"), Some(42.0));
        assert_eq!(parse_numeric("-3.25"), Some(-3.25));
        assert_eq!(parse_numeric(" 4.2e1 "), Some(42.0));
        assert_eq!(parse_numeric("+0.5"), Some(0.5));
    }

    #[test]
    fn parse_rejects_non_numbers() {
        assert_eq!(parse_numeric(""), None);
        assert_eq!(parse_numeric("abc"), None);
        assert_eq!(parse_numeric("1 2"), None);
        assert_eq!(parse_numeric("NaN"), None);
        assert_eq!(parse_numeric("inf"), None);
    }

    #[test]
    fn proportional_difference_cases() {
        assert_eq!(proportional_difference(0.0, 0.0), 0.0);
        assert_eq!(proportional_difference(100.0, 100.0), 0.0);
        assert!((proportional_difference(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert!((proportional_difference(-100.0, 100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn probability_fall_off() {
        assert_eq!(numeric_probability(10.0, 10.0, 0.05), 1.0);
        assert_eq!(numeric_probability(10.0, 20.0, 0.05), 0.0);
        let p = numeric_probability(100.0, 99.0, 0.05);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn canonical_keys_unify_lexical_forms() {
        let k = |s: &str| canonical_key(parse_numeric(s).unwrap());
        assert_eq!(k("42"), k("42.0"));
        assert_eq!(k("42"), k("4.2e1"));
        assert_ne!(k("42"), k("42.1"));
    }
}
