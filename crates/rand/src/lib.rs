//! Minimal deterministic random-number generation for the PARIS workspace.
//!
//! The synthetic-dataset generators only need a seedable, reproducible,
//! uniform generator — not cryptographic strength, OS entropy, or
//! distributions. This in-workspace shim provides exactly that surface
//! (`rngs::StdRng`, [`SeedableRng`], [`RngExt::random_range`]) so the
//! workspace builds with no external dependencies and no network access.
//!
//! The generator is xoshiro256** seeded through SplitMix64. Streams are
//! stable across platforms and releases: the datasets a given seed
//! produces are part of the reproduction's fixtures.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Small, fast, and with 256 bits of state — more than enough for
    /// data generation. The name mirrors the `rand` crate so call sites
    /// read idiomatically.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniform draw from `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        self.random_range(0.0..1.0)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(10..=12);
            assert!((10..=12).contains(&y));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let n: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn unit_draws_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<f64> = (0..2000).map(|_| rng.random_unit()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.1));
        assert!(draws.iter().any(|&x| x > 0.9));
    }
}
