//! Baseline aligners the paper compares against.
//!
//! §6.4: "This is a considerable improvement over a baseline approach
//! that aligns entities by matching their `rdfs:label` properties
//! (achieving 97 % precision and only 70 % recall, with an F-score of
//! 82 %)." [`label_match`] implements that baseline.

//! [`jaccard_match`] additionally implements the Appendix-C strawman —
//! Jaccard set-overlap of literal values, with no functionality weighting
//! — whose failure modes motivate the probabilistic model.

#![forbid(unsafe_code)]

pub mod jaccard_match;
pub mod label_match;

pub use jaccard_match::{jaccard_baseline, JaccardBaselineResult};
pub use label_match::{label_baseline, LabelBaselineResult};
