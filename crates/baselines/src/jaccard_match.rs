//! Jaccard set-overlap baseline (the Appendix C strawman).
//!
//! Appendix C of the paper discusses — and rejects — treating instance
//! matching as a set-similarity problem: "One could generalize a set
//! equivalence measure (such as the Jaccard index) to sets with
//! probabilistic equivalences. However, one would still need to take into
//! account the functionality of the relations: If two people share an
//! e-mail address (high inverse functionality), they are almost certainly
//! equivalent. By contrast, if two people share the city they live in,
//! they are not necessarily equivalent."
//!
//! This module implements exactly that strawman: each instance is reduced
//! to its *set of literal values* (relations ignored!), candidates are
//! scored by Jaccard overlap, and the best candidate above a threshold
//! wins. The `appendix_c` bench shows where it breaks: shared
//! low-functionality values (home cities, categories) inflate similarity,
//! while a single decisive shared e-mail is diluted by differing
//! incidental values.

use paris_kb::{EntityId, EntityKind, FxHashMap, Kb};

/// Result of the Jaccard baseline.
#[derive(Clone, Debug, Default)]
pub struct JaccardBaselineResult {
    /// Matched pairs with their Jaccard scores, one per KB-1 instance.
    pub pairs: Vec<(EntityId, EntityId, f64)>,
}

/// Per-instance bag of literal values (as interned target-side ids where
/// possible, falling back to strings for the source side).
fn literal_sets(kb: &Kb) -> FxHashMap<EntityId, Vec<String>> {
    let mut sets: FxHashMap<EntityId, Vec<String>> = FxHashMap::default();
    for x in kb.instances() {
        let mut values: Vec<String> = kb
            .facts(x)
            .iter()
            .filter_map(|&(_, y)| kb.literal(y).map(|l| l.value().to_owned()))
            .collect();
        values.sort_unstable();
        values.dedup();
        if !values.is_empty() {
            sets.insert(x, values);
        }
    }
    sets
}

/// Runs the baseline: for every KB-1 instance, the KB-2 instance with the
/// highest Jaccard overlap of literal values, if at least `min_jaccard`.
pub fn jaccard_baseline(kb1: &Kb, kb2: &Kb, min_jaccard: f64) -> JaccardBaselineResult {
    let sets1 = literal_sets(kb1);
    let sets2 = literal_sets(kb2);

    // Invert KB-2: literal value → instances carrying it.
    let mut by_value: FxHashMap<&str, Vec<EntityId>> = FxHashMap::default();
    for (&x2, values) in &sets2 {
        for v in values {
            by_value.entry(v.as_str()).or_default().push(x2);
        }
    }

    let mut pairs = Vec::new();
    let mut overlap: FxHashMap<EntityId, usize> = FxHashMap::default();
    let mut ordered: Vec<EntityId> = sets1.keys().copied().collect();
    ordered.sort_unstable();
    for x1 in ordered {
        let values = &sets1[&x1];
        overlap.clear();
        for v in values {
            if let Some(cands) = by_value.get(v.as_str()) {
                for &x2 in cands {
                    *overlap.entry(x2).or_insert(0) += 1;
                }
            }
        }
        let best = overlap
            .iter()
            .map(|(&x2, &inter)| {
                let union = values.len() + sets2[&x2].len() - inter;
                (x2, inter as f64 / union as f64)
            })
            // max by score, ties to the smallest id for determinism
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
        if let Some((x2, score)) = best {
            if score >= min_jaccard {
                pairs.push((x1, x2, score));
            }
        }
    }
    JaccardBaselineResult { pairs }
}

/// Convenience: instances only, as `(EntityId, EntityId)`.
impl JaccardBaselineResult {
    /// The matched pairs without scores.
    pub fn assignments(&self) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        self.pairs.iter().map(|&(a, b, _)| (a, b))
    }
}

/// Guard: the baseline must only consider instances (documented contract).
#[allow(dead_code)]
fn kind_is_instance(kb: &Kb, e: EntityId) -> bool {
    kb.kind(e) == EntityKind::Instance
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn kb(name: &str, rows: &[(&str, &[&str])]) -> Kb {
        let mut b = KbBuilder::new(name);
        for (entity, values) in rows {
            for (i, v) in values.iter().enumerate() {
                b.add_literal_fact(
                    format!("http://{name}/{entity}"),
                    format!("http://{name}/attr{i}"),
                    Literal::plain(*v),
                );
            }
        }
        b.build()
    }

    #[test]
    fn identical_sets_score_one() {
        let kb1 = kb("a", &[("x", &["p", "q", "r"])]);
        let kb2 = kb("b", &[("u", &["p", "q", "r"])]);
        let r = jaccard_baseline(&kb1, &kb2, 0.5);
        assert_eq!(r.pairs.len(), 1);
        assert_eq!(r.pairs[0].2, 1.0);
    }

    #[test]
    fn partial_overlap_scores_fraction() {
        let kb1 = kb("a", &[("x", &["p", "q"])]);
        let kb2 = kb("b", &[("u", &["q", "r"])]);
        let r = jaccard_baseline(&kb1, &kb2, 0.0);
        assert_eq!(r.pairs.len(), 1);
        assert!((r.pairs[0].2 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_filters() {
        let kb1 = kb("a", &[("x", &["p", "q"])]);
        let kb2 = kb("b", &[("u", &["q", "r"])]);
        assert!(jaccard_baseline(&kb1, &kb2, 0.5).pairs.is_empty());
    }

    #[test]
    fn appendix_c_failure_mode() {
        // x shares a decisive e-mail with u, but u has many extra values;
        // v shares three incidental low-functionality values with x.
        // Jaccard prefers v — the wrong answer PARIS avoids by weighting
        // with inverse functionality.
        let kb1 = kb(
            "a",
            &[("x", &["alice@x.org", "Springfield", "teacher", "reading"])],
        );
        let kb2 = kb(
            "b",
            &[
                (
                    "u",
                    &[
                        "alice@x.org",
                        "Shelbyville",
                        "lawyer",
                        "golf",
                        "chess",
                        "opera",
                    ],
                ),
                ("v", &["Springfield", "teacher", "reading", "bob@y.org"]),
            ],
        );
        let r = jaccard_baseline(&kb1, &kb2, 0.0);
        let v = kb2.entity_by_iri("http://b/v").unwrap();
        assert_eq!(
            r.pairs[0].1, v,
            "Jaccard picks the wrong candidate by design"
        );
        assert!(r.pairs[0].2 > 0.4);
    }

    #[test]
    fn instances_without_literals_are_skipped() {
        let mut b = KbBuilder::new("a");
        b.add_fact("http://a/x", "http://a/r", "http://a/y");
        let kb1 = b.build();
        let kb2 = kb("b", &[("u", &["p"])]);
        assert!(jaccard_baseline(&kb1, &kb2, 0.0).pairs.is_empty());
    }

    #[test]
    fn deterministic_tie_breaking() {
        let kb1 = kb("a", &[("x", &["p"])]);
        let kb2 = kb("b", &[("u1", &["p"]), ("u2", &["p"])]);
        let r1 = jaccard_baseline(&kb1, &kb2, 0.0);
        let r2 = jaccard_baseline(&kb1, &kb2, 0.0);
        assert_eq!(r1.pairs, r2.pairs);
    }
}
