//! The `rdfs:label` exact-match baseline (paper §6.4).
//!
//! Aligns an instance of KB 1 to an instance of KB 2 iff they carry
//! exactly one identical `rdfs:label` value *and* that value is unambiguous
//! (borne by exactly one instance on each side). This is the natural
//! strawman: precise — identical unique names rarely lie — but blind to
//! every entity whose label was reformatted, translated, or dropped, which
//! is why the paper measures it at 97 % precision / 70 % recall against
//! PARIS's 94 % / 90 %.

use paris_kb::{EntityId, EntityKind, FxHashMap, Kb};
use paris_rdf::vocab::RDFS_LABEL;

/// Alignment produced by the label baseline.
#[derive(Clone, Debug, Default)]
pub struct LabelBaselineResult {
    /// Matched pairs `(KB-1 instance, KB-2 instance)`.
    pub pairs: Vec<(EntityId, EntityId)>,
    /// KB-1 instances with at least one label (the baseline's reach).
    pub labeled_1: usize,
    /// KB-2 instances with at least one label.
    pub labeled_2: usize,
}

/// Collects `instance → labels` and `label → instances` for one KB.
fn label_index(kb: &Kb) -> FxHashMap<String, Vec<EntityId>> {
    let mut by_label: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    if let Some(label_rel) = kb.relation_by_iri(RDFS_LABEL) {
        for (x, l) in kb.pairs(label_rel) {
            if kb.kind(x) != EntityKind::Instance {
                continue;
            }
            if let Some(lit) = kb.literal(l) {
                by_label.entry(lit.value().to_owned()).or_default().push(x);
            }
        }
    }
    by_label
}

/// Runs the baseline: unambiguous exact-label matching.
pub fn label_baseline(kb1: &Kb, kb2: &Kb) -> LabelBaselineResult {
    let idx1 = label_index(kb1);
    let idx2 = label_index(kb2);

    let count_distinct = |idx: &FxHashMap<String, Vec<EntityId>>| {
        let mut all: Vec<EntityId> = idx.values().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    };

    let mut pairs = Vec::new();
    for (label, e1s) in &idx1 {
        if e1s.len() != 1 {
            continue; // ambiguous on side 1
        }
        if let Some(e2s) = idx2.get(label) {
            if e2s.len() == 1 {
                pairs.push((e1s[0], e2s[0]));
            }
        }
    }
    pairs.sort_unstable();
    LabelBaselineResult {
        pairs,
        labeled_1: count_distinct(&idx1),
        labeled_2: count_distinct(&idx2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn kb(name: &str, labels: &[(&str, &str)]) -> Kb {
        let mut b = KbBuilder::new(name);
        for (entity, label) in labels {
            b.add_literal_fact(
                format!("http://{name}/{entity}"),
                RDFS_LABEL,
                Literal::plain(*label),
            );
        }
        b.build()
    }

    #[test]
    fn unique_labels_match() {
        let kb1 = kb("a", &[("x", "Alice"), ("y", "Bob")]);
        let kb2 = kb("b", &[("u", "Alice"), ("v", "Carol")]);
        let r = label_baseline(&kb1, &kb2);
        assert_eq!(r.pairs.len(), 1);
        let (e1, e2) = r.pairs[0];
        assert_eq!(kb1.iri(e1).unwrap().as_str(), "http://a/x");
        assert_eq!(kb2.iri(e2).unwrap().as_str(), "http://b/u");
        assert_eq!(r.labeled_1, 2);
        assert_eq!(r.labeled_2, 2);
    }

    #[test]
    fn ambiguous_labels_are_skipped() {
        let kb1 = kb("a", &[("x1", "John Smith"), ("x2", "John Smith")]);
        let kb2 = kb("b", &[("u", "John Smith")]);
        assert!(label_baseline(&kb1, &kb2).pairs.is_empty());
        // ... and in the other direction too.
        let kb3 = kb("c", &[("x", "John Smith")]);
        let kb4 = kb("d", &[("u1", "John Smith"), ("u2", "John Smith")]);
        assert!(label_baseline(&kb3, &kb4).pairs.is_empty());
    }

    #[test]
    fn exact_match_only() {
        let kb1 = kb("a", &[("x", "Alice Smith")]);
        let kb2 = kb("b", &[("u", "Alice K. Smith")]);
        assert!(label_baseline(&kb1, &kb2).pairs.is_empty());
    }

    #[test]
    fn missing_label_relation_is_fine() {
        let mut b = KbBuilder::new("nolabel");
        b.add_fact("http://n/x", "http://n/r", "http://n/y");
        let kb1 = b.build();
        let kb2 = kb("b", &[("u", "Alice")]);
        let r = label_baseline(&kb1, &kb2);
        assert!(r.pairs.is_empty());
        assert_eq!(r.labeled_1, 0);
    }

    #[test]
    fn baseline_on_movies_dataset_has_paper_shape() {
        use paris_datagen::movies::{generate, MoviesConfig};
        let pair = generate(&MoviesConfig {
            num_movies: 300,
            ..Default::default()
        });
        let r = label_baseline(&pair.kb1, &pair.kb2);
        // Judge against gold.
        let gold: std::collections::HashSet<(String, String)> = pair
            .gold
            .instances
            .iter()
            .map(|(a, b)| (a.as_str().to_owned(), b.as_str().to_owned()))
            .collect();
        let mut correct = 0;
        for &(e1, e2) in &r.pairs {
            let key = (
                pair.kb1.iri(e1).unwrap().as_str().to_owned(),
                pair.kb2.iri(e2).unwrap().as_str().to_owned(),
            );
            if gold.contains(&key) {
                correct += 1;
            }
        }
        let precision = correct as f64 / r.pairs.len().max(1) as f64;
        let recall = correct as f64 / gold.len() as f64;
        assert!(precision > 0.9, "label matches are precise: {precision}");
        assert!(recall < 0.9, "label variants cap recall: {recall}");
        assert!(recall > 0.4, "but most labels still match: {recall}");
    }
}
