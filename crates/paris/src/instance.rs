//! Instance-equivalence pass (paper §4.1–4.2, Eq. 13–14).
//!
//! One pass computes, for every instance `x` of KB 1, the probabilities
//! `Pr(x ≡ x′)` against candidate instances `x′` of KB 2. The generalized
//! positive-evidence formula (Eq. 13) is
//!
//! ```text
//! Pr(x≡x′) = 1 − ∏_{r(x,y), r′(x′,y′)}
//!     (1 − Pr(r′⊆r) · fun⁻¹(r)  · Pr(y≡y′))
//!   × (1 − Pr(r⊆r′) · fun⁻¹(r′) · Pr(y≡y′))
//! ```
//!
//! and the optional negative-evidence factors (Eq. 14) multiply in, for
//! every statement `r(x,y)` and relation `r′`,
//!
//! ```text
//!   (1 − fun(r)  · Pr(r′⊆r) · ∏_{y′:r′(x′,y′)} (1 − Pr(y≡y′)))
//! × (1 − fun(r′) · Pr(r⊆r′) · ∏_{y′:r′(x′,y′)} (1 − Pr(y≡y′)))
//! ```
//!
//! The pass is *neighbour-driven* (§5.2): for each statement `r(x, y)` we
//! jump to the known equivalents `y′` of `y` and from there to the
//! statements `r′(x′, y′)` — O(n·m²·e) instead of O(n²·m). Candidates `x′`
//! therefore materialize only when they share at least one (probabilistic)
//! neighbour with `x`.

use paris_kb::{EntityId, EntityKind, FxHashMap, Kb};

use crate::config::ParisConfig;
use crate::equiv::CandidateView;
use crate::subrel::SubrelStore;

/// Computes one instance pass: a row of `(x′, Pr(x≡x′))` per KB-1 entity.
///
/// `cand` is the KB1 → KB2 candidate view of the *previous* iteration
/// (maximal assignment unless `propagate_all_equalities`), already merged
/// with the literal bridge. Scores below `config.theta` are dropped (§5.2).
pub fn instance_pass(
    kb1: &Kb,
    kb2: &Kb,
    cand: &CandidateView,
    subrel: &SubrelStore,
    config: &ParisConfig,
) -> Vec<Vec<(EntityId, f64)>> {
    let instances: Vec<EntityId> = kb1.instances().collect();
    let mut rows: Vec<Vec<(EntityId, f64)>> = vec![Vec::new(); kb1.num_entities()];
    for (x, row) in instance_pass_subset(kb1, kb2, &instances, cand, subrel, config) {
        rows[x.index()] = row;
    }
    rows
}

/// Like [`instance_pass`], but scores only the given KB-1 instances,
/// returning one `(instance, row)` pair each. This is the workhorse of
/// incremental re-alignment: after a small delta, only instances whose
/// support sets were touched need rescoring, and every other row carries
/// over from the previous fixed point unchanged.
pub fn instance_pass_subset(
    kb1: &Kb,
    kb2: &Kb,
    subset: &[EntityId],
    cand: &CandidateView,
    subrel: &SubrelStore,
    config: &ParisConfig,
) -> Vec<(EntityId, Vec<(EntityId, f64)>)> {
    // Small subsets (the common incremental case) stay sequential — OS
    // thread spawns would cost more than the scoring itself. ~64 rows per
    // thread keeps the full pass sharded exactly as before.
    let threads = config
        .effective_threads()
        .min(subset.len().div_ceil(64).max(1));
    if threads <= 1 {
        return subset
            .iter()
            .map(|&x| (x, score_row(kb1, kb2, x, cand, subrel, config)))
            .collect();
    }

    // Shard instances across worker threads; each entity's row is
    // independent, so results are identical to the sequential run.
    type ShardResult = Vec<(EntityId, Vec<(EntityId, f64)>)>;
    let chunk = subset.len().div_ceil(threads);
    let results: Vec<ShardResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = subset
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .iter()
                        .map(|&x| (x, score_row(kb1, kb2, x, cand, subrel, config)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// Scores all candidates of one KB-1 instance.
fn score_row(
    kb1: &Kb,
    kb2: &Kb,
    x: EntityId,
    cand: &CandidateView,
    subrel: &SubrelStore,
    config: &ParisConfig,
) -> Vec<(EntityId, f64)> {
    // Product accumulator per candidate x′ (the big ∏ of Eq. 13).
    let mut acc: FxHashMap<EntityId, f64> = FxHashMap::default();

    for &(r, y) in kb1.facts(x) {
        let fun_inv_r = kb1.functionality(r.inverse());
        for &(y2, p_yy) in cand.candidates(y) {
            // Statements r′(x′, y′) with y′ = y2: each adjacency entry
            // (q, z) of y2 means q(y2, z), i.e. q⁻¹(z, y2) — so r′ = q⁻¹,
            // x′ = z.
            for &(q, z) in kb2.facts(y2) {
                if kb2.kind(z) != EntityKind::Instance {
                    continue;
                }
                let r2 = q.inverse();
                let p_r2_in_r = subrel.prob_2in1(r2, r);
                let p_r_in_r2 = subrel.prob_1in2(r, r2);
                if p_r2_in_r == 0.0 && p_r_in_r2 == 0.0 {
                    continue;
                }
                let fun_inv_r2 = kb2.functionality(r2.inverse());
                let factor =
                    (1.0 - p_r2_in_r * fun_inv_r * p_yy) * (1.0 - p_r_in_r2 * fun_inv_r2 * p_yy);
                if factor < 1.0 {
                    *acc.entry(z).or_insert(1.0) *= factor;
                }
            }
        }
    }

    let cutoff = config.effective_cutoff(subrel.is_bootstrap());
    let mut row: Vec<(EntityId, f64)> = acc
        .into_iter()
        .map(|(x2, prod)| (x2, 1.0 - prod))
        .filter(|&(_, p)| p >= cutoff)
        .collect();

    // Negative evidence needs informed sub-relation links AND informed
    // neighbour probabilities. During the bootstrap iteration every
    // relation pair carries θ (penalizing every candidate for every
    // relation the other instance lacks), and one iteration later the
    // neighbour probabilities are still θ-scaled (a correctly matched
    // neighbour at Pr ≈ 2θ would read as ~80 % mismatched). Eq. 14 fires
    // only once both inputs carry computed scores.
    if config.negative_evidence && !subrel.is_bootstrap() && cand.is_informed() && !row.is_empty() {
        for (x2, p) in &mut row {
            *p *= negative_factor(kb1, kb2, x, *x2, cand, subrel);
        }
        row.retain(|&(_, p)| p >= cutoff);
    }

    row.sort_unstable_by_key(|&(e, _)| e);
    row
}

/// The Eq. 14 negative-evidence product for one candidate pair `(x, x′)`.
fn negative_factor(
    kb1: &Kb,
    kb2: &Kb,
    x: EntityId,
    x2: EntityId,
    cand: &CandidateView,
    subrel: &SubrelStore,
) -> f64 {
    // Group x′'s statements by directed relation: r′ → [y′].
    let mut facts2: FxHashMap<paris_kb::RelationId, Vec<EntityId>> = FxHashMap::default();
    for &(q, y2) in kb2.facts(x2) {
        facts2.entry(q).or_default().push(y2);
    }

    let mut neg = 1.0;
    for &(r, y) in kb1.facts(x) {
        let fun_r = kb1.functionality(r);
        // Pr(y ≡ ·) as a probe map for the inner products.
        let y_cands = cand.candidates(y);
        for (r2, p_r_in_r2, p_r2_in_r) in subrel.links_of_kb1(r, kb2.num_directed_relations()) {
            if p_r_in_r2 == 0.0 && p_r2_in_r == 0.0 {
                continue;
            }
            // ∏_{y′ : r′(x′, y′)} (1 − Pr(y ≡ y′)); empty product = 1
            // (the paper's convention when x′ lacks the relation, which
            // *keeps* the penalty factors below < 1).
            let mut inner = 1.0;
            if let Some(ys) = facts2.get(&r2) {
                for &y2 in ys {
                    let p = y_cands
                        .iter()
                        .find(|&&(e, _)| e == y2)
                        .map_or(0.0, |&(_, p)| p);
                    inner *= 1.0 - p;
                    if inner == 0.0 {
                        break;
                    }
                }
            }
            let fun_r2 = kb2.functionality(r2);
            neg *= 1.0 - fun_r * p_r2_in_r * inner;
            neg *= 1.0 - fun_r2 * p_r_in_r2 * inner;
            if neg == 0.0 {
                return 0.0;
            }
        }
    }
    neg
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::KbBuilder;
    use paris_literals::LiteralSimilarity;
    use paris_rdf::Literal;

    use crate::literal_bridge::LiteralBridge;

    /// Two people sharing an e-mail (inverse-functional) must unify with
    /// probability fun⁻¹ × θ-bootstrapped sub-relation weight.
    fn email_kbs() -> (Kb, Kb) {
        let mut b1 = KbBuilder::new("a");
        b1.add_literal_fact(
            "http://a/alice",
            "http://a/email",
            Literal::plain("al@x.org"),
        );
        b1.add_literal_fact(
            "http://a/bob",
            "http://a/email",
            Literal::plain("bob@x.org"),
        );
        let mut b2 = KbBuilder::new("b");
        b2.add_literal_fact(
            "http://b/asmith",
            "http://b/mail",
            Literal::plain("al@x.org"),
        );
        b2.add_literal_fact(
            "http://b/bjones",
            "http://b/mail",
            Literal::plain("bob@x.org"),
        );
        (b1.build(), b2.build())
    }

    fn literal_view(kb1: &Kb, kb2: &Kb) -> CandidateView {
        let (fwd, _) = LiteralBridge::build(kb1, kb2, &LiteralSimilarity::Identity).into_rows();
        CandidateView::new(fwd)
    }

    #[test]
    fn shared_inverse_functional_value_unifies() {
        let (kb1, kb2) = email_kbs();
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let config = ParisConfig::default().with_threads(1);
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &config);

        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        let row = &rows[alice.index()];
        assert_eq!(row.len(), 1, "only one candidate: {row:?}");
        assert_eq!(row[0].0, asmith);
        // Eq. 13 with one shared value: p = 1 − (1 − θ·fun⁻¹(email)·1)²
        // fun⁻¹ = 1 on both sides → 1 − 0.9² = 0.19.
        assert!((row[0].1 - 0.19).abs() < 1e-12, "{}", row[0].1);
        // Bob maps to bjones, not to asmith.
        let bob = kb1.entity_by_iri("http://a/bob").unwrap();
        let bjones = kb2.entity_by_iri("http://b/bjones").unwrap();
        assert_eq!(rows[bob.index()][0].0, bjones);
    }

    #[test]
    fn computed_subrel_sharpens_scores() {
        let (kb1, kb2) = email_kbs();
        let cand = literal_view(&kb1, &kb2);
        let email = kb1.relation_by_iri("http://a/email").unwrap();
        let mail = kb2.relation_by_iri("http://b/mail").unwrap();
        let mut one = vec![Vec::new(); kb1.num_directed_relations()];
        let mut two = vec![Vec::new(); kb2.num_directed_relations()];
        one[email.directed_index()].push((mail, 1.0));
        two[mail.directed_index()].push((email, 1.0));
        let subrel = SubrelStore::from_rows(one, two);
        let config = ParisConfig::default().with_threads(1);
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &config);
        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        // 1 − (1 − 1·1·1)(1 − 1·1·1) = 1
        assert_eq!(rows[alice.index()][0].1, 1.0);
    }

    #[test]
    fn low_inverse_functionality_gives_weak_evidence() {
        // Everyone lives in the same city: livesIn⁻¹ has functionality 1/n,
        // so sharing the city is weak evidence.
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        for i in 0..10 {
            b1.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/city",
                Literal::plain("Springfield"),
            );
            b2.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/town",
                Literal::plain("Springfield"),
            );
        }
        let kb1 = b1.build();
        let kb2 = b2.build();
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let config = ParisConfig::default().with_threads(1);
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &config);
        let p0 = kb1.entity_by_iri("http://a/p0").unwrap();
        // score = 1 − (1 − 0.1·0.1·1)² ≈ 0.0199 < θ → dropped entirely
        assert!(rows[p0.index()].is_empty(), "{:?}", rows[p0.index()]);
    }

    #[test]
    fn truncation_drops_weak_scores() {
        let (kb1, kb2) = email_kbs();
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        // Bootstrap cutoff is 2·θ·truncation = 0.192 > the 0.19 score.
        let config = ParisConfig::default().with_truncation(0.96).with_threads(1);
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &config);
        assert!(rows.iter().all(Vec::is_empty));
    }

    #[test]
    fn bootstrap_cutoff_scales_with_theta() {
        // A tiny θ scales first-iteration scores down; the cutoff must
        // follow or nothing would ever survive the first iteration.
        let (kb1, kb2) = email_kbs();
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.001,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let config = ParisConfig::default().with_theta(0.001).with_threads(1);
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &config);
        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        assert_eq!(rows[alice.index()].len(), 1, "tiny-θ evidence must survive");
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        for i in 0..40 {
            b1.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/ssn",
                Literal::plain(format!("S{i}")),
            );
            b1.add_fact(
                format!("http://a/p{i}"),
                "http://a/friend",
                format!("http://a/p{}", (i + 1) % 40),
            );
            b2.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/id",
                Literal::plain(format!("S{i}")),
            );
            b2.add_fact(
                format!("http://b/q{i}"),
                "http://b/knows",
                format!("http://b/q{}", (i + 1) % 40),
            );
        }
        let kb1 = b1.build();
        let kb2 = b2.build();
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let seq = instance_pass(
            &kb1,
            &kb2,
            &cand,
            &subrel,
            &ParisConfig::default().with_threads(1),
        );
        let par = instance_pass(
            &kb1,
            &kb2,
            &cand,
            &subrel,
            &ParisConfig::default().with_threads(4),
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn negative_evidence_penalizes_mismatched_functional_values() {
        // Same name (shared literal) but different birth dates (functional).
        let mut b1 = KbBuilder::new("a");
        b1.add_literal_fact("http://a/p", "http://a/name", Literal::plain("John Smith"));
        b1.add_literal_fact("http://a/p", "http://a/born", Literal::plain("1950"));
        let mut b2 = KbBuilder::new("b");
        b2.add_literal_fact("http://b/q", "http://b/name", Literal::plain("John Smith"));
        b2.add_literal_fact("http://b/q", "http://b/born", Literal::plain("1971"));
        let kb1 = b1.build();
        let kb2 = b2.build();
        let cand = literal_view(&kb1, &kb2);
        // Computed (non-bootstrap) sub-relation store linking the
        // corresponding relations — Eq. 14 only applies then.
        let name1 = kb1.relation_by_iri("http://a/name").unwrap();
        let born1 = kb1.relation_by_iri("http://a/born").unwrap();
        let name2 = kb2.relation_by_iri("http://b/name").unwrap();
        let born2 = kb2.relation_by_iri("http://b/born").unwrap();
        let mut one = vec![Vec::new(); kb1.num_directed_relations()];
        let mut two = vec![Vec::new(); kb2.num_directed_relations()];
        one[name1.directed_index()].push((name2, 1.0));
        one[born1.directed_index()].push((born2, 1.0));
        two[name2.directed_index()].push((name1, 1.0));
        two[born2.directed_index()].push((born1, 1.0));
        let subrel = SubrelStore::from_rows(one, two);

        let pos_cfg = ParisConfig::default().with_threads(1).with_truncation(0.01);
        let neg_cfg = pos_cfg.clone().with_negative_evidence(true);
        let pos = instance_pass(&kb1, &kb2, &cand, &subrel, &pos_cfg);
        let neg = instance_pass(&kb1, &kb2, &cand, &subrel, &neg_cfg);

        let p = kb1.entity_by_iri("http://a/p").unwrap();
        let p_pos = pos[p.index()].first().map_or(0.0, |&(_, p)| p);
        let p_neg = neg[p.index()].first().map_or(0.0, |&(_, p)| p);
        assert!(p_pos > 0.0);
        assert!(
            p_neg < p_pos,
            "negative evidence must reduce the score: {p_neg} vs {p_pos}"
        );
    }

    #[test]
    fn negative_evidence_is_inert_during_bootstrap() {
        let (kb1, kb2) = email_kbs();
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let pos = instance_pass(
            &kb1,
            &kb2,
            &cand,
            &subrel,
            &ParisConfig::default().with_threads(1),
        );
        let neg = instance_pass(
            &kb1,
            &kb2,
            &cand,
            &subrel,
            &ParisConfig::default()
                .with_negative_evidence(true)
                .with_threads(1),
        );
        assert_eq!(pos, neg, "Eq. 14 must not fire on θ-bootstrapped links");
    }

    #[test]
    fn empty_candidate_view_scores_nothing() {
        let (kb1, kb2) = email_kbs();
        let cand = CandidateView::empty(kb1.num_entities());
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &ParisConfig::default());
        assert!(rows.iter().all(Vec::is_empty));
    }

    #[test]
    fn independent_evidence_accumulates() {
        // Two shared inverse-functional values beat one (Eq. 13's product
        // of independent factors).
        let mut b1 = KbBuilder::new("a");
        b1.add_literal_fact("http://a/one", "http://a/ssn", Literal::plain("S1"));
        b1.add_literal_fact("http://a/two", "http://a/ssn", Literal::plain("S2"));
        b1.add_literal_fact("http://a/two", "http://a/tax", Literal::plain("T2"));
        let mut b2 = KbBuilder::new("b");
        b2.add_literal_fact("http://b/one", "http://b/id", Literal::plain("S1"));
        b2.add_literal_fact("http://b/two", "http://b/id", Literal::plain("S2"));
        b2.add_literal_fact("http://b/two", "http://b/fiscal", Literal::plain("T2"));
        let (kb1, kb2) = (b1.build(), b2.build());
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let rows = instance_pass(
            &kb1,
            &kb2,
            &cand,
            &subrel,
            &ParisConfig::default().with_threads(1),
        );
        let p1 = rows[kb1.entity_by_iri("http://a/one").unwrap().index()][0].1;
        let p2 = rows[kb1.entity_by_iri("http://a/two").unwrap().index()][0].1;
        assert!(p2 > p1, "two shared values ({p2}) must beat one ({p1})");
    }

    #[test]
    fn scores_are_probabilities() {
        let (kb1, kb2) = email_kbs();
        let cand = literal_view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &ParisConfig::default());
        for row in &rows {
            for &(_, p) in row {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
