//! Sub-class alignment (paper §4.3, Eq. 15–17).
//!
//! Classes are not matched for equivalence but for *inclusion*, because the
//! two taxonomies usually have different granularity. The score is the
//! expected fraction of `c`'s instances that are also instances of `c′`
//! (Eq. 17):
//!
//! ```text
//!             Σ_{x : type(x,c)} [ 1 − ∏_{y : type(y,c′)} (1 − P(x≡y)) ]
//! Pr(c⊆c′) = ─────────────────────────────────────────────────────────────
//!                              #x : type(x, c)
//! ```
//!
//! Per §4.3 and §5.1, class scores are computed **once, after** the
//! instance/relation fixed point has converged, from the final maximal
//! assignment — class membership is deliberately *not* fed back into
//! instance equivalence.

use paris_kb::{EntityId, FxHashMap, Kb};

use crate::config::ParisConfig;
use crate::equiv::EquivStore;

/// One directional class-inclusion score.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassScore {
    /// The included (sub) class, in the source KB.
    pub sub: EntityId,
    /// The including (super) class, in the target KB.
    pub sup: EntityId,
    /// `Pr(sub ⊆ sup)` per Eq. 17.
    pub prob: f64,
    /// Number of members of `sub` that were sampled for the estimate
    /// (denominator of Eq. 17, after the `max_pairs` cap).
    pub sampled_members: usize,
}

/// Class-inclusion scores in both directions.
#[derive(Clone, Debug, Default)]
pub struct ClassAlignment {
    /// `Pr(c ⊆ c′)` for `c` in KB 1, `c′` in KB 2, sorted by `(sub, sup)`.
    pub one_to_two: Vec<ClassScore>,
    /// `Pr(c′ ⊆ c)` for `c′` in KB 2, `c` in KB 1.
    pub two_to_one: Vec<ClassScore>,
}

impl ClassAlignment {
    /// KB1 → KB2 inclusions with probability at least `threshold`.
    pub fn above_1to2(&self, threshold: f64) -> impl Iterator<Item = &ClassScore> {
        self.one_to_two.iter().filter(move |s| s.prob >= threshold)
    }

    /// KB2 → KB1 inclusions with probability at least `threshold`.
    pub fn above_2to1(&self, threshold: f64) -> impl Iterator<Item = &ClassScore> {
        self.two_to_one.iter().filter(move |s| s.prob >= threshold)
    }

    /// Number of distinct source classes with at least one assignment
    /// scoring ≥ `threshold`, KB1 → KB2 (the paper's Figure 2 series).
    pub fn classes_with_assignment_1to2(&self, threshold: f64) -> usize {
        let mut classes: Vec<EntityId> = self.above_1to2(threshold).map(|s| s.sub).collect();
        classes.sort_unstable();
        classes.dedup();
        classes.len()
    }
}

/// Computes Eq. 17 in both directions from the final assignment.
pub fn subclass_pass(
    kb1: &Kb,
    kb2: &Kb,
    equiv: &EquivStore,
    config: &ParisConfig,
) -> ClassAlignment {
    let fwd = equiv.maximal_assignment();
    let rev = equiv.maximal_assignment_rev();
    ClassAlignment {
        one_to_two: direction(kb1, kb2, &fwd, config),
        two_to_one: direction(kb2, kb1, &rev, config),
    }
}

/// One direction of Eq. 17, using the maximal assignment `assign`
/// (indexed by source-KB entity id).
fn direction(
    src: &Kb,
    dst: &Kb,
    assign: &[Option<(EntityId, f64)>],
    config: &ParisConfig,
) -> Vec<ClassScore> {
    let mut out = Vec::new();
    let mut expected: FxHashMap<EntityId, f64> = FxHashMap::default();
    for &c in src.classes() {
        let members = src.members(c);
        if members.is_empty() {
            continue;
        }
        let sampled = members.len().min(config.max_pairs);
        expected.clear();
        for &x in &members[..sampled] {
            if let Some((x2, p)) = assign[x.index()] {
                // With a single candidate, 1 − ∏(1 − P) collapses to P for
                // every class of x2.
                for &c2 in dst.types_of(x2) {
                    *expected.entry(c2).or_insert(0.0) += p;
                }
            }
        }
        for (&c2, &num) in &expected {
            let prob = num / sampled as f64;
            if prob > 0.0 {
                out.push(ClassScore {
                    sub: c,
                    sup: c2,
                    prob: prob.min(1.0),
                    sampled_members: sampled,
                });
            }
        }
    }
    out.sort_unstable_by_key(|s| (s.sub, s.sup));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::KbBuilder;

    /// KB1: 4 singers typed Singer ⊑ Person. KB2: same people typed
    /// Musician; two extras typed Musician only.
    fn taxonomy_kbs() -> (Kb, Kb) {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        b1.add_subclass("http://a/Singer", "http://a/Person");
        for i in 0..4 {
            b1.add_type(format!("http://a/s{i}"), "http://a/Singer");
            b2.add_type(format!("http://b/s{i}"), "http://b/Musician");
        }
        for i in 4..6 {
            b2.add_type(format!("http://b/s{i}"), "http://b/Musician");
        }
        (b1.build(), b2.build())
    }

    fn perfect_equiv(kb1: &Kb, kb2: &Kb, n: usize) -> EquivStore {
        let mut rows = vec![Vec::new(); kb1.num_entities()];
        for i in 0..n {
            let e1 = kb1.entity_by_iri(&format!("http://a/s{i}")).unwrap();
            let e2 = kb2.entity_by_iri(&format!("http://b/s{i}")).unwrap();
            rows[e1.index()].push((e2, 1.0));
        }
        EquivStore::from_rows(rows, kb2.num_entities())
    }

    #[test]
    fn subset_direction_scores_one() {
        let (kb1, kb2) = taxonomy_kbs();
        let equiv = perfect_equiv(&kb1, &kb2, 4);
        let ca = subclass_pass(&kb1, &kb2, &equiv, &ParisConfig::default());

        let singer = kb1.entity_by_iri("http://a/Singer").unwrap();
        let musician = kb2.entity_by_iri("http://b/Musician").unwrap();
        // All 4 singers are musicians: Pr(Singer ⊆ Musician) = 1.
        let s = ca
            .one_to_two
            .iter()
            .find(|s| s.sub == singer && s.sup == musician)
            .unwrap();
        assert_eq!(s.prob, 1.0);
        assert_eq!(s.sampled_members, 4);
        // Person (via closure) also has the 4 singers as members → also 1.
        let person = kb1.entity_by_iri("http://a/Person").unwrap();
        let p = ca
            .one_to_two
            .iter()
            .find(|s| s.sub == person && s.sup == musician)
            .unwrap();
        assert_eq!(p.prob, 1.0);
    }

    #[test]
    fn superset_direction_scores_fraction() {
        let (kb1, kb2) = taxonomy_kbs();
        let equiv = perfect_equiv(&kb1, &kb2, 4);
        let ca = subclass_pass(&kb1, &kb2, &equiv, &ParisConfig::default());
        let singer = kb1.entity_by_iri("http://a/Singer").unwrap();
        let musician = kb2.entity_by_iri("http://b/Musician").unwrap();
        // Only 4 of 6 musicians are singers: Pr(Musician ⊆ Singer) = 2/3.
        let s = ca
            .two_to_one
            .iter()
            .find(|s| s.sub == musician && s.sup == singer)
            .unwrap();
        assert!((s.prob - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn partial_probabilities_accumulate() {
        let (kb1, kb2) = taxonomy_kbs();
        let mut rows = vec![Vec::new(); kb1.num_entities()];
        for i in 0..4 {
            let e1 = kb1.entity_by_iri(&format!("http://a/s{i}")).unwrap();
            let e2 = kb2.entity_by_iri(&format!("http://b/s{i}")).unwrap();
            rows[e1.index()].push((e2, 0.5));
        }
        let equiv = EquivStore::from_rows(rows, kb2.num_entities());
        let ca = subclass_pass(&kb1, &kb2, &equiv, &ParisConfig::default());
        let singer = kb1.entity_by_iri("http://a/Singer").unwrap();
        let musician = kb2.entity_by_iri("http://b/Musician").unwrap();
        let s = ca
            .one_to_two
            .iter()
            .find(|s| s.sub == singer && s.sup == musician)
            .unwrap();
        assert!((s.prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unmatched_members_drag_score_down() {
        let (kb1, kb2) = taxonomy_kbs();
        let equiv = perfect_equiv(&kb1, &kb2, 2); // only s0, s1 matched
        let ca = subclass_pass(&kb1, &kb2, &equiv, &ParisConfig::default());
        let singer = kb1.entity_by_iri("http://a/Singer").unwrap();
        let musician = kb2.entity_by_iri("http://b/Musician").unwrap();
        let s = ca
            .one_to_two
            .iter()
            .find(|s| s.sub == singer && s.sup == musician)
            .unwrap();
        assert!((s.prob - 0.5).abs() < 1e-12, "2 of 4 members matched");
    }

    #[test]
    fn member_cap_is_respected() {
        let (kb1, kb2) = taxonomy_kbs();
        let equiv = perfect_equiv(&kb1, &kb2, 4);
        let config = ParisConfig {
            max_pairs: 2,
            ..ParisConfig::default()
        };
        let ca = subclass_pass(&kb1, &kb2, &equiv, &config);
        let singer = kb1.entity_by_iri("http://a/Singer").unwrap();
        let s = ca.one_to_two.iter().find(|s| s.sub == singer).unwrap();
        assert_eq!(s.sampled_members, 2);
    }

    #[test]
    fn empty_equiv_empty_alignment() {
        let (kb1, kb2) = taxonomy_kbs();
        let equiv = EquivStore::new(kb1.num_entities(), kb2.num_entities());
        let ca = subclass_pass(&kb1, &kb2, &equiv, &ParisConfig::default());
        assert!(ca.one_to_two.is_empty());
        assert!(ca.two_to_one.is_empty());
    }

    #[test]
    fn threshold_filters_and_counts() {
        let (kb1, kb2) = taxonomy_kbs();
        let equiv = perfect_equiv(&kb1, &kb2, 2);
        let ca = subclass_pass(&kb1, &kb2, &equiv, &ParisConfig::default());
        // Singer⊆Musician and Person⊆Musician at 0.5 each.
        assert_eq!(ca.above_1to2(0.4).count(), 2);
        assert_eq!(ca.above_1to2(0.6).count(), 0);
        assert_eq!(ca.classes_with_assignment_1to2(0.4), 2);
        assert_eq!(ca.classes_with_assignment_1to2(0.6), 0);
    }
}
