//! Borrow-free alignment results and aligned-pair snapshots.
//!
//! [`AlignmentResult`] borrows the two KBs it was
//! computed from, which is ideal inside one process but useless for
//! persistence: a serving daemon wants to load "two KBs plus their
//! alignment" as one self-contained value. [`OwnedAlignment`] detaches
//! the result — the equivalence, sub-relation, and class stores hold only
//! dense ids, so cloning them severs every borrow — and
//! [`AlignedPairSnapshot`] bundles it with the owned KBs and round-trips
//! the whole thing through the binary snapshot format of
//! [`paris_kb::snapshot`] (kind = `AlignedPair`).

use std::path::Path;

use paris_kb::snapshot::{
    decode_kb, encode_kb, read_file, write_file, PayloadReader, PayloadWriter, SnapshotError,
    SnapshotKind,
};
use paris_kb::{EntityId, Kb, RelationId};
use paris_rdf::Iri;

use crate::equiv::EquivStore;
use crate::iteration::{AlignmentResult, IterationStats};
use crate::subclass::{ClassAlignment, ClassScore};
use crate::subrel::SubrelStore;

/// A PARIS result detached from its KB borrows.
///
/// All stores are id-based, so the value is self-contained; pair it with
/// the KBs it was computed from (checked loosely via entity counts when
/// decoding) to render IRIs and relation names.
#[derive(Clone, Debug)]
pub struct OwnedAlignment {
    /// Final instance-equivalence probabilities.
    pub instances: EquivStore,
    /// Final sub-relation scores (both directions).
    pub subrelations: SubrelStore,
    /// Class-inclusion scores (both directions).
    pub classes: ClassAlignment,
    /// Number of clamped literal-equivalence pairs.
    pub literal_pairs: usize,
    /// Per-iteration measurements of the producing run.
    pub iterations: Vec<IterationStats>,
    /// Whether the producing run converged (vs. hitting the cap).
    pub converged: bool,
    /// Number of directed relations in KB 1 (sizes the sub-relation rows).
    pub kb1_directed_relations: usize,
    /// Number of directed relations in KB 2.
    pub kb2_directed_relations: usize,
}

impl OwnedAlignment {
    /// Detaches a borrowed result into an owned value.
    pub fn from_result(result: &AlignmentResult<'_>) -> Self {
        OwnedAlignment {
            instances: result.instances.clone(),
            subrelations: result.subrelations.clone(),
            classes: result.classes.clone(),
            literal_pairs: result.literal_pairs,
            iterations: result.iterations.clone(),
            converged: result.converged(),
            kb1_directed_relations: result.kb1.num_directed_relations(),
            kb2_directed_relations: result.kb2.num_directed_relations(),
        }
    }

    /// The final maximal assignment restricted to instances:
    /// `(x, x′, Pr)` triples, one per assigned KB-1 instance.
    pub fn instance_pairs(&self, kb1: &Kb) -> Vec<(EntityId, EntityId, f64)> {
        let assign = self.instances.maximal_assignment();
        kb1.instances()
            .filter_map(|x| assign[x.index()].map(|(x2, p)| (x, x2, p)))
            .collect()
    }

    /// The best KB-2 match of a KB-1 entity, with its probability.
    pub fn best_match(&self, x: EntityId) -> Option<(EntityId, f64)> {
        self.instances
            .candidates(x)
            .iter()
            .copied()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })
    }

    /// The best KB-1 match of a KB-2 entity, with its probability.
    pub fn best_match_rev(&self, x2: EntityId) -> Option<(EntityId, f64)> {
        self.instances
            .candidates_rev(x2)
            .iter()
            .copied()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })
    }

    /// Looks up the maximal assignment of one KB-1 instance by IRI.
    pub fn instance_alignment_by_iri(&self, kb1: &Kb, kb2: &Kb, iri: &str) -> Option<Iri> {
        let x = kb1.entity_by_iri(iri)?;
        let (x2, _) = self.best_match(x)?;
        kb2.iri(x2).cloned()
    }

    /// Sub-relation alignments KB1 → KB2 above `threshold`, rendered with
    /// relation names, best first.
    pub fn relation_alignments_1to2(
        &self,
        kb1: &Kb,
        kb2: &Kb,
        threshold: f64,
    ) -> Vec<(String, String, f64)> {
        let mut out: Vec<(String, String, f64)> = self
            .subrelations
            .alignments_1to2()
            .filter(|&(_, _, p)| p >= threshold)
            .map(|(r1, r2, p)| (kb1.relation_display(r1), kb2.relation_display(r2), p))
            .collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Total number of stored (non-zero) instance equivalences.
    pub fn num_instance_pairs(&self) -> usize {
        self.instances.num_pairs()
    }

    // ------------------------------------------------------------------
    // Binary encoding
    // ------------------------------------------------------------------

    /// Appends the alignment body to a payload.
    pub fn encode(&self, w: &mut PayloadWriter) {
        // Equivalences: forward rows (the backward index is derived).
        w.put_u64(self.instances.len_kb1() as u64);
        w.put_u64(self.instances.len_kb2() as u64);
        for i in 0..self.instances.len_kb1() {
            let row = self.instances.candidates(EntityId::from_index(i));
            w.put_u64(row.len() as u64);
            for &(e, p) in row {
                w.put_u32(e.0);
                w.put_f64(p);
            }
        }

        // Sub-relation scores, both directions, keyed by directed index.
        for (count, entries) in [
            (
                self.kb1_directed_relations,
                self.subrelations.alignments_1to2().collect::<Vec<_>>(),
            ),
            (
                self.kb2_directed_relations,
                self.subrelations.alignments_2to1().collect::<Vec<_>>(),
            ),
        ] {
            w.put_u64(count as u64);
            w.put_u64(entries.len() as u64);
            for (r, r2, p) in entries {
                w.put_u32(r.0);
                w.put_u32(r2.0);
                w.put_f64(p);
            }
        }

        // Class scores, both directions.
        for scores in [&self.classes.one_to_two, &self.classes.two_to_one] {
            w.put_u64(scores.len() as u64);
            for s in scores {
                w.put_u32(s.sub.0);
                w.put_u32(s.sup.0);
                w.put_f64(s.prob);
                w.put_u64(s.sampled_members as u64);
            }
        }

        // Run metadata.
        w.put_u64(self.literal_pairs as u64);
        w.put_u8(u8::from(self.converged));
        w.put_u64(self.iterations.len() as u64);
        for s in &self.iterations {
            w.put_u64(s.iteration as u64);
            w.put_u64(s.changed as u64);
            w.put_f64(s.changed_fraction);
            w.put_u64(s.instance_equivalences as u64);
            w.put_u64(s.assigned_instances as u64);
            w.put_u64(s.subrelation_entries as u64);
            w.put_f64(s.instance_seconds);
            w.put_f64(s.subrelation_seconds);
        }
    }

    /// Decodes an alignment body written by [`encode`](Self::encode),
    /// validating every id and table size against the KBs the alignment
    /// belongs to — a corrupt (but checksum-valid) file yields a
    /// [`SnapshotError`], never an oversized allocation or a later panic.
    pub fn decode(r: &mut PayloadReader<'_>, kb1: &Kb, kb2: &Kb) -> Result<Self, SnapshotError> {
        let n1 = r.get_len()?;
        let n2 = r.get_len()?;
        if n1 != kb1.num_entities() || n2 != kb2.num_entities() {
            return Err(SnapshotError::corrupt(format!(
                "alignment covers {n1}×{n2} entities but KBs have {}×{}",
                kb1.num_entities(),
                kb2.num_entities(),
            )));
        }
        let mut rows: Vec<Vec<(EntityId, f64)>> = Vec::with_capacity(n1);
        for _ in 0..n1 {
            let len = r.get_len()?;
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                let e = r.get_u32()?;
                if e as usize >= n2 {
                    return Err(SnapshotError::corrupt(format!(
                        "candidate id {e} out of range"
                    )));
                }
                row.push((EntityId(e), r.get_f64()?));
            }
            rows.push(row);
        }
        let instances = EquivStore::from_rows(rows, n2);

        // Sub-relation tables: the stored directed counts must match the
        // KBs exactly, and every target relation id must be in range on
        // the opposite side.
        let expected = [kb1.num_directed_relations(), kb2.num_directed_relations()];
        let mut directions: Vec<Vec<Vec<(RelationId, f64)>>> = Vec::with_capacity(2);
        for (side, &count_expected) in expected.iter().enumerate() {
            let count = r.get_u64()? as usize;
            if count != count_expected {
                return Err(SnapshotError::corrupt(format!(
                    "sub-relation table sized for {count} directed relations, KB has {count_expected}"
                )));
            }
            let dst_bound = expected[1 - side];
            let mut dir: Vec<Vec<(RelationId, f64)>> = vec![Vec::new(); count];
            let entries = r.get_len()?;
            for _ in 0..entries {
                let src = r.get_u32()? as usize;
                let dst = r.get_u32()?;
                let p = r.get_f64()?;
                if dst as usize >= dst_bound {
                    return Err(SnapshotError::corrupt(format!(
                        "target relation id {dst} out of range ({dst_bound})"
                    )));
                }
                let row = dir.get_mut(src).ok_or_else(|| {
                    SnapshotError::corrupt(format!("relation id {src} out of range ({count})"))
                })?;
                row.push((RelationId(dst), p));
            }
            directions.push(dir);
        }
        let two_to_one = directions.pop().expect("two directions pushed");
        let one_to_two = directions.pop().expect("two directions pushed");
        let subrelations = SubrelStore::from_rows(one_to_two, two_to_one);

        // Class tables: sub lives in the direction's source KB, sup in
        // its target KB.
        let mut class_dirs: Vec<Vec<ClassScore>> = Vec::with_capacity(2);
        for bounds in [(n1, n2), (n2, n1)] {
            let (sub_bound, sup_bound) = bounds;
            let count = r.get_len()?;
            let mut scores = Vec::with_capacity(count);
            for _ in 0..count {
                let sub = r.get_u32()?;
                let sup = r.get_u32()?;
                if sub as usize >= sub_bound || sup as usize >= sup_bound {
                    return Err(SnapshotError::corrupt(format!(
                        "class score ids ({sub}, {sup}) out of range ({sub_bound}, {sup_bound})"
                    )));
                }
                scores.push(ClassScore {
                    sub: EntityId(sub),
                    sup: EntityId(sup),
                    prob: r.get_f64()?,
                    sampled_members: r.get_u64()? as usize,
                });
            }
            class_dirs.push(scores);
        }
        let two_to_one = class_dirs.pop().expect("two class directions pushed");
        let one_to_two = class_dirs.pop().expect("two class directions pushed");
        let classes = ClassAlignment {
            one_to_two,
            two_to_one,
        };

        let literal_pairs = r.get_u64()? as usize;
        let converged = r.get_u8()? != 0;
        let num_iterations = r.get_len()?;
        let mut iterations = Vec::with_capacity(num_iterations);
        for _ in 0..num_iterations {
            iterations.push(IterationStats {
                iteration: r.get_u64()? as usize,
                changed: r.get_u64()? as usize,
                changed_fraction: r.get_f64()?,
                instance_equivalences: r.get_u64()? as usize,
                assigned_instances: r.get_u64()? as usize,
                subrelation_entries: r.get_u64()? as usize,
                instance_seconds: r.get_f64()?,
                subrelation_seconds: r.get_f64()?,
            });
        }

        Ok(OwnedAlignment {
            instances,
            subrelations,
            classes,
            literal_pairs,
            iterations,
            converged,
            kb1_directed_relations: expected[0],
            kb2_directed_relations: expected[1],
        })
    }
}

impl AlignmentResult<'_> {
    /// Detaches this result from its KB borrows.
    pub fn detach(&self) -> OwnedAlignment {
        OwnedAlignment::from_result(self)
    }
}

/// Two knowledge bases plus their alignment, as one self-contained,
/// persistable value — what `paris serve` answers queries from.
#[derive(Debug)]
pub struct AlignedPairSnapshot {
    /// The first (source) ontology.
    pub kb1: Kb,
    /// The second (target) ontology.
    pub kb2: Kb,
    /// The computed alignment between them.
    pub alignment: OwnedAlignment,
}

impl AlignedPairSnapshot {
    /// Bundles owned KBs with their alignment.
    pub fn new(kb1: Kb, kb2: Kb, alignment: OwnedAlignment) -> Self {
        AlignedPairSnapshot {
            kb1,
            kb2,
            alignment,
        }
    }

    /// Serializes into framed snapshot bytes (kind `AlignedPair`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = PayloadWriter::new();
        encode_kb(&self.kb1, &mut payload);
        encode_kb(&self.kb2, &mut payload);
        self.alignment.encode(&mut payload);
        let mut out = Vec::new();
        paris_kb::snapshot::write_payload(&mut out, SnapshotKind::AlignedPair, payload.bytes())
            .expect("writing to a Vec cannot fail");
        out
    }

    /// Writes an aligned-pair snapshot file (atomically).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut payload = PayloadWriter::new();
        encode_kb(&self.kb1, &mut payload);
        encode_kb(&self.kb2, &mut payload);
        self.alignment.encode(&mut payload);
        write_file(path, SnapshotKind::AlignedPair, payload.bytes())
    }

    /// Decodes and validates an in-memory v1 aligned-pair image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let (kind, payload) = paris_kb::snapshot::read_payload(&mut &bytes[..])?;
        Self::decode_pair(kind, &payload)
    }

    /// Loads and validates an aligned-pair snapshot file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let (kind, payload) = read_file(path)?;
        Self::decode_pair(kind, &payload)
    }

    fn decode_pair(kind: SnapshotKind, payload: &[u8]) -> Result<Self, SnapshotError> {
        if kind != SnapshotKind::AlignedPair {
            return Err(SnapshotError::corrupt(format!(
                "expected an aligned-pair snapshot, found a {}",
                kind.name()
            )));
        }
        let mut r = PayloadReader::new(payload);
        let kb1 = decode_kb(&mut r)?;
        let kb2 = decode_kb(&mut r)?;
        // decode() cross-validates every table size and id against the KBs.
        let alignment = OwnedAlignment::decode(&mut r, &kb1, &kb2)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::corrupt(
                "trailing bytes after alignment body",
            ));
        }
        Ok(AlignedPairSnapshot {
            kb1,
            kb2,
            alignment,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParisConfig;
    use crate::iteration::Aligner;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn aligned_pair() -> (Kb, Kb) {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..6 {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            a.add_fact(
                format!("http://a/p{i}"),
                "http://a/livesIn",
                format!("http://a/c{}", i % 2),
            );
            a.add_type(format!("http://a/p{i}"), "http://a/Person");
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_fact(
                format!("http://b/q{i}"),
                "http://b/city",
                format!("http://b/d{}", i % 2),
            );
            b.add_type(format!("http://b/q{i}"), "http://b/Human");
        }
        (a.build(), b.build())
    }

    #[test]
    fn detach_preserves_queries() {
        let (kb1, kb2) = aligned_pair();
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
        let owned = result.detach();
        for i in 0..6 {
            let iri = format!("http://a/p{i}");
            assert_eq!(
                owned.instance_alignment_by_iri(&kb1, &kb2, &iri),
                result.instance_alignment_by_iri(&iri),
                "{iri}"
            );
        }
        assert_eq!(owned.instance_pairs(&kb1), result.instance_pairs());
        assert_eq!(owned.literal_pairs, result.literal_pairs);
        assert_eq!(owned.converged, result.converged());
    }

    #[test]
    fn pair_snapshot_round_trips() {
        let (kb1, kb2) = aligned_pair();
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
        let owned = result.detach();
        let expected_pairs = result.instance_pairs();
        let expected_rel = result.relation_alignments_1to2(0.1);
        drop(result);

        let snap = AlignedPairSnapshot::new(kb1, kb2, owned);
        let path = std::env::temp_dir().join("paris_owned_unit_test.snap");
        snap.save(&path).unwrap();
        let loaded = AlignedPairSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.kb1.name(), "left");
        assert_eq!(loaded.kb2.name(), "right");
        assert_eq!(loaded.alignment.instance_pairs(&loaded.kb1), expected_pairs);
        assert_eq!(
            loaded
                .alignment
                .relation_alignments_1to2(&loaded.kb1, &loaded.kb2, 0.1),
            expected_rel
        );
        assert_eq!(
            loaded.alignment.classes.one_to_two,
            snap.alignment.classes.one_to_two
        );
        assert_eq!(
            loaded.alignment.iterations.len(),
            snap.alignment.iterations.len()
        );
    }

    #[test]
    fn mismatched_kbs_are_rejected_at_decode() {
        let (kb1, kb2) = aligned_pair();
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
        let owned = result.detach();
        drop(result);

        let mut payload = paris_kb::snapshot::PayloadWriter::new();
        owned.encode(&mut payload);

        // Decoding against KBs the alignment was not computed for must
        // fail cleanly rather than produce out-of-range ids.
        let other = {
            let mut b = KbBuilder::new("other");
            b.add_fact("http://o/x", "http://o/r", "http://o/y");
            b.build()
        };
        let mut r = PayloadReader::new(payload.bytes());
        let err = OwnedAlignment::decode(&mut r, &kb1, &other).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");

        // And the right pair still decodes.
        let mut r = PayloadReader::new(payload.bytes());
        let again = OwnedAlignment::decode(&mut r, &kb1, &kb2).unwrap();
        assert_eq!(again.num_instance_pairs(), owned.num_instance_pairs());
    }

    #[test]
    fn kb_snapshot_is_not_a_pair() {
        let (kb1, _) = aligned_pair();
        let path = std::env::temp_dir().join("paris_owned_kind_test.snap");
        paris_kb::snapshot::save_kb(&kb1, &path).unwrap();
        let err = AlignedPairSnapshot::load(&path).unwrap_err();
        assert!(
            err.to_string()
                .contains("expected an aligned-pair snapshot"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
