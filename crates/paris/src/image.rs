//! One serving image of an aligned pair, whatever its on-disk format.
//!
//! [`PairImage`] unifies the two load paths behind one query surface:
//! a v1 snapshot decodes into an owned [`AlignedPairSnapshot`]; a v2
//! snapshot opens as a zero-copy [`MappedPairSnapshot`] whose views read
//! the arena in place. The daemon (and anything else answering `sameas`
//! / `neighbors` / stats queries) programs against this enum and gets
//! bit-identical answers from either representation — the v2 encoder
//! stores rows in exactly the order the v1 decoder would rebuild them,
//! and the view accessors replicate the owned accessors' folds.

use std::path::Path;

use paris_kb::snapshot::{peek_version, SnapshotError, FORMAT_VERSION};
use paris_kb::snapshot_v2::FORMAT_VERSION_V2;
use paris_kb::{EntityId, EntityKind, KbStats, RelationId};
use paris_rdf::Literal;

use crate::owned::AlignedPairSnapshot;
use crate::view::MappedPairSnapshot;

/// Which KB of a pair a query addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairSide {
    /// The first (left) ontology.
    Kb1,
    /// The second (right) ontology.
    Kb2,
}

/// One rendered statement around an entity, as `/neighbors` reports it.
#[derive(Clone, Debug, PartialEq)]
pub struct FactRow {
    /// IRI of the base relation.
    pub relation: String,
    /// True when the statement is held in the inverse direction.
    pub inverse: bool,
    /// The neighbour term, rendered (IRI string or literal value).
    pub value: String,
    /// Global functionality of the directed relation.
    pub functionality: f64,
}

/// A loaded aligned-pair serving image: decoded (v1) or mapped (v2).
#[derive(Debug)]
pub enum PairImage {
    /// A fully decoded v1 snapshot (owned, heap-resident; boxed — the
    /// owned snapshot is an order of magnitude bigger than the mapped
    /// layouts, and images live behind an `Arc` anyway).
    Decoded(Box<AlignedPairSnapshot>),
    /// A zero-copy v2 snapshot (arena-backed, reads in place; boxed so
    /// the enum stays pointer-sized either way).
    Mapped(Box<MappedPairSnapshot>),
}

impl PairImage {
    /// Loads a snapshot file, dispatching on its format version: v1 is
    /// decoded, v2 is opened in place.
    pub fn load(path: impl AsRef<Path>) -> Result<PairImage, SnapshotError> {
        let path = path.as_ref();
        match peek_version(path)? {
            FORMAT_VERSION => Ok(PairImage::Decoded(Box::new(AlignedPairSnapshot::load(
                path,
            )?))),
            FORMAT_VERSION_V2 => Ok(PairImage::Mapped(Box::new(MappedPairSnapshot::open(path)?))),
            other => Err(SnapshotError::UnsupportedVersion(other)),
        }
    }

    /// The snapshot format version this image was loaded from.
    pub fn format_version(&self) -> u32 {
        match self {
            PairImage::Decoded(_) => FORMAT_VERSION,
            PairImage::Mapped(_) => FORMAT_VERSION_V2,
        }
    }

    /// True when the image reads from an OS memory mapping (evicting it
    /// saves nothing — the page cache owns the bytes).
    pub fn is_mapped(&self) -> bool {
        match self {
            PairImage::Decoded(_) => false,
            PairImage::Mapped(m) => m.is_mapped(),
        }
    }

    /// Converts into an owned snapshot, hydrating a mapped image.
    pub fn into_decoded(self) -> AlignedPairSnapshot {
        match self {
            PairImage::Decoded(s) => *s,
            PairImage::Mapped(m) => m.hydrate(),
        }
    }

    /// The display name of one side's KB.
    pub fn kb_name(&self, side: PairSide) -> &str {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.name(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.name(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().name(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().name(),
        }
    }

    /// Table-2-style statistics of one side's KB.
    pub fn kb_stats(&self, side: PairSide) -> KbStats {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => KbStats::of(&s.kb1),
            (PairImage::Decoded(s), PairSide::Kb2) => KbStats::of(&s.kb2),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().stats(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().stats(),
        }
    }

    /// Number of entities (instances, classes, and literals) on one
    /// side — the id space quality scans iterate.
    pub fn num_entities(&self, side: PairSide) -> usize {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.num_entities(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.num_entities(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().num_entities(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().num_entities(),
        }
    }

    /// Number of directed relations on one side.
    pub fn num_directed_relations(&self, side: PairSide) -> usize {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.num_directed_relations(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.num_directed_relations(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().num_directed_relations(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().num_directed_relations(),
        }
    }

    /// Looks up an entity by IRI on one side.
    pub fn entity_by_iri(&self, side: PairSide, iri: &str) -> Option<EntityId> {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.entity_by_iri(iri),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.entity_by_iri(iri),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().entity_by_iri(iri),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().entity_by_iri(iri),
        }
    }

    /// The IRI string of an entity on one side (`None` for literals).
    pub fn entity_iri(&self, side: PairSide, e: EntityId) -> Option<String> {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.iri(e).map(|i| i.as_str().to_owned()),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.iri(e).map(|i| i.as_str().to_owned()),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().iri_str(e).map(str::to_owned),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().iri_str(e).map(str::to_owned),
        }
    }

    /// The best match of an entity on `side`, in the *other* KB.
    pub fn best_match_from(&self, side: PairSide, e: EntityId) -> Option<(EntityId, f64)> {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.alignment.best_match(e),
            (PairImage::Decoded(s), PairSide::Kb2) => s.alignment.best_match_rev(e),
            (PairImage::Mapped(m), PairSide::Kb1) => m.alignment().best_match(e),
            (PairImage::Mapped(m), PairSide::Kb2) => m.alignment().best_match_rev(e),
        }
    }

    /// Number of statements around an entity (both directions).
    pub fn facts_len(&self, side: PairSide, e: EntityId) -> usize {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.facts(e).len(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.facts(e).len(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().facts_len(e),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().facts_len(e),
        }
    }

    /// One page of statements around an entity, rendered: `limit` rows
    /// starting at `offset` (in stored order, both directions).
    pub fn facts_page(
        &self,
        side: PairSide,
        e: EntityId,
        offset: usize,
        limit: usize,
    ) -> Vec<FactRow> {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => decoded_facts(&s.kb1, e, offset, limit),
            (PairImage::Decoded(s), PairSide::Kb2) => decoded_facts(&s.kb2, e, offset, limit),
            (PairImage::Mapped(m), PairSide::Kb1) => mapped_facts(m.kb1(), e, offset, limit),
            (PairImage::Mapped(m), PairSide::Kb2) => mapped_facts(m.kb2(), e, offset, limit),
        }
    }

    /// Number of assigned KB-1 instances.
    pub fn aligned_instances(&self) -> usize {
        match self {
            PairImage::Decoded(s) => s.alignment.instance_pairs(&s.kb1).len(),
            PairImage::Mapped(m) => m.alignment().aligned_instances(m.kb1()),
        }
    }

    /// Total number of stored (non-zero) instance equivalences.
    pub fn num_instance_pairs(&self) -> usize {
        match self {
            PairImage::Decoded(s) => s.alignment.num_instance_pairs(),
            PairImage::Mapped(m) => m.alignment().num_instance_pairs(),
        }
    }

    /// Number of clamped literal-equivalence pairs.
    pub fn literal_pairs(&self) -> usize {
        match self {
            PairImage::Decoded(s) => s.alignment.literal_pairs,
            PairImage::Mapped(m) => m.alignment().literal_pairs(),
        }
    }

    /// Iteration count of the producing run.
    pub fn iterations_len(&self) -> usize {
        match self {
            PairImage::Decoded(s) => s.alignment.iterations.len(),
            PairImage::Mapped(m) => m.alignment().iterations().len(),
        }
    }

    /// Whether the producing run converged.
    pub fn converged(&self) -> bool {
        match self {
            PairImage::Decoded(s) => s.alignment.converged,
            PairImage::Mapped(m) => m.alignment().converged(),
        }
    }

    // ------------------------------------------------------------------
    // Raw id-level accessors (the stored-evidence explain path). Both
    // representations answer in identical order with identical bits:
    // the v2 encoder stores rows exactly as the v1 decoder rebuilds
    // them, which is what makes a rendered explanation byte-identical
    // across formats.
    // ------------------------------------------------------------------

    /// The kind of an entity on one side.
    pub fn entity_kind(&self, side: PairSide, e: EntityId) -> EntityKind {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.kind(e),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.kind(e),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().kind(e),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().kind(e),
        }
    }

    /// All statements around an entity (both directions), as raw ids in
    /// stored order.
    pub fn facts_ids(&self, side: PairSide, e: EntityId) -> Vec<(RelationId, EntityId)> {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.facts(e).to_vec(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.facts(e).to_vec(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().facts(e).collect(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().facts(e).collect(),
        }
    }

    /// Global functionality of a directed relation on one side.
    pub fn functionality(&self, side: PairSide, r: RelationId) -> f64 {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.functionality(r),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.functionality(r),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().functionality(r),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().functionality(r),
        }
    }

    /// The IRI of a directed relation on one side (base IRI; pair with
    /// [`RelationId::is_inverse`] for direction).
    pub fn relation_iri_of(&self, side: PairSide, r: RelationId) -> String {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.relation_iri(r).as_str().to_owned(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.relation_iri(r).as_str().to_owned(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().relation_iri_str(r).to_owned(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().relation_iri_str(r).to_owned(),
        }
    }

    /// The rendered term of an entity (IRI string or literal value).
    pub fn term_string(&self, side: PairSide, e: EntityId) -> String {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.term(e).to_string(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.term(e).to_string(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().term(e).to_string(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().term(e).to_string(),
        }
    }

    /// The literal value of an entity, if it is one.
    pub fn literal_of(&self, side: PairSide, e: EntityId) -> Option<Literal> {
        match (self, side) {
            (PairImage::Decoded(s), PairSide::Kb1) => s.kb1.literal(e).cloned(),
            (PairImage::Decoded(s), PairSide::Kb2) => s.kb2.literal(e).cloned(),
            (PairImage::Mapped(m), PairSide::Kb1) => m.kb1().term(e).as_literal().cloned(),
            (PairImage::Mapped(m), PairSide::Kb2) => m.kb2().term(e).as_literal().cloned(),
        }
    }

    /// Stored `Pr(x ≡ x′)` for a KB-1 / KB-2 entity pair (zero when the
    /// pair is not in the stored alignment).
    pub fn equiv_prob(&self, x: EntityId, x2: EntityId) -> f64 {
        match self {
            PairImage::Decoded(s) => s.alignment.instances.prob(x, x2),
            PairImage::Mapped(m) => m.alignment().prob(x, x2),
        }
    }

    /// Stored `Pr(r ⊆ r′)` for `r` in KB 1, `r′` in KB 2.
    pub fn subrel_1in2(&self, r1: RelationId, r2: RelationId) -> f64 {
        match self {
            PairImage::Decoded(s) => s.alignment.subrelations.prob_1in2(r1, r2),
            PairImage::Mapped(m) => m.alignment().subrel_prob_1in2(r1, r2),
        }
    }

    /// Stored `Pr(r′ ⊆ r)` for `r′` in KB 2, `r` in KB 1.
    pub fn subrel_2in1(&self, r2: RelationId, r1: RelationId) -> f64 {
        match self {
            PairImage::Decoded(s) => s.alignment.subrelations.prob_2in1(r2, r1),
            PairImage::Mapped(m) => m.alignment().subrel_prob_2in1(r2, r1),
        }
    }
}

fn decoded_facts(kb: &paris_kb::Kb, e: EntityId, offset: usize, limit: usize) -> Vec<FactRow> {
    kb.facts(e)
        .iter()
        .skip(offset)
        .take(limit)
        .map(|&(r, y)| FactRow {
            relation: kb.relation_iri(r).as_str().to_owned(),
            inverse: r.is_inverse(),
            value: kb.term(y).to_string(),
            functionality: kb.functionality(r),
        })
        .collect()
}

fn mapped_facts(
    kb: paris_kb::KbView<'_>,
    e: EntityId,
    offset: usize,
    limit: usize,
) -> Vec<FactRow> {
    kb.facts(e)
        .skip(offset)
        .take(limit)
        .map(|(r, y)| FactRow {
            relation: kb.relation_iri_str(r).to_owned(),
            inverse: r.is_inverse(),
            value: kb.term(y).to_string(),
            functionality: kb.functionality(r),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParisConfig;
    use crate::iteration::Aligner;
    use crate::owned::OwnedAlignment;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn tiny_snapshot() -> AlignedPairSnapshot {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..4 {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
        }
        let (kb1, kb2) = (a.build(), b.build());
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        AlignedPairSnapshot::new(kb1, kb2, owned)
    }

    #[test]
    fn load_dispatches_on_format_version() {
        let dir = std::env::temp_dir().join("paris_image_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = tiny_snapshot();
        let v1 = dir.join("pair_v1.snap");
        let v2 = dir.join("pair_v2.snap");
        snap.save(&v1).unwrap();
        MappedPairSnapshot::save_v2(&snap, &v2).unwrap();

        let d = PairImage::load(&v1).unwrap();
        let m = PairImage::load(&v2).unwrap();
        assert_eq!(d.format_version(), 1);
        assert_eq!(m.format_version(), 2);
        assert!(matches!(d, PairImage::Decoded(_)));
        assert!(matches!(m, PairImage::Mapped(_)));

        // Identical answers through the unified surface.
        for img in [&d, &m] {
            assert_eq!(img.kb_name(PairSide::Kb1), "left");
            assert_eq!(img.aligned_instances(), 4);
            let e = img.entity_by_iri(PairSide::Kb1, "http://a/p1").unwrap();
            let (matched, p) = img.best_match_from(PairSide::Kb1, e).unwrap();
            assert_eq!(
                img.entity_iri(PairSide::Kb2, matched).as_deref(),
                Some("http://b/q1")
            );
            assert!(p > 0.0);
            assert_eq!(
                img.facts_page(PairSide::Kb1, e, 0, 10),
                d.facts_page(PairSide::Kb1, e, 0, 10)
            );
            assert_eq!(img.kb_stats(PairSide::Kb2), KbStats::of(&snap.kb2));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let dir = std::env::temp_dir().join("paris_image_unit_badver");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.snap");
        let mut bytes = {
            let snap = tiny_snapshot();
            snap.save(&path).unwrap();
            std::fs::read(&path).unwrap()
        };
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            PairImage::load(&path),
            Err(SnapshotError::UnsupportedVersion(9))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
