//! Sub-relation alignment: `Pr(r ⊆ r′)` (paper §4.2, Eq. 8–12).
//!
//! For a relation `r` of one KB and `r′` of the other, the score is the
//! expected fraction of `r`'s pairs that — under the current instance
//! equivalences — are also pairs of `r′`, normalized by the expected
//! fraction of `r`'s pairs that have *any* counterpart (Eq. 12):
//!
//! ```text
//!             Σ_{r(x,y)} [ 1 − ∏_{r′(x′,y′)} (1 − P(x≡x′)·P(y≡y′)) ]
//! Pr(r⊆r′) = ─────────────────────────────────────────────────────────
//!             Σ_{r(x,y)} [ 1 − ∏_{x′,y′}    (1 − P(x≡x′)·P(y≡y′)) ]
//! ```
//!
//! In the very first iteration the scores are bootstrapped to θ for every
//! relation pair (§5.1); afterwards the computed values replace θ entirely.
//! Directed relations are aligned, so `r ⊆ r′⁻¹` (e.g. the paper's
//! `y:actedIn ⊆ dbp:starring⁻¹`) falls out without special handling.

use paris_kb::{FxHashMap, Kb, RelationId};

use crate::config::ParisConfig;
use crate::equiv::CandidateView;

/// Sparse `Pr(r ⊆ r′)` scores in both KB directions.
#[derive(Clone, Debug)]
pub struct SubrelStore {
    /// `Some(θ)` while bootstrapping (before the first sub-relation pass).
    bootstrap: Option<f64>,
    /// Row per KB-1 directed relation: `(KB-2 directed relation, Pr(r⊆r′))`,
    /// sorted by relation id.
    one_to_two: Vec<Vec<(RelationId, f64)>>,
    /// Row per KB-2 directed relation: `(KB-1 directed relation, Pr(r′⊆r))`.
    two_to_one: Vec<Vec<(RelationId, f64)>>,
}

impl SubrelStore {
    /// The bootstrap store: every cross-ontology relation pair gets θ.
    pub fn bootstrap(theta: f64, directed1: usize, directed2: usize) -> Self {
        SubrelStore {
            bootstrap: Some(theta),
            one_to_two: vec![Vec::new(); directed1],
            two_to_one: vec![Vec::new(); directed2],
        }
    }

    /// A computed store from per-direction rows.
    pub fn from_rows(
        mut one_to_two: Vec<Vec<(RelationId, f64)>>,
        mut two_to_one: Vec<Vec<(RelationId, f64)>>,
    ) -> Self {
        for row in one_to_two.iter_mut().chain(two_to_one.iter_mut()) {
            row.sort_unstable_by_key(|&(r, _)| r);
        }
        SubrelStore {
            bootstrap: None,
            one_to_two,
            two_to_one,
        }
    }

    /// True while scores are still the θ bootstrap.
    pub fn is_bootstrap(&self) -> bool {
        self.bootstrap.is_some()
    }

    /// `Pr(r ⊆ r′)` for `r` in KB 1, `r′` in KB 2.
    #[inline]
    pub fn prob_1in2(&self, r1: RelationId, r2: RelationId) -> f64 {
        match self.bootstrap {
            Some(theta) => theta,
            None => lookup(&self.one_to_two[r1.directed_index()], r2),
        }
    }

    /// `Pr(r′ ⊆ r)` for `r′` in KB 2, `r` in KB 1.
    #[inline]
    pub fn prob_2in1(&self, r2: RelationId, r1: RelationId) -> f64 {
        match self.bootstrap {
            Some(theta) => theta,
            None => lookup(&self.two_to_one[r2.directed_index()], r1),
        }
    }

    /// All computed KB1 → KB2 scores `(r, r′, Pr(r⊆r′))`. Empty while
    /// bootstrapping.
    pub fn alignments_1to2(&self) -> impl Iterator<Item = (RelationId, RelationId, f64)> + '_ {
        self.one_to_two.iter().enumerate().flat_map(|(i, row)| {
            row.iter()
                .map(move |&(r2, p)| (RelationId::from_directed_index(i), r2, p))
        })
    }

    /// All computed KB2 → KB1 scores `(r′, r, Pr(r′⊆r))`.
    pub fn alignments_2to1(&self) -> impl Iterator<Item = (RelationId, RelationId, f64)> + '_ {
        self.two_to_one.iter().enumerate().flat_map(|(i, row)| {
            row.iter()
                .map(move |&(r1, p)| (RelationId::from_directed_index(i), r1, p))
        })
    }

    /// For one KB-1 directed relation, every linked KB-2 relation together
    /// with both directional scores:
    /// `(r′, Pr(r⊆r′), Pr(r′⊆r))`. During bootstrap this is every KB-2
    /// relation with `(θ, θ)` — callers should prefer fact-driven iteration
    /// then.
    pub fn links_of_kb1(&self, r1: RelationId, directed2: usize) -> Vec<(RelationId, f64, f64)> {
        if let Some(theta) = self.bootstrap {
            return (0..directed2)
                .map(|i| (RelationId::from_directed_index(i), theta, theta))
                .collect();
        }
        let mut merged: FxHashMap<RelationId, (f64, f64)> = FxHashMap::default();
        for &(r2, p) in &self.one_to_two[r1.directed_index()] {
            merged.entry(r2).or_insert((0.0, 0.0)).0 = p;
        }
        for (i, row) in self.two_to_one.iter().enumerate() {
            if let Ok(pos) = row.binary_search_by_key(&r1, |&(r, _)| r) {
                merged
                    .entry(RelationId::from_directed_index(i))
                    .or_insert((0.0, 0.0))
                    .1 = row[pos].1;
            }
        }
        let mut out: Vec<(RelationId, f64, f64)> =
            merged.into_iter().map(|(r2, (a, b))| (r2, a, b)).collect();
        out.sort_unstable_by_key(|&(r2, _, _)| r2);
        out
    }

    /// Number of stored score entries across both directions.
    pub fn num_entries(&self) -> usize {
        self.one_to_two.iter().map(Vec::len).sum::<usize>()
            + self.two_to_one.iter().map(Vec::len).sum::<usize>()
    }

    /// A copy of this store sized for more directed relations on either
    /// side (new relations start with no scores). Warm-starts incremental
    /// re-alignment after a delta introduced relations.
    pub fn expanded(&self, directed1: usize, directed2: usize) -> SubrelStore {
        assert!(
            directed1 >= self.one_to_two.len() && directed2 >= self.two_to_one.len(),
            "expanded() cannot shrink a store ({}×{} → {directed1}×{directed2})",
            self.one_to_two.len(),
            self.two_to_one.len(),
        );
        let mut one_to_two = self.one_to_two.clone();
        one_to_two.resize(directed1, Vec::new());
        let mut two_to_one = self.two_to_one.clone();
        two_to_one.resize(directed2, Vec::new());
        SubrelStore {
            bootstrap: self.bootstrap,
            one_to_two,
            two_to_one,
        }
    }

    /// The stored KB1 → KB2 score row of one directed relation (empty
    /// while bootstrapping).
    pub fn row_1to2(&self, r1: RelationId) -> &[(RelationId, f64)] {
        &self.one_to_two[r1.directed_index()]
    }

    /// The stored KB2 → KB1 score row of one directed relation.
    pub fn row_2to1(&self, r2: RelationId) -> &[(RelationId, f64)] {
        &self.two_to_one[r2.directed_index()]
    }

    /// Replaces the KB1 → KB2 score row of one directed relation (the row
    /// is sorted by target id). Used by the incremental re-aligner to
    /// refresh only dirty relations.
    pub fn set_row_1to2(&mut self, r1: RelationId, mut row: Vec<(RelationId, f64)>) {
        row.sort_unstable_by_key(|&(r, _)| r);
        self.one_to_two[r1.directed_index()] = row;
    }

    /// Replaces the KB2 → KB1 score row of one directed relation.
    pub fn set_row_2to1(&mut self, r2: RelationId, mut row: Vec<(RelationId, f64)>) {
        row.sort_unstable_by_key(|&(r, _)| r);
        self.two_to_one[r2.directed_index()] = row;
    }
}

#[inline]
fn lookup(row: &[(RelationId, f64)], r: RelationId) -> f64 {
    match row.binary_search_by_key(&r, |&(q, _)| q) {
        Ok(i) => row[i].1,
        Err(_) => 0.0,
    }
}

/// One direction of the sub-relation pass: scores `Pr(r ⊆ r′)` for every
/// directed relation `r` of `src` against relations `r′` of `dst`.
///
/// `cand` maps `src` entities to their `dst` candidates (previous maximal
/// assignment merged with the literal bridge). Implements the neighbour-
/// driven optimization of §5.2 with the `max_pairs` cap.
pub fn subrelation_pass(
    src: &Kb,
    dst: &Kb,
    cand: &CandidateView,
    config: &ParisConfig,
) -> Vec<Vec<(RelationId, f64)>> {
    let mut rows: Vec<Vec<(RelationId, f64)>> = vec![Vec::new(); src.num_directed_relations()];
    let mut scratch = RelationScratch::default();
    for r in src.directed_relations() {
        rows[r.directed_index()] = score_relation_with(src, dst, cand, config, r, &mut scratch);
    }
    rows
}

/// Reusable accumulators for [`score_relation`], so a pass over many
/// relations does not reallocate per relation.
#[derive(Default)]
struct RelationScratch {
    numerators: FxHashMap<RelationId, f64>,
    per_pair: FxHashMap<RelationId, f64>,
    y_probs: FxHashMap<paris_kb::EntityId, f64>,
}

/// Scores one directed relation `r` of `src` against every relation of
/// `dst` — the Eq. 12 row [`subrelation_pass`] computes for each relation.
/// Exposed separately for the incremental re-aligner, which refreshes only
/// relations whose support sets were touched.
pub fn score_relation(
    src: &Kb,
    dst: &Kb,
    cand: &CandidateView,
    config: &ParisConfig,
    r: RelationId,
) -> Vec<(RelationId, f64)> {
    score_relation_with(src, dst, cand, config, r, &mut RelationScratch::default())
}

fn score_relation_with(
    src: &Kb,
    dst: &Kb,
    cand: &CandidateView,
    config: &ParisConfig,
    r: RelationId,
    scratch: &mut RelationScratch,
) -> Vec<(RelationId, f64)> {
    let RelationScratch {
        numerators,
        per_pair,
        y_probs,
    } = scratch;
    numerators.clear();
    let mut denominator = 0.0;
    for (x, y) in src.pairs(r).take(config.max_pairs) {
        let x_cands = cand.candidates(x);
        if x_cands.is_empty() {
            continue;
        }
        let y_cands = cand.candidates(y);
        if y_cands.is_empty() {
            continue;
        }

        // Denominator term: 1 − ∏_{x′,y′} (1 − P(x≡x′)·P(y≡y′)).
        let mut dprod = 1.0;
        for &(_, px) in x_cands {
            for &(_, py) in y_cands {
                dprod *= 1.0 - px * py;
            }
        }
        denominator += 1.0 - dprod;

        // Numerator terms, fact-driven: statements r′(x′, y′) with
        // x′ ≈ x come from the adjacency of each x-candidate.
        y_probs.clear();
        y_probs.extend(y_cands.iter().copied());
        per_pair.clear();
        for &(x2, px) in x_cands {
            for &(r2, z) in dst.facts(x2) {
                if let Some(&py) = y_probs.get(&z) {
                    *per_pair.entry(r2).or_insert(1.0) *= 1.0 - px * py;
                }
            }
        }
        for (&r2, &prod) in &*per_pair {
            *numerators.entry(r2).or_insert(0.0) += 1.0 - prod;
        }
    }
    let mut row = Vec::new();
    if denominator > 0.0 {
        for (&r2, &num) in &*numerators {
            let p = num / denominator;
            if p > 0.0 {
                // Clamp defensively against float drift; mathematically
                // num ≤ denominator (the numerator's factor set is a
                // subset of the denominator's).
                row.push((r2, p.min(1.0)));
            }
        }
        row.sort_unstable_by_key(|&(q, _)| q);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::KbBuilder;

    fn rel(i: usize) -> RelationId {
        RelationId::forward(i)
    }

    #[test]
    fn bootstrap_returns_theta_everywhere() {
        let s = SubrelStore::bootstrap(0.1, 4, 6);
        assert!(s.is_bootstrap());
        assert_eq!(s.prob_1in2(rel(0), rel(2)), 0.1);
        assert_eq!(s.prob_2in1(rel(2), rel(1).inverse()), 0.1);
        assert_eq!(s.num_entries(), 0);
        assert_eq!(s.links_of_kb1(rel(0), 6).len(), 6);
    }

    #[test]
    fn computed_store_lookup() {
        let s = SubrelStore::from_rows(
            vec![vec![(rel(1), 0.8)], vec![]],
            vec![vec![], vec![], vec![(rel(0), 0.5)]],
        );
        assert!(!s.is_bootstrap());
        assert_eq!(s.prob_1in2(rel(0), rel(1)), 0.8);
        assert_eq!(s.prob_1in2(rel(0), rel(0)), 0.0);
        assert_eq!(s.prob_2in1(rel(1), rel(0)), 0.5);
        assert_eq!(s.num_entries(), 2);
    }

    #[test]
    fn links_merge_both_directions() {
        let s = SubrelStore::from_rows(
            vec![vec![(rel(1), 0.8)], vec![]],
            vec![vec![], vec![], vec![(rel(0), 0.5)]],
        );
        let links = s.links_of_kb1(rel(0), 4);
        assert_eq!(links, vec![(rel(1), 0.8, 0.5)]);
    }

    /// Two KBs over the same 3 people; the aligned relation should score 1.
    #[test]
    fn identical_relations_score_one() {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        for i in 0..3 {
            b1.add_fact(
                format!("http://a/p{i}"),
                "http://a/born",
                format!("http://a/c{i}"),
            );
            b2.add_fact(
                format!("http://b/p{i}"),
                "http://b/birth",
                format!("http://b/c{i}"),
            );
        }
        let kb1 = b1.build();
        let kb2 = b2.build();
        // Perfect candidate view: a/pi ≡ b/pi, a/ci ≡ b/ci.
        let mut rows = vec![Vec::new(); kb1.num_entities()];
        for i in 0..3 {
            let p1 = kb1.entity_by_iri(&format!("http://a/p{i}")).unwrap();
            let p2 = kb2.entity_by_iri(&format!("http://b/p{i}")).unwrap();
            let c1 = kb1.entity_by_iri(&format!("http://a/c{i}")).unwrap();
            let c2 = kb2.entity_by_iri(&format!("http://b/c{i}")).unwrap();
            rows[p1.index()].push((p2, 1.0));
            rows[c1.index()].push((c2, 1.0));
        }
        let cand = CandidateView::new(rows);
        let out = subrelation_pass(&kb1, &kb2, &cand, &ParisConfig::default());
        let born = kb1.relation_by_iri("http://a/born").unwrap();
        let birth = kb2.relation_by_iri("http://b/birth").unwrap();
        let row = &out[born.directed_index()];
        assert_eq!(row.len(), 1);
        assert_eq!(row[0], (birth, 1.0));
        // the inverse direction aligns too
        let row_inv = &out[born.inverse().directed_index()];
        assert_eq!(row_inv[0], (birth.inverse(), 1.0));
    }

    /// An inverted relation in KB2 aligns to the inverse direction.
    #[test]
    fn inverse_relations_align() {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        for i in 0..3 {
            b1.add_fact(
                format!("http://a/p{i}"),
                "http://a/actedIn",
                format!("http://a/m{i}"),
            );
            b2.add_fact(
                format!("http://b/m{i}"),
                "http://b/starring",
                format!("http://b/p{i}"),
            );
        }
        let kb1 = b1.build();
        let kb2 = b2.build();
        let mut rows = vec![Vec::new(); kb1.num_entities()];
        for i in 0..3 {
            let p1 = kb1.entity_by_iri(&format!("http://a/p{i}")).unwrap();
            let p2 = kb2.entity_by_iri(&format!("http://b/p{i}")).unwrap();
            let m1 = kb1.entity_by_iri(&format!("http://a/m{i}")).unwrap();
            let m2 = kb2.entity_by_iri(&format!("http://b/m{i}")).unwrap();
            rows[p1.index()].push((p2, 1.0));
            rows[m1.index()].push((m2, 1.0));
        }
        let cand = CandidateView::new(rows);
        let out = subrelation_pass(&kb1, &kb2, &cand, &ParisConfig::default());
        let acted = kb1.relation_by_iri("http://a/actedIn").unwrap();
        let starring = kb2.relation_by_iri("http://b/starring").unwrap();
        assert_eq!(out[acted.directed_index()], vec![(starring.inverse(), 1.0)]);
    }

    /// A finer-grained relation is a sub-relation of the coarser one, but
    /// not vice versa (paper Table 4: hasCapital ⊆ contains).
    #[test]
    fn fine_grained_subsumption_is_asymmetric() {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        // KB1: capitals only. KB2: all contained cities.
        for i in 0..4 {
            b1.add_fact(
                format!("http://a/state{i}"),
                "http://a/hasCapital",
                format!("http://a/city{i}0"),
            );
            for j in 0..3 {
                b2.add_fact(
                    format!("http://b/state{i}"),
                    "http://b/contains",
                    format!("http://b/city{i}{j}"),
                );
            }
        }
        let kb1 = b1.build();
        let kb2 = b2.build();
        let mut rows1 = vec![Vec::new(); kb1.num_entities()];
        for i in 0..4 {
            let s1 = kb1.entity_by_iri(&format!("http://a/state{i}")).unwrap();
            let s2 = kb2.entity_by_iri(&format!("http://b/state{i}")).unwrap();
            rows1[s1.index()].push((s2, 1.0));
            let c1 = kb1.entity_by_iri(&format!("http://a/city{i}0")).unwrap();
            let c2 = kb2.entity_by_iri(&format!("http://b/city{i}0")).unwrap();
            rows1[c1.index()].push((c2, 1.0));
        }
        let out1 = subrelation_pass(
            &kb1,
            &kb2,
            &CandidateView::new(rows1),
            &ParisConfig::default(),
        );
        let cap = kb1.relation_by_iri("http://a/hasCapital").unwrap();
        let contains = kb2.relation_by_iri("http://b/contains").unwrap();
        assert_eq!(
            out1[cap.directed_index()],
            vec![(contains, 1.0)],
            "capital ⊆ contains"
        );

        // Reverse direction: contains ⊄ hasCapital (only 1/3 of pairs match,
        // and only 1/3 of contains-pairs have counterparts at all — cities
        // i1, i2 have no KB1 equivalent, so the denominator only counts
        // matched pairs and the score stays high ... compute it directly:
        let mut rows2 = vec![Vec::new(); kb2.num_entities()];
        for i in 0..4 {
            let s2 = kb2.entity_by_iri(&format!("http://b/state{i}")).unwrap();
            let s1 = kb1.entity_by_iri(&format!("http://a/state{i}")).unwrap();
            rows2[s2.index()].push((s1, 1.0));
            let c2 = kb2.entity_by_iri(&format!("http://b/city{i}0")).unwrap();
            let c1 = kb1.entity_by_iri(&format!("http://a/city{i}0")).unwrap();
            rows2[c2.index()].push((c1, 1.0));
        }
        let out2 = subrelation_pass(
            &kb2,
            &kb1,
            &CandidateView::new(rows2),
            &ParisConfig::default(),
        );
        let row = &out2[contains.directed_index()];
        // Every contains-pair with a counterpart IS a capital pair here, so
        // Pr(contains ⊆ hasCapital) = 1 under Eq. 12's normalization; the
        // asymmetry shows up in coverage (the paper normalizes by matched
        // pairs only). What must NOT happen is a score > 1 or a missing row.
        assert_eq!(row.len(), 1);
        assert!(row[0].1 <= 1.0);
    }

    #[test]
    fn no_candidates_no_scores() {
        let mut b1 = KbBuilder::new("a");
        b1.add_fact("http://a/x", "http://a/r", "http://a/y");
        let kb1 = b1.build();
        let mut b2 = KbBuilder::new("b");
        b2.add_fact("http://b/x", "http://b/r", "http://b/y");
        let kb2 = b2.build();
        let cand = CandidateView::empty(kb1.num_entities());
        let out = subrelation_pass(&kb1, &kb2, &cand, &ParisConfig::default());
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn partial_overlap_scores_fraction() {
        // 4 pairs of r; only 2 of them appear in r'. Denominator counts all
        // 4 (all arguments have candidates), numerator 2 → 0.5.
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        for i in 0..4 {
            b1.add_fact(
                format!("http://a/x{i}"),
                "http://a/r",
                format!("http://a/y{i}"),
            );
        }
        for i in 0..2 {
            b2.add_fact(
                format!("http://b/x{i}"),
                "http://b/r",
                format!("http://b/y{i}"),
            );
        }
        // all 4 subjects/objects have perfect candidates: x_i ≡ x_i′ where
        // the missing ones map to unrelated entities.
        for i in 2..4 {
            b2.add_fact(
                format!("http://b/x{i}"),
                "http://b/other",
                format!("http://b/y{i}"),
            );
        }
        let kb1 = b1.build();
        let kb2 = b2.build();
        let mut rows = vec![Vec::new(); kb1.num_entities()];
        for i in 0..4 {
            for (a, b) in [("x", "x"), ("y", "y")] {
                let e1 = kb1.entity_by_iri(&format!("http://a/{a}{i}")).unwrap();
                let e2 = kb2.entity_by_iri(&format!("http://b/{b}{i}")).unwrap();
                rows[e1.index()].push((e2, 1.0));
            }
        }
        let out = subrelation_pass(
            &kb1,
            &kb2,
            &CandidateView::new(rows),
            &ParisConfig::default(),
        );
        let r1 = kb1.relation_by_iri("http://a/r").unwrap();
        let r2 = kb2.relation_by_iri("http://b/r").unwrap();
        let other = kb2.relation_by_iri("http://b/other").unwrap();
        let row = &out[r1.directed_index()];
        let p_r = lookup(row, r2);
        let p_other = lookup(row, other);
        assert!((p_r - 0.5).abs() < 1e-12, "{p_r}");
        assert!((p_other - 0.5).abs() < 1e-12, "{p_other}");
    }

    #[test]
    fn max_pairs_cap_limits_work() {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        for i in 0..50 {
            b1.add_fact(
                format!("http://a/x{i}"),
                "http://a/r",
                format!("http://a/y{i}"),
            );
            b2.add_fact(
                format!("http://b/x{i}"),
                "http://b/r",
                format!("http://b/y{i}"),
            );
        }
        let kb1 = b1.build();
        let kb2 = b2.build();
        let mut rows = vec![Vec::new(); kb1.num_entities()];
        for i in 0..50 {
            for t in ["x", "y"] {
                let e1 = kb1.entity_by_iri(&format!("http://a/{t}{i}")).unwrap();
                let e2 = kb2.entity_by_iri(&format!("http://b/{t}{i}")).unwrap();
                rows[e1.index()].push((e2, 1.0));
            }
        }
        let config = ParisConfig {
            max_pairs: 10,
            ..ParisConfig::default()
        };
        let out = subrelation_pass(&kb1, &kb2, &CandidateView::new(rows), &config);
        let r1 = kb1.relation_by_iri("http://a/r").unwrap();
        let r2 = kb2.relation_by_iri("http://b/r").unwrap();
        // capped but still a perfect ratio on the sampled pairs
        assert_eq!(lookup(&out[r1.directed_index()], r2), 1.0);
    }
}
