//! Zero-copy aligned-pair snapshots (format v2) and their views.
//!
//! The v1 path ([`crate::owned`]) decodes a whole
//! [`AlignedPairSnapshot`] into owned stores on every load. This module
//! is the arena-backed counterpart: [`MappedPairSnapshot`] opens a v2
//! file via [`paris_kb::snapshot_v2`] — section table validated once,
//! body never decoded — and serves queries through borrowing views:
//! [`KbView`] for the two KBs (defined in `paris-kb`)
//! and [`AlignmentView`] for the alignment tables (defined here, since
//! only this crate knows their semantics).
//!
//! The alignment occupies the section ids `ALIGN_BASE + k`:
//!
//! | id | content |
//! |---|---|
//! | META | `n1 n2 d1 d2 literal_pairs converged` + iteration stats |
//! | EQ_OFFSETS / EQ_TARGETS / EQ_PROBS | per-KB-1-entity candidate rows |
//! | REV_* | the same rows indexed from the KB-2 side |
//! | SUB12_* / SUB21_* | sub-relation score rows, both directions |
//! | CLS12 / CLS21 | class scores: `(u32 sub, u32 sup, f64 p, u64 n)` |
//!
//! Candidate rows are parallel arrays (`u32` targets + `f64` probs) so
//! every section stays fixed-width and 8-aligned. Unlike v1, the
//! *backward* equivalence index is stored, not derived — `sameas` from
//! the right-hand side must not force an O(pairs) rebuild at open.
//!
//! [`AlignmentView::best_match`] replicates
//! [`OwnedAlignment::best_match`] factor for factor (same tie-breaking,
//! same iteration order), which is what makes v2 answers bit-identical
//! to the v1 decode path.

use std::ops::Range;
use std::path::Path;

use paris_kb::snapshot::{PayloadReader, PayloadWriter, SnapshotError, SnapshotKind};
use paris_kb::snapshot_v2::{
    check_ids, check_offsets, encode_kb_sections, expect_len, le_f64, le_u32, le_u64, KbLayout,
    SectionWriter, ALIGN_BASE, KB1_BASE, KB2_BASE,
};
use paris_kb::{EntityId, EntityKind, KbView, RelationId, SnapshotArena};

use crate::equiv::EquivStore;
use crate::iteration::IterationStats;
use crate::owned::{AlignedPairSnapshot, OwnedAlignment};
use crate::subclass::{ClassAlignment, ClassScore};
use crate::subrel::SubrelStore;

const A_META: u32 = 0;
const A_EQ_OFFSETS: u32 = 1;
const A_EQ_TARGETS: u32 = 2;
const A_EQ_PROBS: u32 = 3;
const A_REV_OFFSETS: u32 = 4;
const A_REV_TARGETS: u32 = 5;
const A_REV_PROBS: u32 = 6;
const A_SUB12_OFFSETS: u32 = 7;
const A_SUB12_TARGETS: u32 = 8;
const A_SUB12_PROBS: u32 = 9;
const A_SUB21_OFFSETS: u32 = 10;
const A_SUB21_TARGETS: u32 = 11;
const A_SUB21_PROBS: u32 = 12;
const A_CLS12: u32 = 13;
const A_CLS21: u32 = 14;

/// Bytes of one class-score record.
const CLS_RECORD: usize = 24;

// ----------------------------------------------------------------------
// Encoding
// ----------------------------------------------------------------------

fn encode_candidate_rows<'r>(
    w: &mut SectionWriter,
    ids: (u32, u32, u32),
    rows: impl Iterator<Item = &'r [(EntityId, f64)]>,
) {
    let (offsets_id, targets_id, probs_id) = ids;
    let mut offsets = PayloadWriter::new();
    let mut targets = PayloadWriter::new();
    let mut probs = PayloadWriter::new();
    let mut total = 0u64;
    offsets.put_u64(0);
    for row in rows {
        total += row.len() as u64;
        offsets.put_u64(total);
        for &(e, p) in row {
            targets.put_u32(e.0);
            probs.put_f64(p);
        }
    }
    w.add(offsets_id, offsets.bytes());
    w.add(targets_id, targets.bytes());
    w.add(probs_id, probs.bytes());
}

fn encode_subrel_rows<'r>(
    w: &mut SectionWriter,
    ids: (u32, u32, u32),
    rows: impl Iterator<Item = &'r [(RelationId, f64)]>,
) {
    let (offsets_id, targets_id, probs_id) = ids;
    let mut offsets = PayloadWriter::new();
    let mut targets = PayloadWriter::new();
    let mut probs = PayloadWriter::new();
    let mut total = 0u64;
    offsets.put_u64(0);
    for row in rows {
        total += row.len() as u64;
        offsets.put_u64(total);
        for &(r, p) in row {
            targets.put_u32(r.0);
            probs.put_f64(p);
        }
    }
    w.add(offsets_id, offsets.bytes());
    w.add(targets_id, targets.bytes());
    w.add(probs_id, probs.bytes());
}

fn encode_class_scores(w: &mut SectionWriter, id: u32, scores: &[ClassScore]) {
    let mut out = PayloadWriter::new();
    for s in scores {
        out.put_u32(s.sub.0);
        out.put_u32(s.sup.0);
        out.put_f64(s.prob);
        out.put_u64(s.sampled_members as u64);
    }
    w.add(id, out.bytes());
}

/// Appends the alignment section set of an [`OwnedAlignment`].
fn encode_alignment_sections(a: &OwnedAlignment, w: &mut SectionWriter) {
    let n1 = a.instances.len_kb1();
    let n2 = a.instances.len_kb2();

    let mut meta = PayloadWriter::new();
    meta.put_u64(n1 as u64);
    meta.put_u64(n2 as u64);
    meta.put_u64(a.kb1_directed_relations as u64);
    meta.put_u64(a.kb2_directed_relations as u64);
    meta.put_u64(a.literal_pairs as u64);
    meta.put_u8(u8::from(a.converged));
    meta.put_u64(a.iterations.len() as u64);
    for s in &a.iterations {
        meta.put_u64(s.iteration as u64);
        meta.put_u64(s.changed as u64);
        meta.put_f64(s.changed_fraction);
        meta.put_u64(s.instance_equivalences as u64);
        meta.put_u64(s.assigned_instances as u64);
        meta.put_u64(s.subrelation_entries as u64);
        meta.put_f64(s.instance_seconds);
        meta.put_f64(s.subrelation_seconds);
    }
    w.add(ALIGN_BASE + A_META, meta.bytes());

    encode_candidate_rows(
        w,
        (
            ALIGN_BASE + A_EQ_OFFSETS,
            ALIGN_BASE + A_EQ_TARGETS,
            ALIGN_BASE + A_EQ_PROBS,
        ),
        (0..n1).map(|i| a.instances.candidates(EntityId::from_index(i))),
    );
    encode_candidate_rows(
        w,
        (
            ALIGN_BASE + A_REV_OFFSETS,
            ALIGN_BASE + A_REV_TARGETS,
            ALIGN_BASE + A_REV_PROBS,
        ),
        (0..n2).map(|i| a.instances.candidates_rev(EntityId::from_index(i))),
    );
    encode_subrel_rows(
        w,
        (
            ALIGN_BASE + A_SUB12_OFFSETS,
            ALIGN_BASE + A_SUB12_TARGETS,
            ALIGN_BASE + A_SUB12_PROBS,
        ),
        (0..a.kb1_directed_relations)
            .map(|i| a.subrelations.row_1to2(RelationId::from_directed_index(i))),
    );
    encode_subrel_rows(
        w,
        (
            ALIGN_BASE + A_SUB21_OFFSETS,
            ALIGN_BASE + A_SUB21_TARGETS,
            ALIGN_BASE + A_SUB21_PROBS,
        ),
        (0..a.kb2_directed_relations)
            .map(|i| a.subrelations.row_2to1(RelationId::from_directed_index(i))),
    );
    encode_class_scores(w, ALIGN_BASE + A_CLS12, &a.classes.one_to_two);
    encode_class_scores(w, ALIGN_BASE + A_CLS21, &a.classes.two_to_one);
}

// ----------------------------------------------------------------------
// Layout validation + view
// ----------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RowsLayout {
    offsets: Range<usize>,
    targets: Range<usize>,
    probs: Range<usize>,
}

impl RowsLayout {
    /// Validates one offsets/targets/probs triple: `count` rows, targets
    /// all `< bound`, probs parallel to targets.
    fn validate(
        snap: &SnapshotArena,
        ids: (u32, u32, u32),
        count: usize,
        bound: u32,
        what: &str,
    ) -> Result<RowsLayout, SnapshotError> {
        let buf = snap.bytes();
        let offsets = snap.required(ids.0, &format!("{what} offsets"))?;
        let targets = snap.required(ids.1, &format!("{what} targets"))?;
        let probs = snap.required(ids.2, &format!("{what} probs"))?;
        if targets.len() % 4 != 0 {
            return Err(SnapshotError::corrupt(format!(
                "section {what} targets is not a u32 array"
            )));
        }
        let entries = targets.len() / 4;
        check_offsets(
            &buf[offsets.clone()],
            count,
            entries as u64,
            &format!("{what} offsets"),
        )?;
        check_ids(
            &buf[targets.clone()],
            bound.max(1),
            &format!("{what} targets"),
        )?;
        if bound == 0 && entries > 0 {
            return Err(SnapshotError::corrupt(format!(
                "section {what} has entries but no targets exist"
            )));
        }
        expect_len(&buf[probs.clone()], 8 * entries, &format!("{what} probs"))?;
        Ok(RowsLayout {
            offsets,
            targets,
            probs,
        })
    }

    fn row_bounds(&self, buf: &[u8], i: usize) -> (usize, usize) {
        let offsets = &buf[self.offsets.clone()];
        (le_u64(offsets, i) as usize, le_u64(offsets, i + 1) as usize)
    }
}

/// Validated section ranges of the alignment tables, plus the decoded
/// META values (tiny: counts and per-iteration statistics).
#[derive(Clone, Debug)]
pub struct AlignmentLayout {
    n1: usize,
    n2: usize,
    literal_pairs: usize,
    converged: bool,
    iterations: Vec<IterationStats>,
    eq: RowsLayout,
    rev: RowsLayout,
    sub12: RowsLayout,
    sub21: RowsLayout,
    cls12: Range<usize>,
    cls21: Range<usize>,
    kb1_directed: usize,
    kb2_directed: usize,
}

impl AlignmentLayout {
    /// Validates the alignment sections against the two KB layouts.
    pub fn validate(
        snap: &SnapshotArena,
        kb1: &KbLayout,
        kb2: &KbLayout,
    ) -> Result<AlignmentLayout, SnapshotError> {
        let buf = snap.bytes();
        let meta_range = snap.required(ALIGN_BASE + A_META, "alignment meta")?;
        let mut meta = PayloadReader::new(&buf[meta_range]);
        let n1 = meta.get_u64()? as usize;
        let n2 = meta.get_u64()? as usize;
        let d1 = meta.get_u64()? as usize;
        let d2 = meta.get_u64()? as usize;
        let literal_pairs = meta.get_u64()? as usize;
        let converged = meta.get_u8()? != 0;
        // get_len bounds the count by the remaining meta bytes, so the
        // allocation below cannot balloon on a corrupt count (each
        // iteration record is 64 > 1 bytes).
        let num_iterations = meta.get_len()?;
        let mut iterations = Vec::with_capacity(num_iterations);
        for _ in 0..num_iterations {
            iterations.push(IterationStats {
                iteration: meta.get_u64()? as usize,
                changed: meta.get_u64()? as usize,
                changed_fraction: meta.get_f64()?,
                instance_equivalences: meta.get_u64()? as usize,
                assigned_instances: meta.get_u64()? as usize,
                subrelation_entries: meta.get_u64()? as usize,
                instance_seconds: meta.get_f64()?,
                subrelation_seconds: meta.get_f64()?,
            });
        }
        if !meta.is_exhausted() {
            return Err(SnapshotError::corrupt("trailing bytes in alignment meta"));
        }

        let (kb1_entities, kb2_entities) = (kb1.num_entities(), kb2.num_entities());
        if n1 != kb1_entities || n2 != kb2_entities {
            return Err(SnapshotError::corrupt(format!(
                "alignment covers {n1}×{n2} entities but KBs have {kb1_entities}×{kb2_entities}"
            )));
        }
        let (kb1_directed, kb2_directed) = (2 * kb1.num_relations(), 2 * kb2.num_relations());
        if d1 != kb1_directed || d2 != kb2_directed {
            return Err(SnapshotError::corrupt(format!(
                "sub-relation tables sized {d1}×{d2}, KBs have {kb1_directed}×{kb2_directed} directed relations"
            )));
        }

        let eq = RowsLayout::validate(
            snap,
            (
                ALIGN_BASE + A_EQ_OFFSETS,
                ALIGN_BASE + A_EQ_TARGETS,
                ALIGN_BASE + A_EQ_PROBS,
            ),
            n1,
            n2 as u32,
            "equivalences",
        )?;
        let rev = RowsLayout::validate(
            snap,
            (
                ALIGN_BASE + A_REV_OFFSETS,
                ALIGN_BASE + A_REV_TARGETS,
                ALIGN_BASE + A_REV_PROBS,
            ),
            n2,
            n1 as u32,
            "reverse equivalences",
        )?;
        if eq.targets.len() != rev.targets.len() {
            return Err(SnapshotError::corrupt(
                "forward and reverse equivalence tables disagree in size",
            ));
        }
        let sub12 = RowsLayout::validate(
            snap,
            (
                ALIGN_BASE + A_SUB12_OFFSETS,
                ALIGN_BASE + A_SUB12_TARGETS,
                ALIGN_BASE + A_SUB12_PROBS,
            ),
            d1,
            d2 as u32,
            "sub-relations 1→2",
        )?;
        let sub21 = RowsLayout::validate(
            snap,
            (
                ALIGN_BASE + A_SUB21_OFFSETS,
                ALIGN_BASE + A_SUB21_TARGETS,
                ALIGN_BASE + A_SUB21_PROBS,
            ),
            d2,
            d1 as u32,
            "sub-relations 2→1",
        )?;

        let cls12 = snap.required(ALIGN_BASE + A_CLS12, "class scores 1→2")?;
        let cls21 = snap.required(ALIGN_BASE + A_CLS21, "class scores 2→1")?;
        for (range, sub_bound, sup_bound, what) in [
            (&cls12, n1, n2, "class scores 1→2"),
            (&cls21, n2, n1, "class scores 2→1"),
        ] {
            let sec = &buf[range.start..range.end];
            if sec.len() % CLS_RECORD != 0 {
                return Err(SnapshotError::corrupt(format!(
                    "section {what} is not a class-score array"
                )));
            }
            for i in 0..sec.len() / CLS_RECORD {
                let rec = &sec[i * CLS_RECORD..];
                let sub = le_u32(rec, 0) as usize;
                let sup = le_u32(rec, 1) as usize;
                if sub >= sub_bound || sup >= sup_bound {
                    return Err(SnapshotError::corrupt(format!(
                        "section {what}: class ids ({sub}, {sup}) out of range"
                    )));
                }
            }
        }

        Ok(AlignmentLayout {
            n1,
            n2,
            literal_pairs,
            converged,
            iterations,
            eq,
            rev,
            sub12,
            sub21,
            cls12,
            cls21,
            kb1_directed,
            kb2_directed,
        })
    }

    /// A borrowing view over this layout's sections.
    pub fn view<'a>(&'a self, snap: &'a SnapshotArena) -> AlignmentView<'a> {
        AlignmentView {
            buf: snap.bytes(),
            layout: self,
        }
    }
}

/// A zero-copy view of the alignment tables — the arena-backed
/// counterpart of [`OwnedAlignment`] for the serving query paths.
#[derive(Clone, Copy)]
pub struct AlignmentView<'a> {
    buf: &'a [u8],
    layout: &'a AlignmentLayout,
}

impl<'a> AlignmentView<'a> {
    fn best_in(&self, rows: &RowsLayout, i: usize) -> Option<(EntityId, f64)> {
        let (start, end) = rows.row_bounds(self.buf, i);
        let targets = &self.buf[rows.targets.clone()];
        let probs = &self.buf[rows.probs.clone()];
        // Same fold as OwnedAlignment::best_match: strict `>` keeps the
        // earliest (smallest-id) candidate on ties.
        let mut best: Option<(EntityId, f64)> = None;
        for j in start..end {
            let p = le_f64(probs, j);
            match best {
                Some((_, bp)) if p <= bp => {}
                _ => best = Some((EntityId(le_u32(targets, j)), p)),
            }
        }
        best
    }

    fn row_in(&self, rows: &RowsLayout, i: usize) -> Vec<(EntityId, f64)> {
        let (start, end) = rows.row_bounds(self.buf, i);
        let targets = &self.buf[rows.targets.clone()];
        let probs = &self.buf[rows.probs.clone()];
        (start..end)
            .map(|j| (EntityId(le_u32(targets, j)), le_f64(probs, j)))
            .collect()
    }

    /// The best KB-2 match of a KB-1 entity, with its probability.
    pub fn best_match(&self, x: EntityId) -> Option<(EntityId, f64)> {
        self.best_in(&self.layout.eq, x.index())
    }

    /// The best KB-1 match of a KB-2 entity, with its probability.
    pub fn best_match_rev(&self, x2: EntityId) -> Option<(EntityId, f64)> {
        self.best_in(&self.layout.rev, x2.index())
    }

    /// True when a KB-1 entity has at least one stored candidate.
    pub fn has_candidates(&self, x: EntityId) -> bool {
        let (start, end) = self.layout.eq.row_bounds(self.buf, x.index());
        end > start
    }

    /// Stored `Pr(x ≡ x′)`, zero if the pair is not stored.
    pub fn prob(&self, x: EntityId, x2: EntityId) -> f64 {
        let (start, end) = self.layout.eq.row_bounds(self.buf, x.index());
        let targets = &self.buf[self.layout.eq.targets.clone()];
        let probs = &self.buf[self.layout.eq.probs.clone()];
        (start..end)
            .find(|&j| le_u32(targets, j) == x2.0)
            .map_or(0.0, |j| le_f64(probs, j))
    }

    fn subrel_lookup(&self, rows: &RowsLayout, src: RelationId, dst: RelationId) -> f64 {
        let (start, end) = rows.row_bounds(self.buf, src.directed_index());
        let targets = &self.buf[rows.targets.clone()];
        let probs = &self.buf[rows.probs.clone()];
        (start..end)
            .find(|&j| le_u32(targets, j) == dst.0)
            .map_or(0.0, |j| le_f64(probs, j))
    }

    /// Stored `Pr(r ⊆ r′)` for `r` in KB 1, `r′` in KB 2 — the view
    /// equivalent of [`crate::subrel::SubrelStore::prob_1in2`].
    pub fn subrel_prob_1in2(&self, r1: RelationId, r2: RelationId) -> f64 {
        self.subrel_lookup(&self.layout.sub12, r1, r2)
    }

    /// Stored `Pr(r′ ⊆ r)` for `r′` in KB 2, `r` in KB 1.
    pub fn subrel_prob_2in1(&self, r2: RelationId, r1: RelationId) -> f64 {
        self.subrel_lookup(&self.layout.sub21, r2, r1)
    }

    /// Total number of stored (non-zero) instance equivalences.
    pub fn num_instance_pairs(&self) -> usize {
        self.layout.eq.targets.len() / 4
    }

    /// Number of clamped literal-equivalence pairs.
    pub fn literal_pairs(&self) -> usize {
        self.layout.literal_pairs
    }

    /// Whether the producing run converged.
    pub fn converged(&self) -> bool {
        self.layout.converged
    }

    /// Per-iteration measurements of the producing run.
    pub fn iterations(&self) -> &'a [IterationStats] {
        &self.layout.iterations
    }

    /// Number of assigned KB-1 instances — the view equivalent of
    /// `alignment.instance_pairs(&kb1).len()`.
    pub fn aligned_instances(&self, kb1: KbView<'_>) -> usize {
        (0..self.layout.n1)
            .filter(|&i| {
                let e = EntityId::from_index(i);
                kb1.kind(e) == EntityKind::Instance && self.has_candidates(e)
            })
            .count()
    }

    /// Fully decodes this view into an [`OwnedAlignment`] — the bridge
    /// back to the delta/incremental APIs and v2 → v1 conversion.
    pub fn to_owned_alignment(&self) -> OwnedAlignment {
        let l = self.layout;
        let rows: Vec<Vec<(EntityId, f64)>> = (0..l.n1).map(|i| self.row_in(&l.eq, i)).collect();
        let instances = EquivStore::from_rows(rows, l.n2);

        let subrel_rows = |rows_layout: &RowsLayout, count: usize| -> Vec<Vec<(RelationId, f64)>> {
            let targets = &self.buf[rows_layout.targets.clone()];
            let probs = &self.buf[rows_layout.probs.clone()];
            (0..count)
                .map(|i| {
                    let (start, end) = rows_layout.row_bounds(self.buf, i);
                    (start..end)
                        .map(|j| (RelationId(le_u32(targets, j)), le_f64(probs, j)))
                        .collect()
                })
                .collect()
        };
        let subrelations = SubrelStore::from_rows(
            subrel_rows(&l.sub12, l.kb1_directed),
            subrel_rows(&l.sub21, l.kb2_directed),
        );

        let class_scores = |range: &Range<usize>| -> Vec<ClassScore> {
            let sec = &self.buf[range.start..range.end];
            (0..sec.len() / CLS_RECORD)
                .map(|i| {
                    let rec = &sec[i * CLS_RECORD..];
                    ClassScore {
                        sub: EntityId(le_u32(rec, 0)),
                        sup: EntityId(le_u32(rec, 1)),
                        prob: le_f64(rec, 1), // f64 at byte 8 = 8-byte index 1
                        sampled_members: le_u64(rec, 2) as usize,
                    }
                })
                .collect()
        };
        let classes = ClassAlignment {
            one_to_two: class_scores(&l.cls12),
            two_to_one: class_scores(&l.cls21),
        };

        OwnedAlignment {
            instances,
            subrelations,
            classes,
            literal_pairs: l.literal_pairs,
            iterations: l.iterations.clone(),
            converged: l.converged,
            kb1_directed_relations: l.kb1_directed,
            kb2_directed_relations: l.kb2_directed,
        }
    }
}

// ----------------------------------------------------------------------
// The mapped pair snapshot
// ----------------------------------------------------------------------

/// An opened, validated v2 aligned-pair snapshot: the arena plus the
/// three validated layouts. Open cost is one validation scan — no
/// decoding, no per-record allocation; queries go through the views.
#[derive(Debug)]
pub struct MappedPairSnapshot {
    arena: SnapshotArena,
    kb1: KbLayout,
    kb2: KbLayout,
    alignment: AlignmentLayout,
}

impl MappedPairSnapshot {
    /// Opens and validates a v2 aligned-pair snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        MappedPairSnapshot::from_arena(SnapshotArena::open_deferred(path)?)
    }

    /// Validates an in-memory v2 aligned-pair image.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        MappedPairSnapshot::from_arena(SnapshotArena::from_bytes_deferred(bytes)?)
    }

    /// Validation is the entire open cost of a v2 snapshot, and its
    /// three pieces are independent: the section checksums, the KB-1
    /// layout, and the KB-2 layout (layout validation is safe on
    /// not-yet-checksummed bytes — every read is bounds-checked, and
    /// corrupt data yields a `Corrupt` error at worst). For large files
    /// the three run concurrently; checksum verification additionally
    /// fans out over sections internally.
    fn from_arena(arena: SnapshotArena) -> Result<Self, SnapshotError> {
        if arena.kind() != SnapshotKind::AlignedPair {
            return Err(SnapshotError::corrupt(format!(
                "expected an aligned-pair snapshot, found a {}",
                arena.kind().name()
            )));
        }
        let parallel = arena.file_len() >= 1 << 20
            && std::thread::available_parallelism().map_or(1, |n| n.get()) >= 4;
        let (sums, kb1, kb2) = if parallel {
            // One flat scope, four lanes: two spawned checksum slices +
            // the spawned KB-1 layout, while this thread takes the third
            // checksum slice and the KB-2 layout. No nested spawns.
            std::thread::scope(|scope| {
                let c0 = scope.spawn(|| arena.verify_checksums_slice(0, 3));
                let c1 = scope.spawn(|| arena.verify_checksums_slice(1, 3));
                let kb1 = scope.spawn(|| KbLayout::validate(&arena, KB1_BASE));
                let c2 = arena.verify_checksums_slice(2, 3);
                let kb2 = KbLayout::validate(&arena, KB2_BASE);
                let sums = c2
                    .and(c0.join().expect("checksum thread panicked"))
                    .and(c1.join().expect("checksum thread panicked"));
                (
                    sums,
                    kb1.join().expect("kb1 validation thread panicked"),
                    kb2,
                )
            })
        } else {
            (
                arena.verify_checksums(),
                KbLayout::validate(&arena, KB1_BASE),
                KbLayout::validate(&arena, KB2_BASE),
            )
        };
        // Checksum errors take precedence: a corrupt file should report
        // as corruption, not as whatever structural symptom it caused.
        sums?;
        let (kb1, kb2) = (kb1?, kb2?);
        let alignment = AlignmentLayout::validate(&arena, &kb1, &kb2)?;
        Ok(MappedPairSnapshot {
            arena,
            kb1,
            kb2,
            alignment,
        })
    }

    /// Serializes an owned pair snapshot into v2 image bytes.
    pub fn encode(snap: &AlignedPairSnapshot) -> Vec<u8> {
        let mut w = SectionWriter::new();
        encode_kb_sections(&snap.kb1, KB1_BASE, &mut w);
        encode_kb_sections(&snap.kb2, KB2_BASE, &mut w);
        encode_alignment_sections(&snap.alignment, &mut w);
        w.finish(SnapshotKind::AlignedPair)
    }

    /// Writes an owned pair snapshot as a v2 file (atomically).
    pub fn save_v2(
        snap: &AlignedPairSnapshot,
        path: impl AsRef<Path>,
    ) -> Result<(), SnapshotError> {
        let mut w = SectionWriter::new();
        encode_kb_sections(&snap.kb1, KB1_BASE, &mut w);
        encode_kb_sections(&snap.kb2, KB2_BASE, &mut w);
        encode_alignment_sections(&snap.alignment, &mut w);
        w.write_file(SnapshotKind::AlignedPair, path)
    }

    /// View of the first KB.
    pub fn kb1(&self) -> KbView<'_> {
        self.kb1.view(&self.arena)
    }

    /// View of the second KB.
    pub fn kb2(&self) -> KbView<'_> {
        self.kb2.view(&self.arena)
    }

    /// View of the alignment tables.
    pub fn alignment(&self) -> AlignmentView<'_> {
        self.alignment.view(&self.arena)
    }

    /// True when the backing arena is an OS memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.arena.is_mapped()
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.arena.file_len()
    }

    /// Fully decodes ("hydrates") into an owned [`AlignedPairSnapshot`]
    /// — the expensive path, for deltas and v2 → v1 conversion.
    pub fn hydrate(&self) -> AlignedPairSnapshot {
        AlignedPairSnapshot {
            kb1: self.kb1().to_kb(),
            kb2: self.kb2().to_kb(),
            alignment: self.alignment().to_owned_alignment(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParisConfig;
    use crate::iteration::Aligner;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn aligned_pair_snapshot() -> AlignedPairSnapshot {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..8 {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            a.add_fact(
                format!("http://a/p{i}"),
                "http://a/livesIn",
                format!("http://a/c{}", i % 2),
            );
            a.add_type(format!("http://a/p{i}"), "http://a/Person");
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_fact(
                format!("http://b/q{i}"),
                "http://b/city",
                format!("http://b/d{}", i % 2),
            );
            b.add_type(format!("http://b/q{i}"), "http://b/Human");
        }
        let (kb1, kb2) = (a.build(), b.build());
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        AlignedPairSnapshot::new(kb1, kb2, owned)
    }

    #[test]
    fn v2_pair_answers_are_bit_identical_to_v1() {
        let snap = aligned_pair_snapshot();
        let mapped = MappedPairSnapshot::from_bytes(MappedPairSnapshot::encode(&snap)).unwrap();

        // sameas, both directions, every entity.
        for e in snap.kb1.entities() {
            assert_eq!(
                mapped.alignment().best_match(e),
                snap.alignment.best_match(e),
                "{e:?}"
            );
        }
        for e in snap.kb2.entities() {
            assert_eq!(
                mapped.alignment().best_match_rev(e),
                snap.alignment.best_match_rev(e),
                "{e:?}"
            );
        }
        // neighbors: identical order, relations, values, functionalities.
        for e in snap.kb1.entities() {
            let from_view: Vec<_> = mapped
                .kb1()
                .facts(e)
                .map(|(r, y)| {
                    (
                        mapped.kb1().relation_iri_str(r).to_owned(),
                        r.is_inverse(),
                        mapped.kb1().term(y).to_string(),
                        mapped.kb1().functionality(r),
                    )
                })
                .collect();
            let from_kb: Vec<_> = snap
                .kb1
                .facts(e)
                .iter()
                .map(|&(r, y)| {
                    (
                        snap.kb1.relation_iri(r).as_str().to_owned(),
                        r.is_inverse(),
                        snap.kb1.term(y).to_string(),
                        snap.kb1.functionality(r),
                    )
                })
                .collect();
            assert_eq!(from_view, from_kb, "{e:?}");
        }
        assert_eq!(
            mapped.alignment().num_instance_pairs(),
            snap.alignment.num_instance_pairs()
        );
        assert_eq!(
            mapped.alignment().aligned_instances(mapped.kb1()),
            snap.alignment.instance_pairs(&snap.kb1).len()
        );
        assert_eq!(mapped.alignment().converged(), snap.alignment.converged);
        assert_eq!(
            mapped.alignment().iterations().len(),
            snap.alignment.iterations.len()
        );
    }

    #[test]
    fn hydrate_round_trips_through_v2() {
        let snap = aligned_pair_snapshot();
        let mapped = MappedPairSnapshot::from_bytes(MappedPairSnapshot::encode(&snap)).unwrap();
        let back = mapped.hydrate();
        assert_eq!(back.kb1.name(), snap.kb1.name());
        assert_eq!(
            back.alignment.instance_pairs(&back.kb1),
            snap.alignment.instance_pairs(&snap.kb1)
        );
        assert_eq!(
            back.alignment.classes.one_to_two,
            snap.alignment.classes.one_to_two
        );
        assert_eq!(back.alignment.literal_pairs, snap.alignment.literal_pairs);
        // And the hydrated value re-encodes to the identical v2 image.
        assert_eq!(
            MappedPairSnapshot::encode(&back),
            MappedPairSnapshot::encode(&snap)
        );
    }

    #[test]
    fn v2_pair_file_round_trips() {
        let snap = aligned_pair_snapshot();
        let path = std::env::temp_dir().join("paris_view_unit_pair.snap");
        MappedPairSnapshot::save_v2(&snap, &path).unwrap();
        let mapped = MappedPairSnapshot::open(&path).unwrap();
        assert_eq!(mapped.kb1().name(), "left");
        assert_eq!(mapped.kb2().name(), "right");
        #[cfg(unix)]
        assert!(mapped.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_flipped_byte_in_a_pair_image_is_rejected() {
        let snap = aligned_pair_snapshot();
        let bytes = MappedPairSnapshot::encode(&snap);
        // Sampled stride keeps the test fast; the kb-level test is
        // exhaustive on a smaller image.
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x01;
            assert!(
                MappedPairSnapshot::from_bytes(corrupted).is_err(),
                "flip at byte {i} was not detected"
            );
        }
    }

    #[test]
    fn single_kb_v2_is_not_a_pair() {
        let kb = KbBuilder::new("solo").build();
        let bytes = paris_kb::snapshot_v2::kb_to_bytes_v2(&kb);
        let err = MappedPairSnapshot::from_bytes(bytes).unwrap_err();
        assert!(
            err.to_string().contains("expected an aligned-pair"),
            "{err}"
        );
    }
}
