//! Clamped literal equivalences between two KBs (paper §5.3).
//!
//! Literal-equivalence probabilities "can be set upfront (clamped)" — they
//! are inputs to the model. This module joins the literals of the two KBs
//! through the blocking keys of a
//! [`LiteralSimilarity`] and materializes
//! both directions of the sparse `Pr(ℓ ≡ ℓ′)` table once, before the
//! iteration starts.

use paris_kb::{EntityId, FxHashMap, Kb};
use paris_literals::LiteralSimilarity;

/// The pre-computed literal bridge: candidate rows in both directions.
#[derive(Clone, Debug)]
pub struct LiteralBridge {
    /// Per KB-1 entity (non-empty only for literals): KB-2 candidates.
    forward: Vec<Vec<(EntityId, f64)>>,
    /// Per KB-2 entity: KB-1 candidates.
    backward: Vec<Vec<(EntityId, f64)>>,
}

impl LiteralBridge {
    /// Joins the literals of `kb1` and `kb2` under `sim`.
    ///
    /// Complexity: O(#literals) expected — one hash of every KB-2 literal
    /// per key, then one lookup per KB-1 literal key; probabilities are
    /// only evaluated for blocked candidate pairs.
    pub fn build(kb1: &Kb, kb2: &Kb, sim: &LiteralSimilarity) -> Self {
        // Index KB-2 literals by blocking key.
        let mut by_key: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
        for l2 in kb2.literals() {
            let lit2 = kb2.literal(l2).expect("literals() yields literal entities");
            for key in sim.keys(lit2) {
                by_key.entry(key).or_default().push(l2);
            }
        }

        let mut forward: Vec<Vec<(EntityId, f64)>> = vec![Vec::new(); kb1.num_entities()];
        let mut backward: Vec<Vec<(EntityId, f64)>> = vec![Vec::new(); kb2.num_entities()];
        let mut seen: Vec<EntityId> = Vec::new();
        for l1 in kb1.literals() {
            let lit1 = kb1.literal(l1).expect("literals() yields literal entities");
            seen.clear();
            for key in sim.keys(lit1) {
                if let Some(cands) = by_key.get(&key) {
                    seen.extend_from_slice(cands);
                }
            }
            seen.sort_unstable();
            seen.dedup();
            let row = &mut forward[l1.index()];
            for &l2 in &*seen {
                let lit2 = kb2.literal(l2).expect("candidate is a literal");
                let p = sim.probability(lit1, lit2);
                if p > 0.0 {
                    row.push((l2, p));
                    backward[l2.index()].push((l1, p));
                }
            }
        }
        for row in backward.iter_mut().chain(forward.iter_mut()) {
            row.sort_unstable_by_key(|&(e, _)| e);
            row.shrink_to_fit();
        }
        LiteralBridge { forward, backward }
    }

    /// KB-2 candidates of a KB-1 entity (empty for non-literals).
    #[inline]
    pub fn candidates(&self, l1: EntityId) -> &[(EntityId, f64)] {
        &self.forward[l1.index()]
    }

    /// KB-1 candidates of a KB-2 entity.
    #[inline]
    pub fn candidates_rev(&self, l2: EntityId) -> &[(EntityId, f64)] {
        &self.backward[l2.index()]
    }

    /// Consumes the bridge into its `(forward, backward)` rows.
    pub fn into_rows(self) -> (crate::equiv::CandidateRows, crate::equiv::CandidateRows) {
        (self.forward, self.backward)
    }

    /// Number of non-zero literal pairs.
    pub fn num_pairs(&self) -> usize {
        self.forward.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn kb_with_literals(name: &str, values: &[&str]) -> Kb {
        let mut b = KbBuilder::new(name);
        for (i, v) in values.iter().enumerate() {
            b.add_literal_fact(
                format!("http://{name}/e{i}"),
                "http://x/val",
                Literal::plain(*v),
            );
        }
        b.build()
    }

    fn lit_id(kb: &Kb, value: &str) -> EntityId {
        kb.entity(&paris_rdf::Term::Literal(Literal::plain(value)))
            .unwrap()
    }

    #[test]
    fn identity_bridges_equal_strings() {
        let kb1 = kb_with_literals("a", &["alpha", "beta"]);
        let kb2 = kb_with_literals("b", &["beta", "gamma"]);
        let bridge = LiteralBridge::build(&kb1, &kb2, &LiteralSimilarity::Identity);
        assert_eq!(bridge.num_pairs(), 1);
        let beta1 = lit_id(&kb1, "beta");
        let beta2 = lit_id(&kb2, "beta");
        assert_eq!(bridge.candidates(beta1), &[(beta2, 1.0)]);
        assert_eq!(bridge.candidates_rev(beta2), &[(beta1, 1.0)]);
        assert!(bridge.candidates(lit_id(&kb1, "alpha")).is_empty());
    }

    #[test]
    fn identity_bridges_equal_numbers_across_forms() {
        let kb1 = kb_with_literals("a", &["42"]);
        let kb2 = kb_with_literals("b", &["42.0"]);
        let bridge = LiteralBridge::build(&kb1, &kb2, &LiteralSimilarity::Identity);
        assert_eq!(bridge.num_pairs(), 1);
    }

    #[test]
    fn normalized_bridges_phone_formats() {
        let kb1 = kb_with_literals("a", &["213/467-1108"]);
        let kb2 = kb_with_literals("b", &["213-467-1108"]);
        let none = LiteralBridge::build(&kb1, &kb2, &LiteralSimilarity::Identity);
        assert_eq!(none.num_pairs(), 0);
        let bridge = LiteralBridge::build(&kb1, &kb2, &LiteralSimilarity::Normalized);
        assert_eq!(bridge.num_pairs(), 1);
    }

    #[test]
    fn edit_distance_is_graded() {
        let kb1 = kb_with_literals("a", &["restaurant"]);
        let kb2 = kb_with_literals("b", &["resturant", "zebra"]);
        let bridge = LiteralBridge::build(
            &kb1,
            &kb2,
            &LiteralSimilarity::EditDistance {
                min_similarity: 0.7,
            },
        );
        let cands = bridge.candidates(lit_id(&kb1, "restaurant"));
        assert_eq!(cands.len(), 1);
        assert!(cands[0].1 > 0.7 && cands[0].1 < 1.0);
    }

    #[test]
    fn multiple_candidates_per_literal() {
        let kb1 = kb_with_literals("a", &["abc"]);
        let kb2 = kb_with_literals("b", &["ABC", "a-b-c"]);
        let bridge = LiteralBridge::build(&kb1, &kb2, &LiteralSimilarity::Normalized);
        assert_eq!(bridge.candidates(lit_id(&kb1, "abc")).len(), 2);
    }

    #[test]
    fn non_literal_entities_have_no_candidates() {
        let mut b1 = KbBuilder::new("a");
        b1.add_fact("http://a/x", "http://a/r", "http://a/y");
        let kb1 = b1.build();
        let kb2 = kb_with_literals("b", &["x"]);
        let bridge = LiteralBridge::build(&kb1, &kb2, &LiteralSimilarity::Identity);
        for e in kb1.entities() {
            assert!(bridge.candidates(e).is_empty());
        }
    }
}
