//! Incremental re-alignment on KB deltas.
//!
//! A converged PARIS run is a fixed point of the instance / sub-relation
//! equations. When the underlying KBs change by a small
//! [`KbDelta`], almost all of that fixed point
//! is still valid: only score entries whose *support sets* were touched
//! can move. This module re-runs the fixpoint **warm-started** from the
//! previous scores and **dirty-set driven** — each iteration rescores only
//! the instances and relations that could have changed, and changes
//! propagate along the dependency edges of the equations:
//!
//! * an instance row (Eq. 13) depends on the instance's own facts, the
//!   candidate rows of its neighbours, the sub-relation scores of its
//!   relations, and the target-KB adjacency around its neighbours'
//!   candidates;
//! * a sub-relation row (Eq. 12) depends on the relation's pair list and
//!   the candidate rows of those pairs' endpoints.
//!
//! The dirty seeds come straight from
//! [`AppliedDelta`]; propagation then
//! follows changed rows. Two thresholds bound the cascade (see
//! [`IncrementalOptions`]): an instance row or relation row whose scores
//! moved less than the corresponding epsilon does not re-dirty its
//! dependents. This makes incremental re-alignment an *approximation* of
//! the from-scratch run whose error is bounded by the epsilons — in
//! practice (and in the `incremental` bench's acceptance check) the
//! resulting scores agree with a full re-alignment to well within
//! alignment-decision tolerance, at a fraction of the cost.
//!
//! The top-level entry point is [`update_snapshot`], which takes a loaded
//! [`AlignedPairSnapshot`], applies deltas to either side, re-aligns
//! incrementally, and returns a new self-contained snapshot. The
//! lower-level [`realign_incremental`] works on borrowed KBs for callers
//! that manage their own storage.

use paris_kb::delta::{apply_owned, AppliedDelta, DeltaError, KbDelta};
use paris_kb::{EntityId, EntityKind, FxHashSet, Kb, RelationId};

use crate::config::ParisConfig;
use crate::instance::instance_pass_subset;
use crate::iteration::{forward_view, reverse_view, AlignmentResult, IterationStats};
use crate::literal_bridge::LiteralBridge;
use crate::owned::{AlignedPairSnapshot, OwnedAlignment};
use crate::subclass::subclass_pass;
use crate::subrel::score_relation;

/// Thresholds bounding dirty-set propagation.
#[derive(Clone, Debug)]
pub struct IncrementalOptions {
    /// An instance row whose candidate probabilities all moved by less
    /// than this does not re-dirty its neighbours (the refreshed row is
    /// still stored). Eq. 13's evidence factors attenuate a neighbour's
    /// score change, so ripples decay geometrically with distance from
    /// the delta — this threshold is where the ripple is declared dead.
    /// It must also absorb the sub-convergence drift a "converged" run's
    /// scores still carry, or every rescoring would fan out to its whole
    /// neighbourhood.
    pub instance_epsilon: f64,
    /// A sub-relation row whose scores all moved by less than this does
    /// not re-dirty the instances using the relation. Relation scores
    /// aggregate over *all* pairs of a relation, so a delta of a few
    /// percent of the facts legitimately shifts every relation's score by
    /// a comparable few percent; re-dirtying every user of every
    /// slightly-shifted relation would cascade to a full recompute for a
    /// score difference bounded by this epsilon. Only a *semantic* shift
    /// (a relation whose meaning changed) exceeds it.
    pub relation_epsilon: f64,
}

impl Default for IncrementalOptions {
    fn default() -> Self {
        IncrementalOptions {
            instance_epsilon: 0.01,
            relation_epsilon: 0.05,
        }
    }
}

/// What the incremental run actually did, for reporting and benches.
#[derive(Clone, Debug, Default)]
pub struct IncrementalReport {
    /// Instances in the initial dirty set.
    pub seeded_instances: usize,
    /// Instance rows rescored, summed over all iterations.
    pub rescored_rows: usize,
    /// Sub-relation rows rescored, summed over all iterations.
    pub rescored_relation_rows: usize,
    /// Total KB-1 instances (for context: a full run rescores all of them
    /// every iteration).
    pub total_instances: usize,
}

/// Dirty seeds for [`realign_incremental`], normally taken from the
/// [`AppliedDelta`]s of the two sides.
#[derive(Clone, Debug, Default)]
pub struct DirtySeeds {
    /// Touched KB-1 entities.
    pub entities1: Vec<EntityId>,
    /// Touched KB-1 base relations (forward ids).
    pub relations1: Vec<RelationId>,
    /// Touched KB-2 entities.
    pub entities2: Vec<EntityId>,
    /// Touched KB-2 entities whose *resource* adjacency changed (see
    /// [`AppliedDelta::resource_touched`]): the only KB-2 instances whose
    /// changes can alter a KB-1 row through Eq. 13's candidate walk.
    pub resource_entities2: Vec<EntityId>,
    /// Touched KB-2 base relations (forward ids).
    pub relations2: Vec<RelationId>,
}

impl DirtySeeds {
    /// Seeds from the applied deltas of either side (pass `None` for an
    /// unchanged side).
    pub fn from_applied(
        applied1: Option<&AppliedDelta>,
        applied2: Option<&AppliedDelta>,
    ) -> DirtySeeds {
        let mut seeds = DirtySeeds::default();
        if let Some(a) = applied1 {
            seeds.entities1 = a.touched_entities.clone();
            seeds.relations1 = a.touched_relations.clone();
        }
        if let Some(a) = applied2 {
            seeds.entities2 = a.touched_entities.clone();
            seeds.resource_entities2 = a.resource_touched.clone();
            seeds.relations2 = a.touched_relations.clone();
        }
        seeds
    }
}

/// An incremental run: the full result plus the work accounting.
pub struct IncrementalRun<'a> {
    /// The re-aligned result (same shape as a full [`Aligner`] run).
    ///
    /// [`Aligner`]: crate::Aligner
    pub result: AlignmentResult<'a>,
    /// What was actually recomputed.
    pub report: IncrementalReport,
}

/// Re-aligns two (already delta-updated) KBs, warm-started from the
/// previous alignment and rescoring only dirty score entries.
///
/// `previous` must have been computed for KBs whose entity/relation ids
/// are a prefix of `kb1`/`kb2`'s — which is exactly what
/// [`apply`](paris_kb::delta::apply) guarantees. The progressive-damping
/// setting of `config` is ignored (the warm start plays that role).
pub fn realign_incremental<'a>(
    kb1: &'a Kb,
    kb2: &'a Kb,
    previous: &OwnedAlignment,
    seeds: &DirtySeeds,
    config: &ParisConfig,
    options: &IncrementalOptions,
) -> IncrementalRun<'a> {
    realign_incremental_traced(
        kb1,
        kb2,
        previous,
        seeds,
        config,
        options,
        &paris_obs::trace::NullSink,
    )
}

/// [`realign_incremental`] with a per-iteration trace: one
/// [`AlignEvent`](paris_obs::trace::AlignEvent) per settling iteration,
/// carrying the dirty-set size, the assignment churn, and the largest
/// per-row score movement — the signals that explain *why* an
/// incremental run settled (or kept rippling).
#[allow(clippy::too_many_arguments)]
pub fn realign_incremental_traced<'a>(
    kb1: &'a Kb,
    kb2: &'a Kb,
    previous: &OwnedAlignment,
    seeds: &DirtySeeds,
    config: &ParisConfig,
    options: &IncrementalOptions,
    sink: &dyn paris_obs::trace::TraceSink,
) -> IncrementalRun<'a> {
    let bridge = LiteralBridge::build(kb1, kb2, &config.literal_similarity);
    let literal_pairs = bridge.num_pairs();
    let mut equiv = previous
        .instances
        .expanded(kb1.num_entities(), kb2.num_entities());
    let mut subrel = previous
        .subrelations
        .expanded(kb1.num_directed_relations(), kb2.num_directed_relations());
    let informed = !subrel.is_bootstrap();

    // ---- seed the dirty sets from the delta's touched ids --------------
    // Eq. 13 reads, for a KB-1 instance x: x's own fact list, the
    // candidate rows of x's neighbours, the sub-relation scores, and the
    // KB-2 adjacency around the neighbours' candidates. So:
    //
    // * a touched KB-1 entity dirties only *itself* — neighbours see it
    //   exclusively through its candidate row, which propagation
    //   re-dirties once that row actually changes;
    // * a touched KB-2 *literal* dirties the KB-1 entities bridged to it
    //   and their neighbours (the bridge row is part of the candidate
    //   view);
    // * a KB-2 instance whose *resource* adjacency changed dirties the
    //   KB-1 entities holding it as a candidate and their neighbours
    //   (their products walk its changed adjacency). Literal-attribute
    //   changes on a KB-2 instance cannot alter any KB-1 row directly —
    //   Eq. 13 skips non-instance candidates — so they seed nothing here.
    let mut dirty_instances: FxHashSet<EntityId> = FxHashSet::default();
    let seed_entity = |e: EntityId, dirty: &mut FxHashSet<EntityId>| {
        if kb1.kind(e) == EntityKind::Instance {
            dirty.insert(e);
        }
        for &(_, y) in kb1.facts(e) {
            if kb1.kind(y) == EntityKind::Instance {
                dirty.insert(y);
            }
        }
    };
    for &e in &seeds.entities1 {
        if kb1.kind(e) == EntityKind::Instance {
            dirty_instances.insert(e);
        }
    }
    for &z in &seeds.entities2 {
        if kb2.kind(z) == EntityKind::Literal {
            for &(y1, _) in bridge.candidates_rev(z) {
                seed_entity(y1, &mut dirty_instances);
            }
        }
    }
    for &z in &seeds.resource_entities2 {
        for &(y1, _) in equiv.candidates_rev(z) {
            seed_entity(y1, &mut dirty_instances);
        }
    }

    // Relations whose pair lists changed, in both directions — plus, for a
    // touched entity on either side, the relations around it and around
    // its cross-KB candidates (their Eq. 12 numerators walk the touched
    // adjacency).
    let mut dirty_rel1: FxHashSet<RelationId> = FxHashSet::default();
    let mut dirty_rel2: FxHashSet<RelationId> = FxHashSet::default();
    for &r in &seeds.relations1 {
        dirty_rel1.insert(r);
        dirty_rel1.insert(r.inverse());
    }
    for &r in &seeds.relations2 {
        dirty_rel2.insert(r);
        dirty_rel2.insert(r.inverse());
    }
    // A relation's Eq. 12 row also walks the *destination* KB's adjacency
    // around its pairs' candidates, so a touched entity dirties the
    // opposite side's relations around its cross-KB candidates — again
    // proportionally (see `dirty_by_ratio`). Its own side's relations are
    // dirty only if their pair lists changed (exactly `seeds.relations*`)
    // or once candidate rows move, which the in-loop extension covers.
    let cross2 = seeds
        .entities1
        .iter()
        .flat_map(|&e| equiv.candidates(e).iter().chain(bridge.candidates(e)))
        .map(|&(z, _)| (z, 1.0));
    dirty_by_ratio(kb2, cross2, options.relation_epsilon, &mut dirty_rel2);
    let cross1 = seeds
        .entities2
        .iter()
        .flat_map(|&z| {
            equiv
                .candidates_rev(z)
                .iter()
                .chain(bridge.candidates_rev(z))
        })
        .map(|&(y1, _)| (y1, 1.0));
    dirty_by_ratio(kb1, cross1, options.relation_epsilon, &mut dirty_rel1);

    let mut report = IncrementalReport {
        seeded_instances: dirty_instances.len(),
        total_instances: kb1.instances().count(),
        ..IncrementalReport::default()
    };

    // ---- the warm fixpoint loop ----------------------------------------
    // One forward candidate view is carried across iterations and rebuilt
    // only when equalities actually moved; the reverse view (for the KB-2
    // sub-relation direction) is built only in iterations that rescore a
    // KB-2 relation; the assigned-instance count and assignment-change
    // count are maintained from the changed rows alone. This keeps a
    // settling iteration at O(dirty), not O(KB).
    let mut iterations: Vec<IterationStats> = Vec::new();
    let mut cand = forward_view(kb1, &equiv, &bridge, config, informed);
    let mut assigned = equiv
        .maximal_assignment()
        .iter()
        .filter(|a| a.is_some())
        .count();
    for iteration in 1..=config.max_iterations {
        if dirty_instances.is_empty() && dirty_rel1.is_empty() && dirty_rel2.is_empty() {
            break;
        }

        // Instance pass over the dirty set only.
        let t0 = paris_obs::span::now_ns();
        let mut subset: Vec<EntityId> = dirty_instances.iter().copied().collect();
        subset.sort_unstable();
        let partial = instance_pass_subset(kb1, kb2, &subset, &cand, &subrel, config);
        report.rescored_rows += partial.len();

        // Keep only materially changed rows: a sub-epsilon move keeps the
        // stored score (the error is bounded by `instance_epsilon`), and
        // a change-free pass then skips the store and view rebuilds
        // entirely. Each change is remembered with its magnitude — the
        // relation-dirtying bound below weighs by it.
        let mut changed_rows: Vec<(EntityId, Vec<(EntityId, f64)>)> = Vec::new();
        let mut deltas1: Vec<(EntityId, f64)> = Vec::new();
        let mut changed2: paris_kb::FxHashMap<EntityId, f64> = paris_kb::FxHashMap::default();
        let mut changed = 0usize;
        for (x, row) in partial {
            let old = equiv.candidates(x);
            let delta = row_delta(old, &row);
            if delta >= options.instance_epsilon {
                for &(z, _) in old.iter().chain(&row) {
                    let w = changed2.entry(z).or_insert(0.0);
                    *w = w.max(delta);
                }
                if best_target(old) != best_target(&row) {
                    changed += 1;
                }
                match (old.is_empty(), row.is_empty()) {
                    (true, false) => assigned += 1,
                    (false, true) => assigned -= 1,
                    _ => {}
                }
                deltas1.push((x, delta));
                changed_rows.push((x, row));
            }
        }
        let changed1: Vec<EntityId> = changed_rows.iter().map(|&(x, _)| x).collect();
        if !changed_rows.is_empty() {
            equiv.replace_rows(changed_rows);
            cand = forward_view(kb1, &equiv, &bridge, config, informed);
        }
        let instance_seconds = paris_obs::span::seconds_since(t0);

        // Sub-relation passes over the dirty relations only, with the
        // fresh equalities — mirroring the full loop's ordering. Changed
        // candidate rows dirty the relations incident to them first —
        // *proportionally*: Eq. 12 averages over a relation's pairs, so
        // endpoints whose rows moved by Σδ can shift the score by at most
        // ~Σδ / #pairs; below `relation_epsilon` the rescoring could not
        // produce a material change and is skipped.
        let t1 = paris_obs::span::now_ns();
        dirty_by_ratio(
            kb1,
            deltas1.iter().copied(),
            options.relation_epsilon,
            &mut dirty_rel1,
        );
        dirty_by_ratio(
            kb2,
            changed2.iter().map(|(&z, &w)| (z, w)),
            options.relation_epsilon,
            &mut dirty_rel2,
        );
        let mut changed_rel1: Vec<RelationId> = Vec::new();
        let mut changed_rel2: Vec<RelationId> = Vec::new();
        for &r in &dirty_rel1 {
            let row = score_relation(kb1, kb2, &cand, config, r);
            if !rows_close(subrel.row_1to2(r), &row, options.relation_epsilon) {
                changed_rel1.push(r);
            }
            subrel.set_row_1to2(r, row);
        }
        if !dirty_rel2.is_empty() {
            let cand_rev = reverse_view(kb2, &equiv, &bridge, config, informed);
            for &r2 in &dirty_rel2 {
                let row = score_relation(kb2, kb1, &cand_rev, config, r2);
                if !rows_close(subrel.row_2to1(r2), &row, options.relation_epsilon) {
                    changed_rel2.push(r2);
                }
                subrel.set_row_2to1(r2, row);
            }
        }
        report.rescored_relation_rows += dirty_rel1.len() + dirty_rel2.len();
        let subrelation_seconds = paris_obs::span::seconds_since(t1);

        let stats = IterationStats {
            iteration,
            changed,
            changed_fraction: changed as f64 / assigned.max(1) as f64,
            instance_equivalences: equiv.num_pairs(),
            assigned_instances: assigned,
            subrelation_entries: subrel.num_entries(),
            instance_seconds,
            subrelation_seconds,
        };
        // The full loop's convergence criterion, applicable from the very
        // first iteration here because the warm start is already informed:
        // stop once the maximal assignment is stable and no relation row
        // moved materially. (A converged snapshot's scores are one iterate
        // short of an *exact* fixpoint — the full run stops on assignment
        // stability too — so sub-threshold drift must not keep the dirty
        // set alive.)
        let settled = stats.changed_fraction < config.convergence_change
            && changed_rel1.is_empty()
            && changed_rel2.is_empty();
        sink.event(&paris_obs::trace::AlignEvent {
            phase: "incremental",
            iteration,
            dirty: subset.len(),
            churn: stats.changed,
            max_delta: deltas1.iter().map(|&(_, d)| d).fold(0.0f64, f64::max),
            elapsed_secs: stats.instance_seconds + stats.subrelation_seconds,
        });
        iterations.push(stats);
        if settled {
            break;
        }

        // ---- next iteration's dirty sets --------------------------------
        // Materially changed instance rows dirty their KB-1 neighbours;
        // materially changed relation rows dirty the instances whose
        // Eq. 13 products consume them (their pairs' endpoints, and the
        // KB-1 entities candidate-linked to a changed KB-2 relation's
        // endpoints).
        dirty_instances.clear();
        dirty_rel1.clear();
        dirty_rel2.clear();
        for &e in &changed1 {
            for &(_, y) in kb1.facts(e) {
                if kb1.kind(y) == EntityKind::Instance {
                    dirty_instances.insert(y);
                }
            }
        }
        for &r in &changed_rel1 {
            for (x, y) in kb1.pairs(r).take(config.max_pairs) {
                if kb1.kind(x) == EntityKind::Instance {
                    dirty_instances.insert(x);
                }
                if kb1.kind(y) == EntityKind::Instance {
                    dirty_instances.insert(y);
                }
            }
        }
        for &r2 in &changed_rel2 {
            for (x2, y2) in kb2.pairs(r2).take(config.max_pairs) {
                for z in [x2, y2] {
                    for &(y1, _) in equiv
                        .candidates_rev(z)
                        .iter()
                        .chain(bridge.candidates_rev(z))
                    {
                        seed_entity(y1, &mut dirty_instances);
                    }
                }
            }
        }
    }

    // ---- final class pass (same as the full loop's last step) -----------
    let t2 = paris_obs::span::now_ns();
    let classes = subclass_pass(kb1, kb2, &equiv, config);
    let class_seconds = paris_obs::span::seconds_since(t2);

    IncrementalRun {
        result: AlignmentResult {
            kb1,
            kb2,
            instances: equiv,
            subrelations: subrel,
            classes,
            iterations,
            literal_pairs,
            class_seconds,
            convergence_change_used: config.convergence_change,
            config: config.clone(),
        },
        report,
    }
}

/// True when two sorted candidate rows have the same keys and every
/// probability moved by less than `epsilon`.
fn rows_close<K: Copy + Eq>(a: &[(K, f64)], b: &[(K, f64)], epsilon: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&(ka, pa), &(kb, pb))| ka == kb && (pa - pb).abs() < epsilon)
}

/// Marks the relations around the given weighted endpoints dirty — but
/// only when the accumulated weight could move the relation's Eq. 12
/// score materially. The score averages over the relation's pairs, so
/// endpoints whose candidate rows moved by `δ` each shift it by at most
/// `~Σδ / #pairs`; relations with `Σδ / #pairs < epsilon` are skipped
/// (their rescoring could not clear the material-change threshold
/// anyway). Adjacency-level changes carry full weight `1.0`.
fn dirty_by_ratio(
    kb: &Kb,
    endpoints: impl Iterator<Item = (EntityId, f64)>,
    epsilon: f64,
    dirty: &mut paris_kb::FxHashSet<RelationId>,
) {
    let mut weights: paris_kb::FxHashMap<RelationId, f64> = paris_kb::FxHashMap::default();
    for (e, w) in endpoints {
        for &(r, _) in kb.facts(e) {
            *weights
                .entry(if r.is_inverse() { r.inverse() } else { r })
                .or_insert(0.0) += w;
        }
    }
    for (r, w) in weights {
        if w >= epsilon * kb.num_pairs(r) as f64 {
            dirty.insert(r);
            dirty.insert(r.inverse());
        }
    }
}

/// Largest per-candidate probability move between two sorted rows (a
/// candidate present on only one side contributes its full probability).
fn row_delta(a: &[(EntityId, f64)], b: &[(EntityId, f64)]) -> f64 {
    let (mut i, mut j, mut delta) = (0usize, 0usize, 0.0f64);
    loop {
        match (a.get(i), b.get(j)) {
            (Some(&(ea, pa)), Some(&(eb, pb))) => {
                if ea == eb {
                    delta = delta.max((pa - pb).abs());
                    i += 1;
                    j += 1;
                } else if ea < eb {
                    delta = delta.max(pa);
                    i += 1;
                } else {
                    delta = delta.max(pb);
                    j += 1;
                }
            }
            (Some(&(_, pa)), None) => {
                delta = delta.max(pa);
                i += 1;
            }
            (None, Some(&(_, pb))) => {
                delta = delta.max(pb);
                j += 1;
            }
            (None, None) => return delta,
        }
    }
}

/// The maximal-assignment target of one candidate row (highest
/// probability; ties break toward the smallest id, matching
/// [`EquivStore::maximal_assignment`]).
fn best_target(row: &[(EntityId, f64)]) -> Option<EntityId> {
    let mut best: Option<(EntityId, f64)> = None;
    for &(e, p) in row {
        match best {
            Some((_, bp)) if p <= bp => {}
            _ => best = Some((e, p)),
        }
    }
    best.map(|(e, _)| e)
}

/// Report of one [`update_snapshot`] call.
#[derive(Clone, Debug, Default)]
pub struct UpdateReport {
    /// Facts actually added / removed on the KB-1 side.
    pub added1: usize,
    /// Facts actually removed on the KB-1 side.
    pub removed1: usize,
    /// Facts actually added on the KB-2 side.
    pub added2: usize,
    /// Facts actually removed on the KB-2 side.
    pub removed2: usize,
    /// Fixpoint iterations the warm restart needed.
    pub iterations: usize,
    /// Whether the warm fixpoint settled before the iteration cap.
    pub converged: bool,
    /// Work accounting of the incremental run.
    pub incremental: IncrementalReport,
}

/// Applies deltas to either side of a loaded aligned-pair snapshot,
/// re-aligns incrementally, and returns the updated snapshot (ready to
/// [`save`](AlignedPairSnapshot::save) and hot-reload into a server).
///
/// Functionality refresh of touched relations uses the paper's default
/// harmonic-mean definition. KBs built with another Appendix-A variant
/// (the ablation path via
/// [`Kb::set_functionality_variant`](paris_kb::Kb::set_functionality_variant))
/// are not supported here — apply the delta with
/// [`apply_owned_with_functionality`](paris_kb::delta::apply_owned_with_functionality)
/// and call [`realign_incremental`] directly instead; the snapshot format
/// does not record which variant produced the stored values.
pub fn update_snapshot(
    snapshot: AlignedPairSnapshot,
    delta1: Option<&KbDelta>,
    delta2: Option<&KbDelta>,
    config: &ParisConfig,
    options: &IncrementalOptions,
) -> Result<(AlignedPairSnapshot, UpdateReport), DeltaError> {
    let AlignedPairSnapshot {
        kb1,
        kb2,
        alignment,
    } = snapshot;

    // The snapshot's KBs are owned, so deltas apply in place — no clone.
    let mut report = UpdateReport::default();
    let mut seeds = DirtySeeds::default();
    let kb1 = match delta1 {
        Some(d) => {
            let applied = apply_owned(kb1, d)?;
            report.added1 = applied.added;
            report.removed1 = applied.removed;
            seeds.entities1 = applied.touched_entities;
            seeds.relations1 = applied.touched_relations;
            applied.kb
        }
        None => kb1,
    };
    let kb2 = match delta2 {
        Some(d) => {
            let applied = apply_owned(kb2, d)?;
            report.added2 = applied.added;
            report.removed2 = applied.removed;
            seeds.entities2 = applied.touched_entities;
            seeds.resource_entities2 = applied.resource_touched;
            seeds.relations2 = applied.touched_relations;
            applied.kb
        }
        None => kb2,
    };

    let run = realign_incremental(&kb1, &kb2, &alignment, &seeds, config, options);
    report.iterations = run.result.iterations.len();
    report.converged = report.iterations < config.max_iterations;
    report.incremental = run.report.clone();
    let mut owned = run.result.detach();
    drop(run);
    // `AlignmentResult::converged()` needs > 1 iterations (a cold run's
    // first iteration is the bootstrap), but a warm restart legitimately
    // settles in 0 or 1 — persist the warm-start notion of convergence so
    // `/stats` does not report a fully settled update as unconverged.
    owned.converged = report.converged;

    Ok((AlignedPairSnapshot::new(kb1, kb2, owned), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iteration::Aligner;
    use paris_kb::delta::apply;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    /// A pair with aligned people, shared e-mails, and a friendship ring.
    fn ring_pair(n: usize) -> (Kb, Kb) {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..n {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            a.add_fact(
                format!("http://a/p{i}"),
                "http://a/friend",
                format!("http://a/p{}", (i + 1) % n),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_fact(
                format!("http://b/q{i}"),
                "http://b/knows",
                format!("http://b/q{}", (i + 1) % n),
            );
        }
        (a.build(), b.build())
    }

    fn aligned_snapshot(kb1: Kb, kb2: Kb, config: &ParisConfig) -> AlignedPairSnapshot {
        let owned = {
            let result = Aligner::new(&kb1, &kb2, config.clone()).run();
            OwnedAlignment::from_result(&result)
        };
        AlignedPairSnapshot::new(kb1, kb2, owned)
    }

    /// Incremental re-alignment after a delta must agree with a full
    /// from-scratch run on the updated KBs.
    #[test]
    fn incremental_matches_full_realignment() {
        let config = ParisConfig::default().with_threads(1);
        let (kb1, kb2) = ring_pair(12);
        let snap = aligned_snapshot(kb1, kb2, &config);

        // A small delta on the left side: one new person (with matching
        // e-mail on the right via a right-side delta) and one removed
        // friendship edge.
        let mut d1 = KbDelta::new("left");
        d1.add_literal_fact(
            "http://a/p12",
            "http://a/email",
            Literal::plain("p12@x.org"),
        );
        d1.add_fact("http://a/p12", "http://a/friend", "http://a/p0");
        d1.remove_fact("http://a/p3", "http://a/friend", "http://a/p4");
        let mut d2 = KbDelta::new("right");
        d2.add_literal_fact("http://b/q12", "http://b/mail", Literal::plain("p12@x.org"));
        d2.add_fact("http://b/q12", "http://b/knows", "http://b/q0");

        let (updated, report) = update_snapshot(
            snap,
            Some(&d1),
            Some(&d2),
            &config,
            &IncrementalOptions::default(),
        )
        .unwrap();
        assert_eq!(report.added1, 2);
        assert_eq!(report.removed1, 1);
        assert!(report.converged, "warm restart must settle: {report:?}");

        // Full from-scratch run on equivalent KBs.
        let (mut kb1_full, mut kb2_full) = ring_pair(12);
        let mut d1_full = KbDelta::new("left");
        d1_full.add_literal_fact(
            "http://a/p12",
            "http://a/email",
            Literal::plain("p12@x.org"),
        );
        d1_full.add_fact("http://a/p12", "http://a/friend", "http://a/p0");
        d1_full.remove_fact("http://a/p3", "http://a/friend", "http://a/p4");
        kb1_full = apply(&kb1_full, &d1_full).unwrap().kb;
        let mut d2_full = KbDelta::new("right");
        d2_full.add_literal_fact("http://b/q12", "http://b/mail", Literal::plain("p12@x.org"));
        d2_full.add_fact("http://b/q12", "http://b/knows", "http://b/q0");
        kb2_full = apply(&kb2_full, &d2_full).unwrap().kb;
        let full = Aligner::new(&kb1_full, &kb2_full, config.clone()).run();

        // Same maximal assignment, scores within tolerance.
        let incr_pairs = updated.alignment.instance_pairs(&updated.kb1);
        let full_pairs = full.instance_pairs();
        let full_map: std::collections::HashMap<EntityId, (EntityId, f64)> =
            full_pairs.iter().map(|&(x, x2, p)| (x, (x2, p))).collect();
        assert_eq!(incr_pairs.len(), full_pairs.len());
        for (x, x2, p) in incr_pairs {
            let &(fx2, fp) = full_map.get(&x).expect("instance aligned in full run");
            assert_eq!(x2, fx2, "assignment of {x:?} differs");
            assert!(
                (p - fp).abs() < 0.05,
                "score of {x:?}: incremental {p} vs full {fp}"
            );
        }
        // The new person is aligned.
        assert_eq!(
            updated
                .alignment
                .instance_alignment_by_iri(&updated.kb1, &updated.kb2, "http://a/p12")
                .unwrap()
                .as_str(),
            "http://b/q12"
        );
    }

    /// An empty delta is a fixed point: nothing is rescored, nothing moves.
    #[test]
    fn empty_delta_is_noop() {
        let config = ParisConfig::default().with_threads(1);
        let (kb1, kb2) = ring_pair(8);
        let snap = aligned_snapshot(kb1, kb2, &config);
        let before = snap.alignment.instance_pairs(&snap.kb1);
        let empty = KbDelta::new("left");
        let (updated, report) = update_snapshot(
            snap,
            Some(&empty),
            None,
            &config,
            &IncrementalOptions::default(),
        )
        .unwrap();
        assert_eq!(report.incremental.seeded_instances, 0);
        assert_eq!(report.incremental.rescored_rows, 0);
        assert_eq!(report.iterations, 0);
        assert_eq!(updated.alignment.instance_pairs(&updated.kb1), before);
    }

    /// Removing the only evidence for a match must drop the alignment.
    #[test]
    fn removal_drops_the_alignment() {
        let config = ParisConfig::default().with_threads(1);
        let (kb1, kb2) = ring_pair(6);
        let snap = aligned_snapshot(kb1, kb2, &config);
        assert!(snap
            .alignment
            .instance_alignment_by_iri(&snap.kb1, &snap.kb2, "http://a/p2")
            .is_some());

        let mut d1 = KbDelta::new("left");
        d1.remove_literal_fact("http://a/p2", "http://a/email", Literal::plain("p2@x.org"));
        d1.remove_fact("http://a/p1", "http://a/friend", "http://a/p2");
        d1.remove_fact("http://a/p2", "http://a/friend", "http://a/p3");
        let (updated, _) = update_snapshot(
            snap,
            Some(&d1),
            None,
            &config,
            &IncrementalOptions::default(),
        )
        .unwrap();
        assert_eq!(
            updated
                .alignment
                .instance_alignment_by_iri(&updated.kb1, &updated.kb2, "http://a/p2"),
            None,
            "p2 lost every piece of evidence"
        );
    }

    /// The updated snapshot round-trips through the binary format.
    #[test]
    fn updated_snapshot_round_trips() {
        let config = ParisConfig::default().with_threads(1);
        let (kb1, kb2) = ring_pair(6);
        let snap = aligned_snapshot(kb1, kb2, &config);
        let mut d1 = KbDelta::new("left");
        d1.add_literal_fact("http://a/p6", "http://a/email", Literal::plain("p0@x.org"));
        let (updated, _) = update_snapshot(
            snap,
            Some(&d1),
            None,
            &config,
            &IncrementalOptions::default(),
        )
        .unwrap();
        let path = std::env::temp_dir().join("paris_incremental_roundtrip.snap");
        updated.save(&path).unwrap();
        let loaded = AlignedPairSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            loaded.alignment.instance_pairs(&loaded.kb1),
            updated.alignment.instance_pairs(&updated.kb1)
        );
    }
}
