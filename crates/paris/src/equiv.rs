//! Sparse storage of instance-equivalence probabilities.
//!
//! §5.2 of the paper: the model distinguishes *true* equivalences
//! (`Pr > 0`), *false* ones (`Pr = 0`), and *unknown* ones (never
//! computed) — and since every equation consumes probabilities through
//! `∏ (1 − P)`, unknown and false coincide, so zeros are simply not
//! stored. Each KB-1 entity holds a short sorted row of
//! `(KB-2 entity, probability)` candidates.

use paris_kb::{EntityId, FxHashMap};

/// One candidate row per source entity: `(target entity, probability)`
/// pairs, sorted by entity id. The common currency between the passes.
pub type CandidateRows = Vec<Vec<(EntityId, f64)>>;

/// A sparse `Pr(x ≡ x′)` matrix between the entities of two KBs.
#[derive(Clone, Debug, Default)]
pub struct EquivStore {
    /// Row per KB-1 entity: candidates in KB-2, sorted by entity id.
    forward: Vec<Vec<(EntityId, f64)>>,
    /// Row per KB-2 entity: candidates in KB-1, derived from `forward`.
    backward: Vec<Vec<(EntityId, f64)>>,
}

impl EquivStore {
    /// An empty store sized for `n1` KB-1 entities and `n2` KB-2 entities.
    pub fn new(n1: usize, n2: usize) -> Self {
        EquivStore {
            forward: vec![Vec::new(); n1],
            backward: vec![Vec::new(); n2],
        }
    }

    /// Builds a store from per-KB-1-entity rows, deriving the backward
    /// index. Rows need not be sorted; zero and sub-threshold entries
    /// should already have been dropped by the caller.
    pub fn from_rows(rows: Vec<Vec<(EntityId, f64)>>, n2: usize) -> Self {
        let mut forward = rows;
        let mut backward: Vec<Vec<(EntityId, f64)>> = vec![Vec::new(); n2];
        for (i, row) in forward.iter_mut().enumerate() {
            row.sort_unstable_by_key(|&(e, _)| e);
            let x1 = EntityId::from_index(i);
            for &(x2, p) in row.iter() {
                backward[x2.index()].push((x1, p));
            }
        }
        for row in &mut backward {
            row.sort_unstable_by_key(|&(e, _)| e);
        }
        EquivStore { forward, backward }
    }

    /// A copy of this store covering `n1 × n2` entities (entities beyond
    /// the old bounds start with no candidates). This is how the
    /// incremental re-aligner warm-starts from a snapshot's scores after a
    /// delta appended entities.
    pub fn expanded(&self, n1: usize, n2: usize) -> EquivStore {
        assert!(
            n1 >= self.forward.len() && n2 >= self.backward.len(),
            "expanded() cannot shrink a store ({}×{} → {n1}×{n2})",
            self.forward.len(),
            self.backward.len(),
        );
        let mut forward = self.forward.clone();
        forward.resize(n1, Vec::new());
        let mut backward = self.backward.clone();
        backward.resize(n2, Vec::new());
        EquivStore { forward, backward }
    }

    /// A copy of all forward rows (one per KB-1 entity), the format
    /// [`from_rows`](Self::from_rows) consumes.
    pub fn to_rows(&self) -> CandidateRows {
        self.forward.clone()
    }

    /// Replaces the rows of the given KB-1 entities in place, maintaining
    /// the backward index — O(changed rows × row length) instead of the
    /// full-store rebuild of [`from_rows`](Self::from_rows). Rows need
    /// not be sorted. This is what keeps an incremental re-alignment
    /// iteration at O(dirty) when only a handful of rows moved.
    pub fn replace_rows(
        &mut self,
        changes: impl IntoIterator<Item = (EntityId, Vec<(EntityId, f64)>)>,
    ) {
        for (x, mut row) in changes {
            row.sort_unstable_by_key(|&(e, _)| e);
            let old = std::mem::replace(&mut self.forward[x.index()], row);
            for (z, _) in old {
                let back = &mut self.backward[z.index()];
                if let Ok(pos) = back.binary_search_by_key(&x, |&(e, _)| e) {
                    back.remove(pos);
                }
            }
            for &(z, p) in &self.forward[x.index()] {
                let back = &mut self.backward[z.index()];
                match back.binary_search_by_key(&x, |&(e, _)| e) {
                    Ok(pos) => back[pos].1 = p,
                    Err(pos) => back.insert(pos, (x, p)),
                }
            }
        }
    }

    /// The number of KB-1 rows.
    pub fn len_kb1(&self) -> usize {
        self.forward.len()
    }

    /// The number of KB-2 rows.
    pub fn len_kb2(&self) -> usize {
        self.backward.len()
    }

    /// Candidates of a KB-1 entity, sorted by KB-2 entity id.
    #[inline]
    pub fn candidates(&self, x: EntityId) -> &[(EntityId, f64)] {
        &self.forward[x.index()]
    }

    /// Candidates of a KB-2 entity, sorted by KB-1 entity id.
    #[inline]
    pub fn candidates_rev(&self, x2: EntityId) -> &[(EntityId, f64)] {
        &self.backward[x2.index()]
    }

    /// `Pr(x ≡ x′)`, zero if unknown.
    pub fn prob(&self, x: EntityId, x2: EntityId) -> f64 {
        match self.forward[x.index()].binary_search_by_key(&x2, |&(e, _)| e) {
            Ok(i) => self.forward[x.index()][i].1,
            Err(_) => 0.0,
        }
    }

    /// Total number of stored (non-zero) equivalences.
    pub fn num_pairs(&self) -> usize {
        self.forward.iter().map(Vec::len).sum()
    }

    /// The maximal assignment (§4.2): for each KB-1 entity, the KB-2
    /// candidate with the maximum score. Ties break toward the smallest
    /// entity id, making runs deterministic.
    pub fn maximal_assignment(&self) -> Vec<Option<(EntityId, f64)>> {
        self.forward.iter().map(|row| best_of(row)).collect()
    }

    /// The maximal assignment in the KB-2 → KB-1 direction.
    pub fn maximal_assignment_rev(&self) -> Vec<Option<(EntityId, f64)>> {
        self.backward.iter().map(|row| best_of(row)).collect()
    }

    /// Counts how many KB-1 entities have a different maximal assignment
    /// in `other`, plus entities assigned in exactly one of the two.
    ///
    /// This is the paper's convergence measure: iterate "until the entity
    /// pairs under the maximal assignments change no more" (§5.1).
    pub fn assignment_changes(&self, other: &EquivStore) -> usize {
        assert_eq!(
            self.len_kb1(),
            other.len_kb1(),
            "stores must cover the same KB"
        );
        self.forward
            .iter()
            .zip(&other.forward)
            .filter(|(a, b)| best_of(a).map(|(e, _)| e) != best_of(b).map(|(e, _)| e))
            .count()
    }
}

fn best_of(row: &[(EntityId, f64)]) -> Option<(EntityId, f64)> {
    let mut best: Option<(EntityId, f64)> = None;
    for &(e, p) in row {
        match best {
            // Strict `>` keeps the smallest id on ties (rows are sorted).
            Some((_, bp)) if p <= bp => {}
            _ => best = Some((e, p)),
        }
    }
    best
}

/// A per-pass, read-only view of "which KB-2 entities may `y` equal, with
/// what probability" — the previous iteration's equalities (§5.2: "our
/// algorithm considers only the equalities of the previous maximal
/// assignment"), merged with the clamped literal equivalences.
#[derive(Clone, Debug, Default)]
pub struct CandidateView {
    rows: Vec<Vec<(EntityId, f64)>>,
    informed: bool,
}

impl CandidateView {
    /// Builds the view for one direction.
    ///
    /// The rows combine the previous iteration's [`EquivStore`] (already
    /// reduced to the maximal assignment unless
    /// `propagate_all_equalities` is set) with the clamped literal bridge
    /// (never reduced: a literal may legitimately equal several literals
    /// on the other side). A view built this way is *informed*: its
    /// probabilities reflect computed sub-relation scores.
    pub fn new(rows: Vec<Vec<(EntityId, f64)>>) -> Self {
        CandidateView {
            rows,
            informed: true,
        }
    }

    /// A view whose instance probabilities are still θ-scaled (they come
    /// from the bootstrap iteration). Negative evidence (Eq. 14) must not
    /// consume such probabilities: `1 − Pr` would read a correctly
    /// matched neighbour as ~80 % *mismatched* and destroy every
    /// candidate.
    pub fn uninformed(rows: Vec<Vec<(EntityId, f64)>>) -> Self {
        CandidateView {
            rows,
            informed: false,
        }
    }

    /// Whether the instance probabilities in this view were computed with
    /// informed (non-bootstrap) sub-relation scores.
    pub fn is_informed(&self) -> bool {
        self.informed
    }

    /// An empty view over `n` entities.
    pub fn empty(n: usize) -> Self {
        CandidateView {
            rows: vec![Vec::new(); n],
            informed: false,
        }
    }

    /// Candidates of entity `y`.
    #[inline]
    pub fn candidates(&self, y: EntityId) -> &[(EntityId, f64)] {
        &self.rows[y.index()]
    }

    /// Number of entities covered.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the view covers no entities.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Probability lookup via a transient hash map when rows get long.
    pub fn prob(&self, y: EntityId, y2: EntityId) -> f64 {
        self.rows[y.index()]
            .iter()
            .find(|&&(e, _)| e == y2)
            .map_or(0.0, |&(_, p)| p)
    }

    /// Builds a hash-map snapshot of one row (used by the sub-relation
    /// pass, which probes the same row many times).
    pub fn row_map(&self, y: EntityId) -> FxHashMap<EntityId, f64> {
        self.rows[y.index()].iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: usize) -> EntityId {
        EntityId::from_index(i)
    }

    #[test]
    fn from_rows_builds_backward_index() {
        let rows = vec![vec![(e(1), 0.9), (e(0), 0.3)], vec![], vec![(e(1), 0.5)]];
        let s = EquivStore::from_rows(rows, 2);
        assert_eq!(s.prob(e(0), e(1)), 0.9);
        assert_eq!(s.prob(e(0), e(0)), 0.3);
        assert_eq!(s.prob(e(1), e(0)), 0.0);
        assert_eq!(s.candidates_rev(e(1)), &[(e(0), 0.9), (e(2), 0.5)]);
        assert_eq!(s.num_pairs(), 3);
    }

    #[test]
    fn maximal_assignment_picks_best() {
        let rows = vec![vec![(e(0), 0.3), (e(1), 0.9)], vec![(e(0), 0.2)], vec![]];
        let s = EquivStore::from_rows(rows, 2);
        let m = s.maximal_assignment();
        assert_eq!(m[0], Some((e(1), 0.9)));
        assert_eq!(m[1], Some((e(0), 0.2)));
        assert_eq!(m[2], None);
    }

    #[test]
    fn ties_break_to_smallest_id() {
        let rows = vec![vec![(e(0), 0.5), (e(1), 0.5)]];
        let s = EquivStore::from_rows(rows, 2);
        assert_eq!(s.maximal_assignment()[0], Some((e(0), 0.5)));
    }

    #[test]
    fn assignment_changes_counts_diffs() {
        let a = EquivStore::from_rows(vec![vec![(e(0), 0.9)], vec![(e(1), 0.8)], vec![]], 2);
        let b = EquivStore::from_rows(vec![vec![(e(1), 0.9)], vec![(e(1), 0.3)], vec![]], 2);
        // row 0 changed target, row 1 same target (different score), row 2 same (none)
        assert_eq!(a.assignment_changes(&b), 1);
        assert_eq!(a.assignment_changes(&a), 0);
    }

    #[test]
    fn changes_count_appearing_and_disappearing() {
        let a = EquivStore::from_rows(vec![vec![(e(0), 0.9)], vec![]], 1);
        let b = EquivStore::from_rows(vec![vec![], vec![(e(0), 0.9)]], 1);
        assert_eq!(a.assignment_changes(&b), 2);
    }

    #[test]
    fn reverse_maximal_assignment() {
        let rows = vec![vec![(e(0), 0.9)], vec![(e(0), 0.95)]];
        let s = EquivStore::from_rows(rows, 1);
        assert_eq!(s.maximal_assignment_rev()[0], Some((e(1), 0.95)));
    }

    #[test]
    fn replace_rows_matches_full_rebuild() {
        let rows = vec![vec![(e(1), 0.9), (e(0), 0.3)], vec![], vec![(e(1), 0.5)]];
        let mut s = EquivStore::from_rows(rows, 3);
        // Replace one row (dropping a candidate, adding one, rescoring
        // one), clear another, and fill a previously empty one.
        let changes = vec![
            (e(0), vec![(e(2), 0.7), (e(1), 0.4)]),
            (e(1), vec![(e(0), 0.2)]),
            (e(2), vec![]),
        ];
        s.replace_rows(changes.clone());

        let mut rebuilt_rows = vec![vec![(e(1), 0.9), (e(0), 0.3)], vec![], vec![(e(1), 0.5)]];
        for (x, row) in changes {
            rebuilt_rows[x.index()] = row;
        }
        let rebuilt = EquivStore::from_rows(rebuilt_rows, 3);
        for i in 0..3 {
            assert_eq!(s.candidates(e(i)), rebuilt.candidates(e(i)), "fwd {i}");
            assert_eq!(
                s.candidates_rev(e(i)),
                rebuilt.candidates_rev(e(i)),
                "bwd {i}"
            );
        }
        assert_eq!(s.num_pairs(), rebuilt.num_pairs());
    }

    #[test]
    fn candidate_view_lookups() {
        let v = CandidateView::new(vec![vec![(e(3), 0.7)], vec![]]);
        assert_eq!(v.candidates(e(0)), &[(e(3), 0.7)]);
        assert_eq!(v.prob(e(0), e(3)), 0.7);
        assert_eq!(v.prob(e(0), e(2)), 0.0);
        assert_eq!(v.prob(e(1), e(3)), 0.0);
        assert_eq!(v.row_map(e(0)).len(), 1);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }
}
