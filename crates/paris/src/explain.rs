//! Evidence explanations: *why* does PARIS believe `x ≡ x′`?
//!
//! Eq. 13 scores a candidate pair through a product over pairs of
//! statements `r(x, y)` / `r′(x′, y′)` with `y ≈ y′`. Each factor is an
//! independent piece of evidence weighted by the inverse functionality of
//! the relations and the sub-relation scores. This module re-runs that
//! computation for one pair and returns the factors individually — the
//! paper's e-mail example becomes inspectable: a single shared e-mail
//! address shows up as one dominant factor with `fun⁻¹ = 1`.

use paris_kb::{EntityId, EntityKind, Kb, RelationId};
use paris_literals::LiteralSimilarity;

use crate::config::ParisConfig;
use crate::equiv::CandidateView;
use crate::image::{PairImage, PairSide};
use crate::subrel::SubrelStore;

/// One piece of positive evidence for `x ≡ x′` (a factor of Eq. 13).
#[derive(Clone, Debug)]
pub struct Evidence {
    /// The KB-1 statement's relation (`r` in `r(x, y)`).
    pub relation_1: RelationId,
    /// The KB-2 statement's relation (`r′` in `r′(x′, y′)`).
    pub relation_2: RelationId,
    /// The shared neighbour on the KB-1 side (`y`).
    pub neighbor_1: EntityId,
    /// The equivalent neighbour on the KB-2 side (`y′`).
    pub neighbor_2: EntityId,
    /// `Pr(y ≡ y′)` — clamped literal probability or the previous
    /// iteration's instance probability.
    pub neighbor_prob: f64,
    /// `fun⁻¹(r)` on the KB-1 side.
    pub inv_functionality_1: f64,
    /// `fun⁻¹(r′)` on the KB-2 side.
    pub inv_functionality_2: f64,
    /// The Eq. 13 factor `(1 − Pr(r′⊆r)·fun⁻¹(r)·Pr(y≡y′)) ×
    /// (1 − Pr(r⊆r′)·fun⁻¹(r′)·Pr(y≡y′))`. Smaller = stronger evidence.
    pub factor: f64,
}

impl Evidence {
    /// The contribution of this factor alone: the score the pair would
    /// get if this were the only evidence.
    pub fn solo_score(&self) -> f64 {
        1.0 - self.factor
    }
}

/// A full explanation of one candidate pair.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The explained KB-1 instance.
    pub entity_1: EntityId,
    /// The explained KB-2 candidate.
    pub entity_2: EntityId,
    /// All positive-evidence factors, strongest (smallest factor) first.
    pub evidence: Vec<Evidence>,
    /// The combined Eq. 13 score `1 − ∏ factors`.
    pub score: f64,
}

impl Explanation {
    /// Renders a human-readable evidence table.
    pub fn render(&self, kb1: &Kb, kb2: &Kb) -> String {
        let name = |kb: &Kb, e: EntityId| match kb.literal(e) {
            Some(l) => format!("{:?}", l.value()),
            None => kb
                .iri(e)
                .map(|i| i.local_name().to_owned())
                .unwrap_or_else(|| format!("{e:?}")),
        };
        let mut out = format!(
            "Pr({} ≡ {}) = {:.3} from {} pieces of evidence:\n",
            name(kb1, self.entity_1),
            name(kb2, self.entity_2),
            self.score,
            self.evidence.len(),
        );
        for ev in &self.evidence {
            out.push_str(&format!(
                "  {}({}) ~ {}({})  Pr(y≡y′)={:.2} fun⁻¹={:.2}/{:.2} → +{:.3}\n",
                kb1.relation_display(ev.relation_1),
                name(kb1, ev.neighbor_1),
                kb2.relation_display(ev.relation_2),
                name(kb2, ev.neighbor_2),
                ev.neighbor_prob,
                ev.inv_functionality_1,
                ev.inv_functionality_2,
                ev.solo_score(),
            ));
        }
        out
    }
}

/// Recomputes the Eq. 13 evidence for one candidate pair.
///
/// `cand` supplies `Pr(y ≡ y′)` exactly as the instance pass saw it;
/// `subrel` supplies the sub-relation scores. The returned score equals
/// the score the instance pass assigns (before negative evidence).
pub fn explain_pair(
    kb1: &Kb,
    kb2: &Kb,
    x: EntityId,
    x2: EntityId,
    cand: &CandidateView,
    subrel: &SubrelStore,
    _config: &ParisConfig,
) -> Explanation {
    let mut evidence = Vec::new();
    let mut product = 1.0;
    for &(r, y) in kb1.facts(x) {
        let fun_inv_r = kb1.functionality(r.inverse());
        for &(y2, p_yy) in cand.candidates(y) {
            for &(q, z) in kb2.facts(y2) {
                if z != x2 || kb2.kind(z) != EntityKind::Instance {
                    continue;
                }
                let r2 = q.inverse();
                let p_r2_in_r = subrel.prob_2in1(r2, r);
                let p_r_in_r2 = subrel.prob_1in2(r, r2);
                if p_r2_in_r == 0.0 && p_r_in_r2 == 0.0 {
                    continue;
                }
                let fun_inv_r2 = kb2.functionality(r2.inverse());
                let factor =
                    (1.0 - p_r2_in_r * fun_inv_r * p_yy) * (1.0 - p_r_in_r2 * fun_inv_r2 * p_yy);
                if factor < 1.0 {
                    product *= factor;
                    evidence.push(Evidence {
                        relation_1: r,
                        relation_2: r2,
                        neighbor_1: y,
                        neighbor_2: y2,
                        neighbor_prob: p_yy,
                        inv_functionality_1: fun_inv_r,
                        inv_functionality_2: fun_inv_r2,
                        factor,
                    });
                }
            }
        }
    }
    evidence.sort_by(|a, b| a.factor.total_cmp(&b.factor));
    Explanation {
        entity_1: x,
        entity_2: x2,
        evidence,
        score: 1.0 - product,
    }
}

// ----------------------------------------------------------------------
// Stored-evidence explanations (the serving path)
// ----------------------------------------------------------------------

/// One piece of evidence for `x ≡ x′` read from a **stored** serving
/// image — the serving counterpart of [`Evidence`], fully rendered
/// (relation IRIs, neighbour terms) so the daemon can emit it without
/// touching the image again.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredEvidence {
    /// Base IRI of the KB-1 statement's relation (`r` in `r(x, y)`).
    pub relation_1: String,
    /// Whether the KB-1 statement is held in the inverse direction.
    pub inverse_1: bool,
    /// Base IRI of the KB-2 statement's relation (`r′` in `r′(x′, y′)`).
    pub relation_2: String,
    /// Whether the KB-2 statement is held in the inverse direction.
    pub inverse_2: bool,
    /// The shared neighbour on the KB-1 side (`y`), rendered.
    pub neighbor_1: String,
    /// The equivalent neighbour on the KB-2 side (`y′`), rendered.
    pub neighbor_2: String,
    /// `Pr(y ≡ y′)`: the clamped literal probability for literal
    /// neighbours, the stored maximal-assignment probability for
    /// instance neighbours.
    pub neighbor_prob: f64,
    /// `fun⁻¹(r)` on the KB-1 side (stored functionality).
    pub inv_functionality_1: f64,
    /// `fun⁻¹(r′)` on the KB-2 side.
    pub inv_functionality_2: f64,
    /// Stored `Pr(r′ ⊆ r)`.
    pub subrel_2in1: f64,
    /// Stored `Pr(r ⊆ r′)`.
    pub subrel_1in2: f64,
    /// The Eq. 13 factor `(1 − Pr(r′⊆r)·fun⁻¹(r)·Pr(y≡y′)) ×
    /// (1 − Pr(r⊆r′)·fun⁻¹(r′)·Pr(y≡y′))`. Smaller = stronger evidence.
    pub factor: f64,
}

impl StoredEvidence {
    /// The contribution of this factor alone: the score the pair would
    /// get if this were the only evidence.
    pub fn solo_score(&self) -> f64 {
        1.0 - self.factor
    }
}

/// A full stored-evidence explanation of one candidate pair.
#[derive(Clone, Debug)]
pub struct StoredExplanation {
    /// The Eq. 13 score the stored model assigns the pair today:
    /// `1 − ∏ factorᵢ`, multiplied in [`evidence`](Self::evidence)
    /// order — recomputing the product over the listed factors
    /// reproduces this value **bit-exactly**
    /// ([`recompute_score`](Self::recompute_score)).
    pub score: f64,
    /// The stored equivalence probability `Pr(x ≡ x′)` — what the
    /// producing run wrote into the snapshot, and exactly what `sameas`
    /// serves when `x′` is the maximal assignment of `x`.
    pub stored_prob: f64,
    /// All positive-evidence factors, strongest (smallest factor) first.
    pub evidence: Vec<StoredEvidence>,
}

impl StoredExplanation {
    /// Re-multiplies the evidence factors in listed order — bit-equal to
    /// [`score`](Self::score) by construction. Clients asserting
    /// explain-vs-score consistency use exactly this fold.
    pub fn recompute_score(&self) -> f64 {
        1.0 - self.evidence.iter().fold(1.0, |p, e| p * e.factor)
    }
}

/// Recomputes the Eq. 13 evidence for one candidate pair from a
/// **stored serving image** — the zero-setup counterpart of
/// [`explain_pair`], consuming only what the snapshot persists: fact
/// adjacency, functionalities, sub-relation scores, and the final
/// equivalence table. `x` must be a KB-1 instance and `x2` a KB-2
/// instance.
///
/// `Pr(y ≡ y′)` is what a next instance pass over the stored image
/// would see (§5.2): literal pairs are clamped by the identity
/// similarity (the paper's default — the snapshot does not record the
/// similarity function the producing run used); entity pairs propagate
/// only the stored *maximal assignment* of `y`.
///
/// Answers are **byte-identical across formats**: a decoded v1 image
/// and a mapped v2 image of the same snapshot walk the same rows in the
/// same order and read the same bits, so the rendered evidence (and the
/// folded score) cannot differ.
///
/// Work is O(facts(x) × facts(x2)) statement pairs (per-neighbour
/// lookups are hoisted out of the inner loop); callers serving untrusted
/// input should bound that product — the daemon refuses pairs beyond
/// its documented cap.
pub fn explain_stored(image: &PairImage, x: EntityId, x2: EntityId) -> StoredExplanation {
    let mut evidence = Vec::new();
    // The right-hand statements are the same for every left-hand fact;
    // enumerate them once, with each neighbour's literal value (None =
    // not a literal) resolved once instead of per statement pair.
    let facts2: Vec<(RelationId, EntityId, Option<paris_rdf::Literal>)> = image
        .facts_ids(PairSide::Kb2, x2)
        .into_iter()
        .map(|(r2, y2)| (r2, y2, image.literal_of(PairSide::Kb2, y2)))
        .collect();
    for (r, y) in image.facts_ids(PairSide::Kb1, x) {
        let fun_inv_r = image.functionality(PairSide::Kb1, r.inverse());
        // Classify the left neighbour once: its literal value, or — for
        // entities — its stored maximal assignment.
        let y_literal = image.literal_of(PairSide::Kb1, y);
        let y_best = if y_literal.is_none() {
            image.best_match_from(PairSide::Kb1, y)
        } else {
            None
        };
        for (r2, y2, y2_literal) in &facts2 {
            let (r2, y2) = (*r2, *y2);
            let p_yy = match (&y_literal, y2_literal) {
                (Some(a), Some(b)) => LiteralSimilarity::Identity.probability(a, b),
                (None, None) => y_best.filter(|&(e, _)| e == y2).map_or(0.0, |(_, p)| p),
                _ => 0.0,
            };
            if p_yy == 0.0 {
                continue;
            }
            let p_r2_in_r = image.subrel_2in1(r2, r);
            let p_r_in_r2 = image.subrel_1in2(r, r2);
            if p_r2_in_r == 0.0 && p_r_in_r2 == 0.0 {
                continue;
            }
            let fun_inv_r2 = image.functionality(PairSide::Kb2, r2.inverse());
            let factor =
                (1.0 - p_r2_in_r * fun_inv_r * p_yy) * (1.0 - p_r_in_r2 * fun_inv_r2 * p_yy);
            if factor < 1.0 {
                evidence.push(StoredEvidence {
                    relation_1: image.relation_iri_of(PairSide::Kb1, r),
                    inverse_1: r.is_inverse(),
                    relation_2: image.relation_iri_of(PairSide::Kb2, r2),
                    inverse_2: r2.is_inverse(),
                    neighbor_1: image.term_string(PairSide::Kb1, y),
                    neighbor_2: image.term_string(PairSide::Kb2, y2),
                    neighbor_prob: p_yy,
                    inv_functionality_1: fun_inv_r,
                    inv_functionality_2: fun_inv_r2,
                    subrel_2in1: p_r2_in_r,
                    subrel_1in2: p_r_in_r2,
                    factor,
                });
            }
        }
    }
    // Strongest evidence first; the sort is stable, so equal factors
    // keep their (deterministic) discovery order. The product is folded
    // *after* sorting, in listed order — that is the order clients see,
    // so re-multiplying the served factors reproduces the served score
    // bit for bit.
    evidence.sort_by(|a, b| a.factor.total_cmp(&b.factor));
    let score = 1.0 - evidence.iter().fold(1.0, |p, e| p * e.factor);
    StoredExplanation {
        score,
        stored_prob: image.equiv_prob(x, x2),
        evidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::instance_pass;
    use crate::literal_bridge::LiteralBridge;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn kbs() -> (Kb, Kb) {
        let mut b1 = KbBuilder::new("a");
        b1.add_literal_fact(
            "http://a/alice",
            "http://a/email",
            Literal::plain("al@x.org"),
        );
        b1.add_literal_fact(
            "http://a/alice",
            "http://a/city",
            Literal::plain("Springfield"),
        );
        b1.add_literal_fact(
            "http://a/eve",
            "http://a/city",
            Literal::plain("Springfield"),
        );
        let mut b2 = KbBuilder::new("b");
        b2.add_literal_fact(
            "http://b/asmith",
            "http://b/mail",
            Literal::plain("al@x.org"),
        );
        b2.add_literal_fact(
            "http://b/asmith",
            "http://b/town",
            Literal::plain("Springfield"),
        );
        b2.add_literal_fact(
            "http://b/bob",
            "http://b/town",
            Literal::plain("Springfield"),
        );
        (b1.build(), b2.build())
    }

    fn view(kb1: &Kb, kb2: &Kb) -> CandidateView {
        let (fwd, _) = LiteralBridge::build(kb1, kb2, &LiteralSimilarity::Identity).into_rows();
        CandidateView::uninformed(fwd)
    }

    #[test]
    fn explanation_score_matches_instance_pass() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let config = ParisConfig::default()
            .with_threads(1)
            .with_truncation(0.0001);
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &config);

        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        let pass_score = rows[alice.index()]
            .iter()
            .find(|&&(e, _)| e == asmith)
            .map(|&(_, p)| p)
            .expect("alice ≈ asmith");

        let explanation = explain_pair(&kb1, &kb2, alice, asmith, &cand, &subrel, &config);
        assert!((explanation.score - pass_score).abs() < 1e-12);
    }

    #[test]
    fn email_dominates_city() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        let ex = explain_pair(
            &kb1,
            &kb2,
            alice,
            asmith,
            &cand,
            &subrel,
            &ParisConfig::default(),
        );
        assert_eq!(ex.evidence.len(), 2, "{ex:?}");
        // The e-mail (unique on both sides, fun⁻¹ = 1) must be the
        // strongest evidence; the shared city (fun⁻¹ = 0.5) the weaker.
        let strongest = &ex.evidence[0];
        assert_eq!(kb1.relation_display(strongest.relation_1), "email");
        assert_eq!(strongest.inv_functionality_1, 1.0);
        let weaker = &ex.evidence[1];
        assert_eq!(kb1.relation_display(weaker.relation_1), "city");
        assert!(weaker.inv_functionality_1 < 1.0);
        assert!(strongest.solo_score() > weaker.solo_score());
    }

    #[test]
    fn unrelated_pair_has_no_evidence() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let eve = kb1.entity_by_iri("http://a/eve").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        // eve shares only the city value with asmith (via the literal).
        let ex = explain_pair(
            &kb1,
            &kb2,
            eve,
            asmith,
            &cand,
            &subrel,
            &ParisConfig::default(),
        );
        assert_eq!(ex.evidence.len(), 1);
        assert!(ex.score < 0.1);
    }

    fn aligned_image_pair() -> (PairImage, PairImage) {
        use crate::iteration::Aligner;
        use crate::owned::{AlignedPairSnapshot, OwnedAlignment};
        use crate::view::MappedPairSnapshot;
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..6 {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            a.add_fact(
                format!("http://a/p{i}"),
                "http://a/livesIn",
                format!("http://a/c{}", i % 2),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_fact(
                format!("http://b/q{i}"),
                "http://b/city",
                format!("http://b/d{}", i % 2),
            );
        }
        let (kb1, kb2) = (a.build(), b.build());
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        let snap = AlignedPairSnapshot::new(kb1, kb2, owned);
        let mapped = MappedPairSnapshot::from_bytes(MappedPairSnapshot::encode(&snap)).unwrap();
        (
            PairImage::Decoded(Box::new(snap)),
            PairImage::Mapped(Box::new(mapped)),
        )
    }

    #[test]
    fn stored_explanation_is_identical_across_formats_and_recomputes() {
        let (v1, v2) = aligned_image_pair();
        for i in 0..6 {
            let x = v1
                .entity_by_iri(PairSide::Kb1, &format!("http://a/p{i}"))
                .unwrap();
            for j in 0..6 {
                let x2 = v1
                    .entity_by_iri(PairSide::Kb2, &format!("http://b/q{j}"))
                    .unwrap();
                let a = explain_stored(&v1, x, x2);
                let b = explain_stored(&v2, x, x2);
                assert_eq!(a.evidence, b.evidence, "p{i}/q{j}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "p{i}/q{j}");
                assert_eq!(
                    a.stored_prob.to_bits(),
                    b.stored_prob.to_bits(),
                    "p{i}/q{j}"
                );
                // The served score is exactly the fold of the served factors.
                assert_eq!(a.score.to_bits(), a.recompute_score().to_bits());
            }
        }
    }

    #[test]
    fn stored_explanation_finds_the_email_evidence() {
        let (v1, _) = aligned_image_pair();
        let x = v1.entity_by_iri(PairSide::Kb1, "http://a/p1").unwrap();
        let x2 = v1.entity_by_iri(PairSide::Kb2, "http://b/q1").unwrap();
        let ex = explain_stored(&v1, x, x2);
        assert!(!ex.evidence.is_empty());
        // The e-mail literal is the strongest evidence (fun⁻¹ = 1 on a
        // unique value), and the stored assignment agrees.
        let strongest = &ex.evidence[0];
        assert_eq!(strongest.relation_1, "http://a/email");
        assert_eq!(strongest.neighbor_1, "p1@x.org");
        assert_eq!(strongest.inv_functionality_1, 1.0);
        assert!(ex.score > 0.5, "{ex:?}");
        assert!(ex.stored_prob > 0.5, "{ex:?}");
        assert_eq!(
            v1.best_match_from(PairSide::Kb1, x).map(|(e, _)| e),
            Some(x2)
        );

        // A wrong candidate gets weaker (city-only) or no evidence.
        let wrong = v1.entity_by_iri(PairSide::Kb2, "http://b/q2").unwrap();
        let weak = explain_stored(&v1, x, wrong);
        assert!(weak.score < ex.score, "{weak:?}");
        assert_eq!(weak.stored_prob, 0.0);
    }

    #[test]
    fn render_is_readable() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        let ex = explain_pair(
            &kb1,
            &kb2,
            alice,
            asmith,
            &cand,
            &subrel,
            &ParisConfig::default(),
        );
        let text = ex.render(&kb1, &kb2);
        assert!(text.contains("alice"), "{text}");
        assert!(text.contains("email"), "{text}");
        assert!(text.contains("fun⁻¹"), "{text}");
    }
}
