//! Evidence explanations: *why* does PARIS believe `x ≡ x′`?
//!
//! Eq. 13 scores a candidate pair through a product over pairs of
//! statements `r(x, y)` / `r′(x′, y′)` with `y ≈ y′`. Each factor is an
//! independent piece of evidence weighted by the inverse functionality of
//! the relations and the sub-relation scores. This module re-runs that
//! computation for one pair and returns the factors individually — the
//! paper's e-mail example becomes inspectable: a single shared e-mail
//! address shows up as one dominant factor with `fun⁻¹ = 1`.

use paris_kb::{EntityId, EntityKind, Kb, RelationId};

use crate::config::ParisConfig;
use crate::equiv::CandidateView;
use crate::subrel::SubrelStore;

/// One piece of positive evidence for `x ≡ x′` (a factor of Eq. 13).
#[derive(Clone, Debug)]
pub struct Evidence {
    /// The KB-1 statement's relation (`r` in `r(x, y)`).
    pub relation_1: RelationId,
    /// The KB-2 statement's relation (`r′` in `r′(x′, y′)`).
    pub relation_2: RelationId,
    /// The shared neighbour on the KB-1 side (`y`).
    pub neighbor_1: EntityId,
    /// The equivalent neighbour on the KB-2 side (`y′`).
    pub neighbor_2: EntityId,
    /// `Pr(y ≡ y′)` — clamped literal probability or the previous
    /// iteration's instance probability.
    pub neighbor_prob: f64,
    /// `fun⁻¹(r)` on the KB-1 side.
    pub inv_functionality_1: f64,
    /// `fun⁻¹(r′)` on the KB-2 side.
    pub inv_functionality_2: f64,
    /// The Eq. 13 factor `(1 − Pr(r′⊆r)·fun⁻¹(r)·Pr(y≡y′)) ×
    /// (1 − Pr(r⊆r′)·fun⁻¹(r′)·Pr(y≡y′))`. Smaller = stronger evidence.
    pub factor: f64,
}

impl Evidence {
    /// The contribution of this factor alone: the score the pair would
    /// get if this were the only evidence.
    pub fn solo_score(&self) -> f64 {
        1.0 - self.factor
    }
}

/// A full explanation of one candidate pair.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The explained KB-1 instance.
    pub entity_1: EntityId,
    /// The explained KB-2 candidate.
    pub entity_2: EntityId,
    /// All positive-evidence factors, strongest (smallest factor) first.
    pub evidence: Vec<Evidence>,
    /// The combined Eq. 13 score `1 − ∏ factors`.
    pub score: f64,
}

impl Explanation {
    /// Renders a human-readable evidence table.
    pub fn render(&self, kb1: &Kb, kb2: &Kb) -> String {
        let name = |kb: &Kb, e: EntityId| match kb.literal(e) {
            Some(l) => format!("{:?}", l.value()),
            None => kb
                .iri(e)
                .map(|i| i.local_name().to_owned())
                .unwrap_or_else(|| format!("{e:?}")),
        };
        let mut out = format!(
            "Pr({} ≡ {}) = {:.3} from {} pieces of evidence:\n",
            name(kb1, self.entity_1),
            name(kb2, self.entity_2),
            self.score,
            self.evidence.len(),
        );
        for ev in &self.evidence {
            out.push_str(&format!(
                "  {}({}) ~ {}({})  Pr(y≡y′)={:.2} fun⁻¹={:.2}/{:.2} → +{:.3}\n",
                kb1.relation_display(ev.relation_1),
                name(kb1, ev.neighbor_1),
                kb2.relation_display(ev.relation_2),
                name(kb2, ev.neighbor_2),
                ev.neighbor_prob,
                ev.inv_functionality_1,
                ev.inv_functionality_2,
                ev.solo_score(),
            ));
        }
        out
    }
}

/// Recomputes the Eq. 13 evidence for one candidate pair.
///
/// `cand` supplies `Pr(y ≡ y′)` exactly as the instance pass saw it;
/// `subrel` supplies the sub-relation scores. The returned score equals
/// the score the instance pass assigns (before negative evidence).
pub fn explain_pair(
    kb1: &Kb,
    kb2: &Kb,
    x: EntityId,
    x2: EntityId,
    cand: &CandidateView,
    subrel: &SubrelStore,
    _config: &ParisConfig,
) -> Explanation {
    let mut evidence = Vec::new();
    let mut product = 1.0;
    for &(r, y) in kb1.facts(x) {
        let fun_inv_r = kb1.functionality(r.inverse());
        for &(y2, p_yy) in cand.candidates(y) {
            for &(q, z) in kb2.facts(y2) {
                if z != x2 || kb2.kind(z) != EntityKind::Instance {
                    continue;
                }
                let r2 = q.inverse();
                let p_r2_in_r = subrel.prob_2in1(r2, r);
                let p_r_in_r2 = subrel.prob_1in2(r, r2);
                if p_r2_in_r == 0.0 && p_r_in_r2 == 0.0 {
                    continue;
                }
                let fun_inv_r2 = kb2.functionality(r2.inverse());
                let factor =
                    (1.0 - p_r2_in_r * fun_inv_r * p_yy) * (1.0 - p_r_in_r2 * fun_inv_r2 * p_yy);
                if factor < 1.0 {
                    product *= factor;
                    evidence.push(Evidence {
                        relation_1: r,
                        relation_2: r2,
                        neighbor_1: y,
                        neighbor_2: y2,
                        neighbor_prob: p_yy,
                        inv_functionality_1: fun_inv_r,
                        inv_functionality_2: fun_inv_r2,
                        factor,
                    });
                }
            }
        }
    }
    evidence.sort_by(|a, b| a.factor.total_cmp(&b.factor));
    Explanation {
        entity_1: x,
        entity_2: x2,
        evidence,
        score: 1.0 - product,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::instance_pass;
    use crate::literal_bridge::LiteralBridge;
    use paris_kb::KbBuilder;
    use paris_literals::LiteralSimilarity;
    use paris_rdf::Literal;

    fn kbs() -> (Kb, Kb) {
        let mut b1 = KbBuilder::new("a");
        b1.add_literal_fact(
            "http://a/alice",
            "http://a/email",
            Literal::plain("al@x.org"),
        );
        b1.add_literal_fact(
            "http://a/alice",
            "http://a/city",
            Literal::plain("Springfield"),
        );
        b1.add_literal_fact(
            "http://a/eve",
            "http://a/city",
            Literal::plain("Springfield"),
        );
        let mut b2 = KbBuilder::new("b");
        b2.add_literal_fact(
            "http://b/asmith",
            "http://b/mail",
            Literal::plain("al@x.org"),
        );
        b2.add_literal_fact(
            "http://b/asmith",
            "http://b/town",
            Literal::plain("Springfield"),
        );
        b2.add_literal_fact(
            "http://b/bob",
            "http://b/town",
            Literal::plain("Springfield"),
        );
        (b1.build(), b2.build())
    }

    fn view(kb1: &Kb, kb2: &Kb) -> CandidateView {
        let (fwd, _) = LiteralBridge::build(kb1, kb2, &LiteralSimilarity::Identity).into_rows();
        CandidateView::uninformed(fwd)
    }

    #[test]
    fn explanation_score_matches_instance_pass() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let config = ParisConfig::default()
            .with_threads(1)
            .with_truncation(0.0001);
        let rows = instance_pass(&kb1, &kb2, &cand, &subrel, &config);

        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        let pass_score = rows[alice.index()]
            .iter()
            .find(|&&(e, _)| e == asmith)
            .map(|&(_, p)| p)
            .expect("alice ≈ asmith");

        let explanation = explain_pair(&kb1, &kb2, alice, asmith, &cand, &subrel, &config);
        assert!((explanation.score - pass_score).abs() < 1e-12);
    }

    #[test]
    fn email_dominates_city() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        let ex = explain_pair(
            &kb1,
            &kb2,
            alice,
            asmith,
            &cand,
            &subrel,
            &ParisConfig::default(),
        );
        assert_eq!(ex.evidence.len(), 2, "{ex:?}");
        // The e-mail (unique on both sides, fun⁻¹ = 1) must be the
        // strongest evidence; the shared city (fun⁻¹ = 0.5) the weaker.
        let strongest = &ex.evidence[0];
        assert_eq!(kb1.relation_display(strongest.relation_1), "email");
        assert_eq!(strongest.inv_functionality_1, 1.0);
        let weaker = &ex.evidence[1];
        assert_eq!(kb1.relation_display(weaker.relation_1), "city");
        assert!(weaker.inv_functionality_1 < 1.0);
        assert!(strongest.solo_score() > weaker.solo_score());
    }

    #[test]
    fn unrelated_pair_has_no_evidence() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let eve = kb1.entity_by_iri("http://a/eve").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        // eve shares only the city value with asmith (via the literal).
        let ex = explain_pair(
            &kb1,
            &kb2,
            eve,
            asmith,
            &cand,
            &subrel,
            &ParisConfig::default(),
        );
        assert_eq!(ex.evidence.len(), 1);
        assert!(ex.score < 0.1);
    }

    #[test]
    fn render_is_readable() {
        let (kb1, kb2) = kbs();
        let cand = view(&kb1, &kb2);
        let subrel = SubrelStore::bootstrap(
            0.1,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let alice = kb1.entity_by_iri("http://a/alice").unwrap();
        let asmith = kb2.entity_by_iri("http://b/asmith").unwrap();
        let ex = explain_pair(
            &kb1,
            &kb2,
            alice,
            asmith,
            &cand,
            &subrel,
            &ParisConfig::default(),
        );
        let text = ex.render(&kb1, &kb2);
        assert!(text.contains("alice"), "{text}");
        assert!(text.contains("email"), "{text}");
        assert!(text.contains("fun⁻¹"), "{text}");
    }
}
