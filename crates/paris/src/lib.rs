//! # The PARIS alignment algorithm
//!
//! A faithful implementation of *PARIS: Probabilistic Alignment of
//! Relations, Instances, and Schema* (Suchanek, Abiteboul & Senellart,
//! PVLDB 5(3), 2011) over the [`paris_kb`] substrate.
//!
//! PARIS aligns two RDFS ontologies **holistically**: instance
//! equivalences, sub-relation scores, and sub-class scores are all
//! estimated in one probabilistic model that lets schema and instance
//! evidence cross-fertilize. The key quantity is the (inverse)
//! *functionality* of a relation (Eq. 1–2): sharing the value of a highly
//! inverse-functional relation (an e-mail address) is strong evidence of
//! equality; sharing a low-functionality value (a home city) is weak
//! evidence.
//!
//! The module layout mirrors the paper:
//!
//! | module | paper | content |
//! |---|---|---|
//! | [`config`] | §5.4 | θ, literal similarity, design-alternative toggles |
//! | [`equiv`] | §5.2 | sparse `Pr(x ≡ x′)` storage, maximal assignment |
//! | [`literal_bridge`] | §5.3 | clamped literal equivalences |
//! | [`instance`] | §4.1–4.2 | Eq. 13 (and Eq. 14) instance pass |
//! | [`subrel`] | §4.2 | Eq. 12 sub-relation pass |
//! | [`subclass`] | §4.3 | Eq. 17 class pass |
//! | [`iteration`] | §5.1 | bootstrap, fixed point, convergence |
//! | [`owned`] | — | borrow-free results, aligned-pair snapshots (v1) |
//! | [`view`] | — | zero-copy v2 snapshots: arena layouts and views |
//! | [`image`] | — | one serving image, decoded (v1) or mapped (v2) |
//! | [`incremental`] | — | warm-started re-alignment on KB deltas |
//! | [`quality`] | — | gold-standard-free quality summaries, drift sketches |
//!
//! See [`Aligner`] for the entry point of a full run and
//! [`incremental::update_snapshot`] for re-aligning after a
//! [`KbDelta`](paris_kb::delta::KbDelta).

#![forbid(unsafe_code)]

pub mod config;
pub mod equiv;
pub mod explain;
pub mod image;
pub mod incremental;
pub mod instance;
pub mod iteration;
pub mod literal_bridge;
pub mod owned;
pub mod quality;
pub mod subclass;
pub mod subrel;
pub mod view;

pub use config::ParisConfig;
pub use equiv::{CandidateView, EquivStore};
pub use explain::{explain_stored, Evidence, Explanation, StoredEvidence, StoredExplanation};
pub use image::{FactRow, PairImage, PairSide};
pub use incremental::{
    realign_incremental, realign_incremental_traced, update_snapshot, DirtySeeds,
    IncrementalOptions, IncrementalReport, IncrementalRun, UpdateReport,
};
pub use iteration::{Aligner, AlignmentResult, IterationStats};
pub use literal_bridge::LiteralBridge;
pub use owned::{AlignedPairSnapshot, OwnedAlignment};
pub use paris_obs as obs;
pub use quality::{AssignmentSketch, QualitySummary};
pub use subclass::{ClassAlignment, ClassScore};
pub use subrel::SubrelStore;
pub use view::{AlignmentLayout, AlignmentView, MappedPairSnapshot};
