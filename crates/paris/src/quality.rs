//! Alignment-quality summaries and cross-generation agreement.
//!
//! The paper evaluates PARIS against gold standards; a serving system
//! re-aligning the same pair across snapshot generations has no gold
//! standard, but it can still answer two questions that gate every
//! refactor and re-shard: *what does this alignment look like* (score
//! distribution, coverage — [`QualitySummary`]) and *does it agree with
//! the previous one* ([`AssignmentSketch::agreement`] — the drift
//! primitive behind `/v1/debug/runs`).
//!
//! Both work from any [`PairImage`], so a decoded v1 snapshot and a
//! mapped v2 snapshot report identically.

use paris_kb::EntityKind;
use paris_obs::series::score_histogram;
use paris_obs::HistogramSnapshot;

use crate::image::{PairImage, PairSide};
use crate::iteration::AlignmentResult;
use paris_kb::{EntityId, RelationId};

/// Default sub-relation probability above which a relation counts as
/// aligned for coverage purposes (the bootstrap θ region scores below
/// this).
pub const RELATION_COVERAGE_THRESHOLD: f64 = 0.1;

/// Bottom-k capacity of an [`AssignmentSketch`]. Assignments smaller
/// than this are sketched exactly; larger ones are estimated with
/// relative error on the order of `1/√k`.
pub const SKETCH_CAPACITY: usize = 1024;

/// Agreement below which two consecutive generations of the same pair
/// are flagged as drifted (>5% of assignments disagree).
pub const DRIFT_AGREEMENT: f64 = 0.95;

/// What an alignment looks like, without a gold standard: coverage and
/// score shape, per side.
#[derive(Clone, Debug)]
pub struct QualitySummary {
    /// Instance entities in KB 1.
    pub instances_kb1: usize,
    /// Instance entities in KB 2.
    pub instances_kb2: usize,
    /// KB-1 instances with a best match (probability > 0).
    pub assigned_instances: usize,
    /// `assigned_instances / instances_kb1` (0 for an empty KB).
    pub instance_coverage: f64,
    /// Distribution of best-match probabilities, per-mille
    /// ([`paris_obs::series::score_bucket`]).
    pub scores: HistogramSnapshot,
    /// Directed relations in KB 1.
    pub relations_kb1: usize,
    /// Directed relations in KB 2.
    pub relations_kb2: usize,
    /// Directed KB-1 relations with some KB-2 super-relation scored at
    /// or above the threshold.
    pub aligned_relations_1to2: usize,
    /// Directed KB-2 relations with some KB-1 super-relation scored at
    /// or above the threshold.
    pub aligned_relations_2to1: usize,
    /// Classes in KB 1.
    pub classes_kb1: usize,
    /// Classes in KB 2.
    pub classes_kb2: usize,
    /// The relation-coverage threshold used.
    pub relation_threshold: f64,
    /// Iteration count of the producing run.
    pub iterations: usize,
    /// Whether the producing run converged.
    pub converged: bool,
}

impl QualitySummary {
    /// Summarizes a served image with the default relation-coverage
    /// threshold.
    pub fn of_image(image: &PairImage) -> QualitySummary {
        QualitySummary::of_image_with_threshold(image, RELATION_COVERAGE_THRESHOLD)
    }

    /// Summarizes a served image, counting a relation as aligned when
    /// its best cross-KB score is at least `relation_threshold`.
    pub fn of_image_with_threshold(image: &PairImage, relation_threshold: f64) -> QualitySummary {
        let stats1 = image.kb_stats(PairSide::Kb1);
        let stats2 = image.kb_stats(PairSide::Kb2);
        let mut assigned = 0usize;
        let mut scores: Vec<f64> = Vec::new();
        for (_, _, p) in instance_assignments(image) {
            assigned += 1;
            scores.push(p);
        }
        let (nd1, nd2) = (
            image.num_directed_relations(PairSide::Kb1),
            image.num_directed_relations(PairSide::Kb2),
        );
        let aligned_1to2 = (0..nd1)
            .filter(|&i| {
                let r1 = RelationId::from_directed_index(i);
                (0..nd2).any(|j| {
                    image.subrel_1in2(r1, RelationId::from_directed_index(j)) >= relation_threshold
                })
            })
            .count();
        let aligned_2to1 = (0..nd2)
            .filter(|&j| {
                let r2 = RelationId::from_directed_index(j);
                (0..nd1).any(|i| {
                    image.subrel_2in1(r2, RelationId::from_directed_index(i)) >= relation_threshold
                })
            })
            .count();
        QualitySummary {
            instances_kb1: stats1.instances,
            instances_kb2: stats2.instances,
            assigned_instances: assigned,
            instance_coverage: if stats1.instances == 0 {
                0.0
            } else {
                assigned as f64 / stats1.instances as f64
            },
            scores: score_histogram(scores),
            relations_kb1: nd1,
            relations_kb2: nd2,
            aligned_relations_1to2: aligned_1to2,
            aligned_relations_2to1: aligned_2to1,
            classes_kb1: stats1.classes,
            classes_kb2: stats2.classes,
            relation_threshold,
            iterations: image.iterations_len(),
            converged: image.converged(),
        }
    }
}

/// Per-KB-1-instance best matches of a served image: `(x, x′, Pr)`
/// triples, one per instance with a stored candidate.
pub fn instance_assignments(image: &PairImage) -> Vec<(EntityId, EntityId, f64)> {
    let n = image.num_entities(PairSide::Kb1);
    (0..n)
        .map(EntityId::from_index)
        .filter(|&e| image.entity_kind(PairSide::Kb1, e) == EntityKind::Instance)
        .filter_map(|e| {
            image
                .best_match_from(PairSide::Kb1, e)
                .filter(|&(_, p)| p > 0.0)
                .map(|(x2, p)| (e, x2, p))
        })
        .collect()
}

/// FNV-1a, the workspace's stable cross-process string hash for
/// assignment fingerprints (std's SipHash is randomly keyed per
/// process, which would break sketches persisted across restarts).
fn fnv1a(left: &str, right: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in left.as_bytes().iter().chain(b"\t").chain(right.as_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A bounded fingerprint of one alignment's instance assignment: the
/// [`SKETCH_CAPACITY`] smallest FNV-1a hashes of its `(IRI, IRI′)`
/// pairs (a bottom-k MinHash sketch), plus the exact assignment size.
///
/// Two sketches estimate the *agreement* between their assignments —
/// the fraction of pairs shared — which is exact when both assignments
/// fit the sketch and an unbiased Jaccard-based estimate beyond it.
/// Small enough to persist per run in the run-history JSONL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssignmentSketch {
    size: u64,
    hashes: Vec<u64>,
}

impl AssignmentSketch {
    /// Sketches `(left IRI, right IRI)` assignment pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut hashes: Vec<u64> = Vec::new();
        let mut size = 0u64;
        for (l, r) in pairs {
            size += 1;
            hashes.push(fnv1a(l, r));
        }
        Self::from_parts(size, hashes)
    }

    /// Rebuilds a sketch from persisted parts (sorted, deduplicated,
    /// and truncated to capacity here — persisted data is not trusted
    /// to be canonical).
    pub fn from_parts(size: u64, mut hashes: Vec<u64>) -> Self {
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(SKETCH_CAPACITY);
        AssignmentSketch { size, hashes }
    }

    /// Sketches the best-match assignment of a served image.
    pub fn of_image(image: &PairImage) -> Self {
        let mut hashes: Vec<u64> = Vec::new();
        let mut size = 0u64;
        for (x, x2, _) in instance_assignments(image) {
            let (Some(l), Some(r)) = (
                image.entity_iri(PairSide::Kb1, x),
                image.entity_iri(PairSide::Kb2, x2),
            ) else {
                continue;
            };
            size += 1;
            hashes.push(fnv1a(&l, &r));
        }
        Self::from_parts(size, hashes)
    }

    /// Sketches the final maximal assignment of a completed run.
    pub fn of_result(result: &AlignmentResult<'_>) -> Self {
        let mut hashes: Vec<u64> = Vec::new();
        let mut size = 0u64;
        for (x, x2, _) in result.instance_pairs() {
            let (Some(l), Some(r)) = (result.kb1.iri(x), result.kb2.iri(x2)) else {
                continue;
            };
            size += 1;
            hashes.push(fnv1a(l.as_str(), r.as_str()));
        }
        Self::from_parts(size, hashes)
    }

    /// Exact number of assignment pairs sketched.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The retained bottom-k hashes, ascending.
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Estimated fraction of assignments the two sketched alignments
    /// share, relative to the larger one: 1.0 for identical
    /// assignments, 0.0 for disjoint ones. Both empty ⇒ 1.0 (two empty
    /// alignments agree perfectly).
    ///
    /// The estimate merges the two bottom-k sets into the bottom-k of
    /// the union, reads the Jaccard similarity `J` off it, converts to
    /// an intersection size via `|A∩B| = J·(|A|+|B|)/(1+J)`, and
    /// normalizes by `max(|A|, |B|)`.
    pub fn agreement(&self, other: &AssignmentSketch) -> f64 {
        if self.size == 0 && other.size == 0 {
            return 1.0;
        }
        if self.size == 0 || other.size == 0 {
            return 0.0;
        }
        // Bottom-k of the union (both inputs are sorted and distinct).
        let mut union_bottom: Vec<u64> = Vec::with_capacity(SKETCH_CAPACITY);
        let (mut i, mut j) = (0usize, 0usize);
        let mut matches = 0usize;
        while union_bottom.len() < SKETCH_CAPACITY
            && (i < self.hashes.len() || j < other.hashes.len())
        {
            let a = self.hashes.get(i).copied();
            let b = other.hashes.get(j).copied();
            match (a, b) {
                (Some(a), Some(b)) if a == b => {
                    union_bottom.push(a);
                    matches += 1;
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    union_bottom.push(a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    union_bottom.push(b);
                    j += 1;
                }
                (Some(a), None) => {
                    union_bottom.push(a);
                    i += 1;
                }
                (None, Some(b)) => {
                    union_bottom.push(b);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        if union_bottom.is_empty() {
            return 0.0;
        }
        let jaccard = matches as f64 / union_bottom.len() as f64;
        let intersection = jaccard * (self.size + other.size) as f64 / (1.0 + jaccard);
        (intersection / self.size.max(other.size) as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParisConfig;
    use crate::iteration::Aligner;
    use crate::owned::{AlignedPairSnapshot, OwnedAlignment};
    use crate::view::MappedPairSnapshot;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn snapshot(n: usize) -> AlignedPairSnapshot {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..n {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
        }
        let (kb1, kb2) = (a.build(), b.build());
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        AlignedPairSnapshot::new(kb1, kb2, owned)
    }

    #[test]
    fn summary_is_identical_across_image_formats() {
        let dir = std::env::temp_dir().join("paris_quality_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = snapshot(6);
        let v1 = dir.join("q_v1.snap");
        let v2 = dir.join("q_v2.snap");
        snap.save(&v1).unwrap();
        MappedPairSnapshot::save_v2(&snap, &v2).unwrap();
        let d = PairImage::load(&v1).unwrap();
        let m = PairImage::load(&v2).unwrap();

        let (qd, qm) = (QualitySummary::of_image(&d), QualitySummary::of_image(&m));
        for q in [&qd, &qm] {
            assert_eq!(q.instances_kb1, 6);
            assert_eq!(q.assigned_instances, 6);
            assert!((q.instance_coverage - 1.0).abs() < 1e-12);
            assert_eq!(q.scores.count, 6);
            assert!(q.aligned_relations_1to2 >= 1, "{q:?}");
            assert!(q.converged);
        }
        assert_eq!(qd.scores.buckets, qm.scores.buckets);
        assert_eq!(qd.aligned_relations_1to2, qm.aligned_relations_1to2);
        assert_eq!(qd.aligned_relations_2to1, qm.aligned_relations_2to1);
        assert_eq!(
            AssignmentSketch::of_image(&d),
            AssignmentSketch::of_image(&m)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn agreement_is_exact_for_small_assignments() {
        let a = AssignmentSketch::from_pairs((0..20).map(|_| ("http://a/x", "http://b/x")));
        // 20 identical pairs hash to one value; the sketch holds the set.
        assert_eq!(a.hashes().len(), 1);

        let pairs: Vec<(String, String)> = (0..100)
            .map(|i| (format!("http://a/p{i}"), format!("http://b/q{i}")))
            .collect();
        let full =
            AssignmentSketch::from_pairs(pairs.iter().map(|(l, r)| (l.as_str(), r.as_str())));
        assert_eq!(full.size(), 100);
        assert!((full.agreement(&full) - 1.0).abs() < 1e-12);

        // Perturb 10 of 100 assignments: agreement drops to 0.90.
        let perturbed: Vec<(String, String)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (l, r))| {
                if i < 10 {
                    (l.clone(), format!("http://b/other{i}"))
                } else {
                    (l.clone(), r.clone())
                }
            })
            .collect();
        let drifted =
            AssignmentSketch::from_pairs(perturbed.iter().map(|(l, r)| (l.as_str(), r.as_str())));
        let agreement = full.agreement(&drifted);
        assert!((agreement - 0.90).abs() < 1e-9, "{agreement}");
        assert!(agreement < DRIFT_AGREEMENT);

        // Perturbing 2% stays above the drift threshold.
        let near: Vec<(String, String)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (l, r))| {
                if i < 2 {
                    (l.clone(), format!("http://b/other{i}"))
                } else {
                    (l.clone(), r.clone())
                }
            })
            .collect();
        let near = AssignmentSketch::from_pairs(near.iter().map(|(l, r)| (l.as_str(), r.as_str())));
        assert!(full.agreement(&near) >= DRIFT_AGREEMENT);
    }

    #[test]
    fn agreement_handles_empty_and_disjoint() {
        let empty = AssignmentSketch::from_pairs(std::iter::empty());
        assert!((empty.agreement(&empty) - 1.0).abs() < 1e-12);
        let a = AssignmentSketch::from_pairs([("http://a/1", "http://b/1")]);
        assert_eq!(empty.agreement(&a), 0.0);
        assert_eq!(a.agreement(&empty), 0.0);
        let b = AssignmentSketch::from_pairs([("http://a/2", "http://b/2")]);
        assert_eq!(a.agreement(&b), 0.0);
    }

    #[test]
    fn oversized_assignments_estimate_within_tolerance() {
        let n = 20_000usize;
        let pairs: Vec<(String, String)> = (0..n)
            .map(|i| (format!("http://a/p{i}"), format!("http://b/q{i}")))
            .collect();
        let a = AssignmentSketch::from_pairs(pairs.iter().map(|(l, r)| (l.as_str(), r.as_str())));
        assert_eq!(a.hashes().len(), SKETCH_CAPACITY);
        // 10% of assignments replaced.
        let perturbed: Vec<(String, String)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (l, r))| {
                if i % 10 == 0 {
                    (l.clone(), format!("http://b/other{i}"))
                } else {
                    (l.clone(), r.clone())
                }
            })
            .collect();
        let b =
            AssignmentSketch::from_pairs(perturbed.iter().map(|(l, r)| (l.as_str(), r.as_str())));
        let agreement = a.agreement(&b);
        assert!(
            (agreement - 0.90).abs() < 0.05,
            "estimated {agreement}, true 0.90"
        );
        assert!((a.agreement(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sketch_round_trips_through_parts() {
        let a = AssignmentSketch::from_pairs([
            ("http://a/1", "http://b/1"),
            ("http://a/2", "http://b/2"),
        ]);
        let rebuilt = AssignmentSketch::from_parts(a.size(), a.hashes().to_vec());
        assert_eq!(a, rebuilt);
    }

    #[test]
    fn result_and_image_sketches_agree() {
        let dir = std::env::temp_dir().join("paris_quality_sketch_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = snapshot(5);
        let path = dir.join("pair.snap");
        snap.save(&path).unwrap();
        let image = PairImage::load(&path).unwrap();
        let from_image = AssignmentSketch::of_image(&image);

        let result = Aligner::new(&snap.kb1, &snap.kb2, ParisConfig::default()).run();
        let from_result = AssignmentSketch::of_result(&result);
        assert!((from_image.agreement(&from_result) - 1.0).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }
}
