//! Algorithm configuration (paper §5.4).
//!
//! The paper's claim is that PARIS has *no dataset-dependent tuning
//! parameters*: only the bootstrap value θ (whose choice provably does not
//! affect the final scores — reproduced by the `theta_sweep` bench) and the
//! application-dependent literal similarity function. Everything else here
//! toggles the design alternatives evaluated in §6.3 so the ablation
//! benches can flip them; the defaults are exactly the paper's choices.

use paris_literals::LiteralSimilarity;

/// Configuration of one PARIS run. `Default` reproduces the paper's setup.
#[derive(Clone, Debug)]
pub struct ParisConfig {
    /// Bootstrap value for `Pr(r ⊆ r′)` in the very first iteration
    /// (§5.1). Paper value: 0.1. §6.3 shows (and the `theta_sweep` bench
    /// reproduces) that the final scores do not depend on it.
    pub theta: f64,
    /// Truncation threshold: equivalence probabilities below it are
    /// treated as zero and not stored (§5.2). In the bootstrap iteration
    /// all scores are scaled by θ, so the effective cutoff there is
    /// `2·θ·truncation` (≈ the score of a single shared value of a
    /// fully inverse-functional relation is `2θ−θ²`); this keeps the
    /// truncation meaningful for any θ and preserves θ-independence.
    pub truncation: f64,
    /// The clamped literal-equivalence function (§5.3).
    /// Paper default: identity after numeric normalization.
    pub literal_similarity: LiteralSimilarity,
    /// Use Eq. (14) (positive *and* negative evidence) instead of Eq. (13)
    /// (positive only). Paper default: off — "Equation (4) suffices in
    /// practice" (§4.1, §6.3 experiment 3).
    pub negative_evidence: bool,
    /// Propagate *all* equivalence probabilities of the previous iteration
    /// instead of only those of the maximal assignment. Paper default: off;
    /// turning it on "changed the results only marginally" but costs an
    /// order of magnitude of runtime (§5.2, §6.3 experiment 2).
    pub propagate_all_equalities: bool,
    /// Cap on the number of pairs evaluated per relation in Eq. (12) and
    /// per class in Eq. (17). Paper value: 10 000 (§5.2).
    pub max_pairs: usize,
    /// Hard iteration cap (the paper always converged "after a few
    /// iterations"; 4 on the real-world datasets).
    pub max_iterations: usize,
    /// Convergence: stop once fewer than this fraction of instances change
    /// their maximal assignment between iterations. Paper: 1 % (§6.1).
    ///
    /// (The Appendix-A functionality variant is a property of the
    /// [`Kb`](paris_kb::Kb) — see
    /// [`Kb::set_functionality_variant`](paris_kb::Kb::set_functionality_variant)
    /// — because functionalities are computed once per ontology, §5.1.)
    pub convergence_change: f64,
    /// Progressive dampening factor in `[0, 1)` (paper §5.1: "one could
    /// always enforce convergence of such iterations by introducing a
    /// progressively increasing dampening factor"). At iteration `k ≥ 2`
    /// the fresh scores are blended with the previous iteration's as
    /// `(1 − d_k)·new + d_k·old` with `d_k = damping · (1 − 1/k)`, so the
    /// brake tightens as the iteration proceeds. `0` (the paper's actual
    /// setting — their runs converged without it) disables blending.
    pub damping: f64,
    /// Shard the per-instance computation across this many threads
    /// (`0` = all available cores, `1` = sequential). Results are
    /// independent of the thread count.
    pub threads: usize,
}

impl Default for ParisConfig {
    fn default() -> Self {
        ParisConfig {
            theta: 0.1,
            truncation: 0.1,
            literal_similarity: LiteralSimilarity::Identity,
            negative_evidence: false,
            propagate_all_equalities: false,
            max_pairs: 10_000,
            max_iterations: 10,
            convergence_change: 0.01,
            damping: 0.0,
            threads: 0,
        }
    }
}

impl ParisConfig {
    /// Builder-style: set θ.
    #[must_use]
    pub fn with_theta(mut self, theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "θ must be in (0, 1)");
        self.theta = theta;
        self
    }

    /// Builder-style: set the truncation threshold (§5.2).
    #[must_use]
    pub fn with_truncation(mut self, truncation: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&truncation),
            "truncation must be in [0, 1)"
        );
        self.truncation = truncation;
        self
    }

    /// The effective truncation cutoff for an instance pass:
    /// θ-scaled while bootstrapping, plain afterwards.
    pub fn effective_cutoff(&self, bootstrap: bool) -> f64 {
        if bootstrap {
            2.0 * self.theta * self.truncation
        } else {
            self.truncation
        }
    }

    /// Builder-style: set the literal similarity function.
    #[must_use]
    pub fn with_literal_similarity(mut self, sim: LiteralSimilarity) -> Self {
        self.literal_similarity = sim;
        self
    }

    /// Builder-style: toggle negative evidence (Eq. 14).
    #[must_use]
    pub fn with_negative_evidence(mut self, on: bool) -> Self {
        self.negative_evidence = on;
        self
    }

    /// Builder-style: toggle full-probability propagation (§6.3 exp. 2).
    #[must_use]
    pub fn with_propagate_all(mut self, on: bool) -> Self {
        self.propagate_all_equalities = on;
        self
    }

    /// Builder-style: set the iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one iteration");
        self.max_iterations = n;
        self
    }

    /// Builder-style: set the progressive dampening factor (§5.1).
    #[must_use]
    pub fn with_damping(mut self, damping: f64) -> Self {
        assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
        self.damping = damping;
        self
    }

    /// The effective dampening weight `d_k` at iteration `k` (1-based):
    /// zero in the first iteration, approaching `damping` from below.
    pub fn damping_at(&self, iteration: usize) -> f64 {
        if iteration < 2 {
            0.0
        } else {
            self.damping * (1.0 - 1.0 / iteration as f64)
        }
    }

    /// Builder-style: set thread count (`1` forces sequential execution).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ParisConfig::default();
        assert_eq!(c.theta, 0.1);
        assert_eq!(c.literal_similarity, LiteralSimilarity::Identity);
        assert!(!c.negative_evidence);
        assert!(!c.propagate_all_equalities);
        assert_eq!(c.max_pairs, 10_000);
        assert_eq!(c.convergence_change, 0.01);
    }

    #[test]
    fn builder_chain() {
        let c = ParisConfig::default()
            .with_theta(0.05)
            .with_negative_evidence(true)
            .with_propagate_all(true)
            .with_max_iterations(3)
            .with_threads(2);
        assert_eq!(c.theta, 0.05);
        assert!(c.negative_evidence);
        assert!(c.propagate_all_equalities);
        assert_eq!(c.max_iterations, 3);
        assert_eq!(c.effective_threads(), 2);
    }

    #[test]
    #[should_panic(expected = "θ must be in (0, 1)")]
    fn theta_must_be_probability() {
        let _ = ParisConfig::default().with_theta(1.5);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(ParisConfig::default().effective_threads() >= 1);
    }
}
