//! The PARIS fixed-point driver (paper §5.1).
//!
//! "First, we compute the probabilities of equivalences of instances.
//! Then, we compute the probabilities for sub-relationships. These two
//! steps are iterated until convergence. In a last step, the equivalences
//! between classes are computed … from the final assignment. To bootstrap
//! the algorithm in the very first step, we set Pr(r ⊆ r′) = θ."
//!
//! Functionalities are computed once per ontology up front (they live on
//! the [`Kb`]); literal equivalences are clamped once up front (the
//! [`LiteralBridge`]); convergence is declared when fewer than
//! `convergence_change` of the instances change their maximal assignment.

use paris_kb::{EntityId, Kb};
use paris_obs::trace::{AlignEvent, NullSink, TraceSink};
use paris_rdf::Iri;

use crate::config::ParisConfig;
use crate::equiv::{CandidateView, EquivStore};
use crate::instance::instance_pass;
use crate::literal_bridge::LiteralBridge;
use crate::subclass::{subclass_pass, ClassAlignment};
use crate::subrel::{subrelation_pass, SubrelStore};

/// Measurements of one fixed-point iteration (one row of the paper's
/// Tables 3 and 5).
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Instances whose maximal assignment differs from the previous
    /// iteration.
    pub changed: usize,
    /// `changed` relative to the number of currently assigned instances
    /// (the paper's "change to previous" column).
    pub changed_fraction: f64,
    /// Non-zero instance equivalences stored after this iteration.
    pub instance_equivalences: usize,
    /// KB-1 instances that have at least one candidate.
    pub assigned_instances: usize,
    /// Stored sub-relation score entries (both directions).
    pub subrelation_entries: usize,
    /// Wall-clock seconds of the instance pass.
    pub instance_seconds: f64,
    /// Wall-clock seconds of the two sub-relation passes.
    pub subrelation_seconds: f64,
}

/// The complete output of a PARIS run.
pub struct AlignmentResult<'a> {
    /// The first (source) ontology.
    pub kb1: &'a Kb,
    /// The second (target) ontology.
    pub kb2: &'a Kb,
    /// Final instance-equivalence probabilities.
    pub instances: EquivStore,
    /// Final sub-relation scores (both directions).
    pub subrelations: SubrelStore,
    /// Class-inclusion scores (both directions), computed from the final
    /// assignment.
    pub classes: ClassAlignment,
    /// Per-iteration measurements, in order.
    pub iterations: Vec<IterationStats>,
    /// Number of clamped literal-equivalence pairs.
    pub literal_pairs: usize,
    /// Wall-clock seconds of the final class pass.
    pub class_seconds: f64,
    /// The convergence threshold the run was configured with.
    pub(crate) convergence_change_used: f64,
    /// The full configuration of the run (needed to rebuild candidate
    /// views for explanations).
    pub(crate) config: ParisConfig,
}

impl AlignmentResult<'_> {
    /// The final maximal assignment restricted to instances:
    /// `(x, x′, Pr)` triples, one per assigned KB-1 instance.
    pub fn instance_pairs(&self) -> Vec<(EntityId, EntityId, f64)> {
        let assign = self.instances.maximal_assignment();
        self.kb1
            .instances()
            .filter_map(|x| assign[x.index()].map(|(x2, p)| (x, x2, p)))
            .collect()
    }

    /// Looks up the maximal assignment of one KB-1 instance by IRI.
    pub fn instance_alignment_by_iri(&self, iri: &str) -> Option<Iri> {
        let x = self.kb1.entity_by_iri(iri)?;
        let row = self.instances.candidates(x);
        let best = row
            .iter()
            .copied()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })?;
        self.kb2.iri(best.0).cloned()
    }

    /// Explains why the final run scores `iri1 ≡ iri2` (or would): the
    /// individual Eq. 13 evidence factors, strongest first. Returns
    /// `None` when either IRI is unknown. See
    /// [`Explanation::render`](crate::explain::Explanation::render) for a
    /// printable form.
    pub fn explain(&self, iri1: &str, iri2: &str) -> Option<crate::explain::Explanation> {
        let x = self.kb1.entity_by_iri(iri1)?;
        let x2 = self.kb2.entity_by_iri(iri2)?;
        let bridge = LiteralBridge::build(self.kb1, self.kb2, &self.config.literal_similarity);
        let view = forward_view(self.kb1, &self.instances, &bridge, &self.config, true);
        Some(crate::explain::explain_pair(
            self.kb1,
            self.kb2,
            x,
            x2,
            &view,
            &self.subrelations,
            &self.config,
        ))
    }

    /// Renders the final instance alignment as `owl:sameAs` statements —
    /// the Semantic Web interlinking format the paper's introduction
    /// motivates. Only alignments with probability ≥ `threshold` are
    /// emitted, one triple per assigned KB-1 instance.
    pub fn sameas_triples(&self, threshold: f64) -> Vec<paris_rdf::Triple> {
        self.instance_pairs()
            .into_iter()
            .filter(|&(_, _, p)| p >= threshold)
            .filter_map(|(x, x2, _)| {
                Some(paris_rdf::Triple::new(
                    self.kb1.iri(x)?.clone(),
                    paris_rdf::vocab::OWL_SAME_AS,
                    self.kb2.iri(x2)?.clone(),
                ))
            })
            .collect()
    }

    /// Sub-relation alignments KB1 → KB2 above `threshold`, best target
    /// first, rendered with relation names (`name` / `name⁻`).
    pub fn relation_alignments_1to2(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let mut out: Vec<(String, String, f64)> = self
            .subrelations
            .alignments_1to2()
            .filter(|&(_, _, p)| p >= threshold)
            .map(|(r1, r2, p)| {
                (
                    self.kb1.relation_display(r1),
                    self.kb2.relation_display(r2),
                    p,
                )
            })
            .collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Sub-relation alignments KB2 → KB1 above `threshold`.
    pub fn relation_alignments_2to1(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let mut out: Vec<(String, String, f64)> = self
            .subrelations
            .alignments_2to1()
            .filter(|&(_, _, p)| p >= threshold)
            .map(|(r2, r1, p)| {
                (
                    self.kb2.relation_display(r2),
                    self.kb1.relation_display(r1),
                    p,
                )
            })
            .collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Convergence: did the run stop because fewer than the configured
    /// fraction of instances changed their maximal assignment (as opposed
    /// to hitting the iteration cap)?
    pub fn converged(&self) -> bool {
        self.iterations.len() > 1
            && self
                .iterations
                .last()
                .is_some_and(|s| s.changed_fraction < self.convergence_change_used)
    }
}

/// Aligns two knowledge bases with PARIS.
///
/// ```
/// use paris_core::{Aligner, ParisConfig};
/// use paris_kb::KbBuilder;
/// use paris_rdf::Literal;
///
/// let mut a = KbBuilder::new("left");
/// a.add_literal_fact("http://a/alice", "http://a/email", Literal::plain("alice@x.org"));
/// let mut b = KbBuilder::new("right");
/// b.add_literal_fact("http://b/asmith", "http://b/mail", Literal::plain("alice@x.org"));
/// let (kb1, kb2) = (a.build(), b.build());
///
/// let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
/// assert_eq!(
///     result.instance_alignment_by_iri("http://a/alice").unwrap().as_str(),
///     "http://b/asmith",
/// );
/// ```
pub struct Aligner<'a> {
    kb1: &'a Kb,
    kb2: &'a Kb,
    config: ParisConfig,
}

impl<'a> Aligner<'a> {
    /// Creates an aligner over two frozen KBs.
    pub fn new(kb1: &'a Kb, kb2: &'a Kb, config: ParisConfig) -> Self {
        Aligner { kb1, kb2, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ParisConfig {
        &self.config
    }

    /// Runs to convergence (or the iteration cap) and computes the final
    /// class alignment.
    pub fn run(&self) -> AlignmentResult<'a> {
        self.run_with_progress(|_| {})
    }

    /// Like [`run`](Self::run), invoking `progress` after every iteration —
    /// used by the benches to print per-iteration table rows.
    pub fn run_with_progress(&self, progress: impl FnMut(&IterationStats)) -> AlignmentResult<'a> {
        self.run_inner(progress, &NullSink, None, None, None)
    }

    /// Like [`run`](Self::run), emitting one [`AlignEvent`] per fixpoint
    /// iteration to `sink` — the observability form of the paper's
    /// per-iteration tables (dirty rows, assignment churn, score
    /// movement, elapsed time).
    pub fn run_traced(&self, sink: &dyn TraceSink) -> AlignmentResult<'a> {
        self.run_inner(|_| {}, sink, None, None, None)
    }

    /// Like [`run_traced`](Self::run_traced), additionally recording a
    /// span tree into `collector`: one `iteration` span per fixpoint
    /// round (hung under `parent`) with `instance_pass` /
    /// `subrelation_pass` children carrying entity counts and dirty-set
    /// sizes, plus a final `class_pass` span. The collector can be
    /// snapshotted live mid-run, which is how `GET /v1/jobs/<id>`
    /// surfaces alignment progress.
    pub fn run_spanned(
        &self,
        sink: &dyn TraceSink,
        collector: &paris_obs::span::SpanCollector,
        parent: paris_obs::span::SpanId,
    ) -> AlignmentResult<'a> {
        self.run_inner(|_| {}, sink, Some(collector), Some(parent), None)
    }

    /// Like [`run_spanned`](Self::run_spanned), additionally pushing one
    /// [`paris_obs::series::IterationStats`] point per fixpoint round
    /// into `series`: dirty count, assignment churn, pair turnover
    /// (new/dropped assignments), the per-mille distribution of
    /// assignment probabilities, and per-pass durations. The series can
    /// be snapshotted concurrently — it is the live convergence curve
    /// `GET /v1/jobs/<id>` renders while the job runs.
    pub fn run_observed(
        &self,
        sink: &dyn TraceSink,
        collector: &paris_obs::span::SpanCollector,
        parent: paris_obs::span::SpanId,
        series: &paris_obs::series::RunSeries,
    ) -> AlignmentResult<'a> {
        self.run_inner(|_| {}, sink, Some(collector), Some(parent), Some(series))
    }

    fn run_inner(
        &self,
        mut progress: impl FnMut(&IterationStats),
        sink: &dyn TraceSink,
        collector: Option<&paris_obs::span::SpanCollector>,
        span_parent: Option<paris_obs::span::SpanId>,
        series: Option<&paris_obs::series::RunSeries>,
    ) -> AlignmentResult<'a> {
        let (kb1, kb2, config) = (self.kb1, self.kb2, &self.config);
        // Every iteration span hangs under `span_parent` (the caller's
        // enclosing span) or, absent one, directly under the collector
        // root.
        let spanner = collector.map(|c| (c, span_parent.unwrap_or(c.root().span)));
        let bridge = LiteralBridge::build(kb1, kb2, &config.literal_similarity);
        let literal_pairs = bridge.num_pairs();

        let mut equiv = EquivStore::new(kb1.num_entities(), kb2.num_entities());
        let mut subrel = SubrelStore::bootstrap(
            config.theta,
            kb1.num_directed_relations(),
            kb2.num_directed_relations(),
        );
        let mut iterations = Vec::new();
        let mut prev_score_sum = 0.0f64;
        // Whether `equiv`'s probabilities were computed with informed
        // (non-bootstrap) sub-relation scores — gates Eq. 14.
        let mut equiv_informed = false;

        for iteration in 1..=config.max_iterations {
            let mut iter_span = spanner.map(|(c, parent)| {
                let mut s = c.begin_child("iteration", parent);
                s.attr_int("iteration", iteration as u64);
                s
            });

            // ---- instance pass (uses the previous iteration's equalities)
            let mut pass_span = match (spanner, &iter_span) {
                (Some((c, _)), Some(i)) => Some(c.begin_child("instance_pass", i.id)),
                _ => None,
            };
            let t0 = paris_obs::span::now_ns();
            let cand = forward_view(kb1, &equiv, &bridge, config, equiv_informed);
            let mut rows = instance_pass(kb1, kb2, &cand, &subrel, config);
            let damping = config.damping_at(iteration);
            if damping > 0.0 {
                blend_rows(&mut rows, &equiv, damping, config.truncation);
            }
            let new_equiv = EquivStore::from_rows(rows, kb2.num_entities());
            let instance_seconds = paris_obs::span::seconds_since(t0);

            let changed = equiv.assignment_changes(&new_equiv);
            // The previous assignment is only materialized when someone
            // is watching the series — `run()`'s cost is unchanged.
            let prev_assignment = series.map(|_| equiv.maximal_assignment());
            let assignment = new_equiv.maximal_assignment();
            let assigned = assignment.iter().filter(|a| a.is_some()).count();
            let score_sum: f64 = assignment.iter().flatten().map(|&(_, p)| p).sum();
            equiv = new_equiv;
            equiv_informed = !subrel.is_bootstrap();
            if let (Some((c, _)), Some(mut s)) = (spanner, pass_span.take()) {
                // A full pass rescores every KB-1 entity: that *is* the
                // dirty set.
                s.attr_int("dirty", kb1.num_entities() as u64);
                s.attr_int("changed", changed as u64);
                s.attr_int("assigned", assigned as u64);
                s.attr_int("equivalences", equiv.num_pairs() as u64);
                c.finish(s);
            }

            // ---- sub-relation passes (use the fresh equalities)
            let mut pass_span = match (spanner, &iter_span) {
                (Some((c, _)), Some(i)) => Some(c.begin_child("subrelation_pass", i.id)),
                _ => None,
            };
            let t1 = paris_obs::span::now_ns();
            let cand_fwd = forward_view(kb1, &equiv, &bridge, config, equiv_informed);
            let one = subrelation_pass(kb1, kb2, &cand_fwd, config);
            let cand_rev = reverse_view(kb2, &equiv, &bridge, config, equiv_informed);
            let two = subrelation_pass(kb2, kb1, &cand_rev, config);
            subrel = SubrelStore::from_rows(one, two);
            let subrelation_seconds = paris_obs::span::seconds_since(t1);
            if let (Some((c, _)), Some(mut s)) = (spanner, pass_span.take()) {
                s.attr_int("entries", subrel.num_entries() as u64);
                c.finish(s);
            }

            let stats = IterationStats {
                iteration,
                changed,
                changed_fraction: changed as f64 / assigned.max(1) as f64,
                instance_equivalences: equiv.num_pairs(),
                assigned_instances: assigned,
                subrelation_entries: subrel.num_entries(),
                instance_seconds,
                subrelation_seconds,
            };
            if let Some(series) = series {
                let (mut new_pairs, mut dropped_pairs) = (0u64, 0u64);
                if let Some(prev) = &prev_assignment {
                    for (p, n) in prev.iter().zip(assignment.iter()) {
                        match (p.is_some(), n.is_some()) {
                            (false, true) => new_pairs += 1,
                            (true, false) => dropped_pairs += 1,
                            _ => {}
                        }
                    }
                }
                series.push(paris_obs::series::IterationStats {
                    iteration,
                    dirty: kb1.num_entities() as u64,
                    changed: changed as u64,
                    new_pairs,
                    dropped_pairs,
                    assigned: assigned as u64,
                    scores: paris_obs::series::score_histogram(
                        assignment.iter().flatten().map(|&(_, p)| p),
                    ),
                    instance_us: (instance_seconds * 1e6) as u64,
                    subrelation_us: (subrelation_seconds * 1e6) as u64,
                });
            }
            // Convergence is the paper's criterion — the maximal
            // assignment stopped changing — strengthened by requiring the
            // assignment *scores* to have stabilized as well: after
            // iteration 1 the scores are still θ-scaled, so a tiny θ
            // would otherwise look converged one round too early even
            // though the next round (with computed sub-relation scores)
            // still adds matches. This is what makes the §6.3
            // θ-independence hold for extreme θ.
            let scores_stable = prev_score_sum > 0.0
                && (score_sum - prev_score_sum).abs() / prev_score_sum
                    < config.convergence_change.max(1e-6);
            // A full pass has no per-row dirty deltas; the relative
            // movement of the total assignment score is its score-delta
            // signal (the same quantity convergence watches).
            let score_delta = (score_sum - prev_score_sum).abs() / prev_score_sum.max(1.0);
            prev_score_sum = score_sum;
            let done = iteration > 1
                && stats.changed_fraction < config.convergence_change
                && scores_stable;
            progress(&stats);
            sink.event(&AlignEvent {
                phase: "align",
                iteration,
                dirty: kb1.num_entities(),
                churn: changed,
                max_delta: score_delta,
                elapsed_secs: stats.instance_seconds + stats.subrelation_seconds,
            });
            iterations.push(stats);
            if let (Some((c, _)), Some(mut s)) = (spanner, iter_span.take()) {
                s.attr_int("churn", changed as u64);
                s.attr_f64("score_delta", score_delta);
                c.finish(s);
            }
            if done {
                break;
            }
        }

        // ---- final class pass (§5.1: "in a last step")
        let mut class_span = spanner.map(|(c, parent)| c.begin_child("class_pass", parent));
        let t2 = paris_obs::span::now_ns();
        let classes = subclass_pass(kb1, kb2, &equiv, config);
        let class_seconds = paris_obs::span::seconds_since(t2);
        if let (Some((c, _)), Some(mut s)) = (spanner, class_span.take()) {
            s.attr_int("classes_kb1", kb1.num_classes() as u64);
            s.attr_int("classes_kb2", kb2.num_classes() as u64);
            c.finish(s);
        }

        AlignmentResult {
            kb1,
            kb2,
            instances: equiv,
            subrelations: subrel,
            classes,
            iterations,
            literal_pairs,
            class_seconds,
            convergence_change_used: config.convergence_change,
            config: config.clone(),
        }
    }
}

/// Blends freshly computed equivalence rows with the previous iteration's
/// scores: `(1 − d)·new + d·old` over the union of candidates (a candidate
/// absent from one side contributes 0 there). Scores falling below the
/// truncation threshold are dropped, as everywhere else.
fn blend_rows(
    rows: &mut [Vec<(EntityId, f64)>],
    previous: &EquivStore,
    damping: f64,
    truncation: f64,
) {
    use paris_kb::FxHashMap;
    let mut merged: FxHashMap<EntityId, f64> = FxHashMap::default();
    for (i, row) in rows.iter_mut().enumerate() {
        let old = previous.candidates(EntityId::from_index(i));
        if old.is_empty() {
            for (_, p) in row.iter_mut() {
                *p *= 1.0 - damping;
            }
            row.retain(|&(_, p)| p >= truncation);
            continue;
        }
        merged.clear();
        for &(e, p) in row.iter() {
            merged.insert(e, (1.0 - damping) * p);
        }
        for &(e, p) in old {
            *merged.entry(e).or_insert(0.0) += damping * p;
        }
        row.clear();
        row.extend(
            merged
                .iter()
                .filter(|&(_, &p)| p >= truncation)
                .map(|(&e, &p)| (e, p)),
        );
        row.sort_unstable_by_key(|&(e, _)| e);
    }
}

/// KB1 → KB2 candidates: previous instance equalities (maximal assignment
/// unless `propagate_all_equalities`, §5.2) merged with the literal bridge.
pub(crate) fn forward_view(
    kb1: &Kb,
    equiv: &EquivStore,
    bridge: &LiteralBridge,
    config: &ParisConfig,
    informed: bool,
) -> CandidateView {
    let mut rows: Vec<Vec<(EntityId, f64)>> = vec![Vec::new(); kb1.num_entities()];
    if config.propagate_all_equalities {
        for x in kb1.entities() {
            let cands = equiv.candidates(x);
            if !cands.is_empty() {
                rows[x.index()] = cands.to_vec();
            }
        }
    } else {
        for (i, best) in equiv.maximal_assignment().into_iter().enumerate() {
            if let Some((x2, p)) = best {
                rows[i].push((x2, p));
            }
        }
    }
    for l in kb1.literals() {
        let cands = bridge.candidates(l);
        if !cands.is_empty() {
            rows[l.index()] = cands.to_vec();
        }
    }
    if informed {
        CandidateView::new(rows)
    } else {
        CandidateView::uninformed(rows)
    }
}

/// KB2 → KB1 candidates (for the reverse sub-relation pass).
pub(crate) fn reverse_view(
    kb2: &Kb,
    equiv: &EquivStore,
    bridge: &LiteralBridge,
    config: &ParisConfig,
    informed: bool,
) -> CandidateView {
    let mut rows: Vec<Vec<(EntityId, f64)>> = vec![Vec::new(); kb2.num_entities()];
    if config.propagate_all_equalities {
        for x2 in kb2.entities() {
            let cands = equiv.candidates_rev(x2);
            if !cands.is_empty() {
                rows[x2.index()] = cands.to_vec();
            }
        }
    } else {
        for (i, best) in equiv.maximal_assignment_rev().into_iter().enumerate() {
            if let Some((x1, p)) = best {
                rows[i].push((x1, p));
            }
        }
    }
    for l2 in kb2.literals() {
        let cands = bridge.candidates_rev(l2);
        if !cands.is_empty() {
            rows[l2.index()] = cands.to_vec();
        }
    }
    if informed {
        CandidateView::new(rows)
    } else {
        CandidateView::uninformed(rows)
    }
}

#[cfg(test)]
mod blend_tests {
    use super::*;

    fn e(i: usize) -> EntityId {
        EntityId::from_index(i)
    }

    /// `run_spanned` yields the same alignment as `run` and records one
    /// parent-linked span tree per iteration plus a final class pass.
    #[test]
    fn run_spanned_records_iteration_trees() {
        use paris_obs::span::{SpanCollector, SpanContext};
        use paris_rdf::Literal;

        let mut a = paris_kb::KbBuilder::new("left");
        a.add_literal_fact(
            "http://a/alice",
            "http://a/email",
            Literal::plain("alice@x.org"),
        );
        let mut b = paris_kb::KbBuilder::new("right");
        b.add_literal_fact(
            "http://b/asmith",
            "http://b/mail",
            Literal::plain("alice@x.org"),
        );
        let (kb1, kb2) = (a.build(), b.build());
        let aligner = Aligner::new(&kb1, &kb2, ParisConfig::default());

        let collector = SpanCollector::new(SpanContext::new_root());
        let root = collector.root();
        let result = aligner.run_spanned(&NullSink, &collector, root.span);
        assert_eq!(
            result
                .instance_alignment_by_iri("http://a/alice")
                .unwrap()
                .as_str(),
            "http://b/asmith"
        );

        let spans = collector.snapshot();
        let iters: Vec<_> = spans.iter().filter(|s| s.name == "iteration").collect();
        assert_eq!(iters.len(), result.iterations.len());
        for iter in &iters {
            assert_eq!(iter.parent, Some(root.span));
            assert!(iter.end_ns >= iter.start_ns);
            let passes: Vec<_> = spans.iter().filter(|s| s.parent == Some(iter.id)).collect();
            assert!(
                passes.iter().any(|s| s.name == "instance_pass"),
                "{passes:?}"
            );
            assert!(
                passes.iter().any(|s| s.name == "subrelation_pass"),
                "{passes:?}"
            );
            // The instance pass reports its dirty set (all KB-1 entities).
            let instance = passes.iter().find(|s| s.name == "instance_pass").unwrap();
            assert!(instance.attrs.iter().any(|(k, v)| *k == "dirty"
                && *v == paris_obs::span::AttrValue::Int(kb1.num_entities() as u64)));
        }
        let class = spans
            .iter()
            .find(|s| s.name == "class_pass")
            .expect("class pass span");
        assert_eq!(class.parent, Some(root.span));
        // Every span shares the collector's trace.
        assert!(spans.iter().all(|s| s.trace == root.trace));
    }

    /// `run_observed` fills the convergence series: one point per
    /// iteration, scores per-mille, pair turnover consistent with the
    /// paper-table stats.
    #[test]
    fn run_observed_fills_the_series() {
        use paris_obs::series::RunSeries;
        use paris_obs::span::{SpanCollector, SpanContext};
        use paris_rdf::Literal;

        let mut a = paris_kb::KbBuilder::new("left");
        let mut b = paris_kb::KbBuilder::new("right");
        for i in 0..5 {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
        }
        let (kb1, kb2) = (a.build(), b.build());
        let aligner = Aligner::new(&kb1, &kb2, ParisConfig::default());
        let collector = SpanCollector::new(SpanContext::new_root());
        let series = RunSeries::new();
        let result = aligner.run_observed(&NullSink, &collector, collector.root().span, &series);

        let points = series.snapshot();
        assert_eq!(points.len(), result.iterations.len());
        for (point, stats) in points.iter().zip(&result.iterations) {
            assert_eq!(point.iteration, stats.iteration);
            assert_eq!(point.changed, stats.changed as u64);
            assert_eq!(point.assigned, stats.assigned_instances as u64);
            assert_eq!(point.dirty, kb1.num_entities() as u64);
            assert_eq!(point.scores.count, stats.assigned_instances as u64);
            assert!(point.scores.max <= 1000);
        }
        // Iteration 1 assigns everything fresh: all pairs are new.
        assert_eq!(points[0].new_pairs, points[0].assigned);
        assert_eq!(points[0].dropped_pairs, 0);
        // The run matches the unobserved one.
        assert_eq!(
            result
                .instance_alignment_by_iri("http://a/p3")
                .unwrap()
                .as_str(),
            "http://b/q3"
        );
    }

    #[test]
    fn blend_mixes_old_and_new() {
        let previous = EquivStore::from_rows(vec![vec![(e(0), 0.8)]], 2);
        let mut rows = vec![vec![(e(0), 0.4)]];
        blend_rows(&mut rows, &previous, 0.5, 0.0);
        assert!((rows[0][0].1 - 0.6).abs() < 1e-12, "{rows:?}");
    }

    #[test]
    fn blend_keeps_vanished_candidates_decayed() {
        // The fresh pass dropped the candidate; damping keeps a decayed
        // trace of the old score, which is exactly what suppresses
        // flip-flopping assignments.
        let previous = EquivStore::from_rows(vec![vec![(e(1), 0.9)]], 2);
        let mut rows = vec![vec![]];
        blend_rows(&mut rows, &previous, 0.5, 0.1);
        assert_eq!(rows[0], vec![(e(1), 0.45)]);
    }

    #[test]
    fn blend_scales_new_candidates_without_history() {
        let previous = EquivStore::new(1, 2);
        let mut rows = vec![vec![(e(0), 0.8)]];
        blend_rows(&mut rows, &previous, 0.25, 0.1);
        assert!((rows[0][0].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn blend_respects_truncation() {
        let previous = EquivStore::new(1, 2);
        let mut rows = vec![vec![(e(0), 0.15)]];
        blend_rows(&mut rows, &previous, 0.5, 0.1);
        assert!(rows[0].is_empty(), "0.075 < truncation 0.1: {rows:?}");
    }

    #[test]
    fn zero_damping_never_invoked() {
        let config = ParisConfig::default();
        assert_eq!(config.damping_at(1), 0.0);
        assert_eq!(config.damping_at(5), 0.0);
        let damped = ParisConfig::default().with_damping(0.6);
        assert_eq!(damped.damping_at(1), 0.0);
        assert!((damped.damping_at(2) - 0.3).abs() < 1e-12);
        assert!(damped.damping_at(10) < 0.6);
    }
}
