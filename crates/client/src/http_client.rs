//! A deliberately small HTTP/1.1 *client* over `std::net` — the mirror
//! image of `paris-server`'s hand-rolled server. [`HttpClient`] speaks
//! exactly the subset the daemon emits: `GET` (optionally conditional
//! via `If-None-Match`) and `POST` with a `Content-Length` body.
//!
//! Connections are kept alive between requests and transparently
//! re-established when the pool peer closed them (a poll loop sleeping
//! longer than the server's idle timeout would otherwise fail every
//! other cycle). Responses must be `Content-Length`-framed — which is
//! the only framing `paris-server` emits — and body reads are bounded
//! by a caller-supplied cap so a rogue upstream cannot balloon memory.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on one status or header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of response headers.
const MAX_HEADERS: usize = 100;

/// A parsed `http://host:port` upstream base.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Upstream {
    /// Host to connect to (name or address literal).
    pub host: String,
    /// TCP port (default 80).
    pub port: u16,
    /// The original URL, for display.
    pub display: String,
}

impl Upstream {
    /// Parses `http://host[:port][/]`. Only plain HTTP is supported —
    /// the workspace has no TLS implementation (see the trust model in
    /// the crate docs).
    pub fn parse(url: &str) -> Result<Upstream, String> {
        let display = url.trim_end_matches('/').to_owned();
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| format!("upstream URL '{url}' must start with http://"))?;
        let authority = rest.split('/').next().unwrap_or_default();
        if rest.len() > authority.len() && !rest[authority.len()..].trim_matches('/').is_empty() {
            return Err(format!(
                "upstream URL '{url}' must not carry a path (the sync protocol owns the routes)"
            ));
        }
        // Bracketed IPv6 literals carry colons inside the brackets.
        let (host, port) = if let Some(v6) = authority.strip_prefix('[') {
            let (host, after) = v6
                .split_once(']')
                .ok_or_else(|| format!("unclosed '[' in upstream URL '{url}'"))?;
            let port = match after.strip_prefix(':') {
                Some(p) => p.parse().map_err(|_| format!("bad port in '{url}'"))?,
                None if after.is_empty() => 80,
                None => return Err(format!("malformed authority in '{url}'")),
            };
            (format!("[{host}]"), port)
        } else {
            match authority.rsplit_once(':') {
                Some((h, p)) => (
                    h.to_owned(),
                    p.parse().map_err(|_| format!("bad port in '{url}'"))?,
                ),
                None => (authority.to_owned(), 80),
            }
        };
        if host.is_empty() {
            return Err(format!("upstream URL '{url}' has no host"));
        }
        Ok(Upstream {
            host,
            port,
            display,
        })
    }

    fn connect_target(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `ETag` value with surrounding quotes stripped.
    pub fn etag(&self) -> Option<&str> {
        self.header("etag")
            .map(|v| v.trim().trim_matches('"'))
            .filter(|v| !v.is_empty())
    }
}

/// A keep-alive HTTP/1.1 client pinned to one upstream.
pub struct HttpClient {
    upstream: Upstream,
    conn: Option<BufReader<TcpStream>>,
    timeout: Duration,
    extra_headers: Vec<(String, String)>,
}

impl HttpClient {
    /// A client for `upstream` with a per-I/O timeout of `timeout`.
    pub fn new(upstream: Upstream, timeout: Duration) -> HttpClient {
        HttpClient {
            upstream,
            conn: None,
            timeout,
            extra_headers: Vec::new(),
        }
    }

    /// The upstream this client talks to.
    pub fn upstream(&self) -> &Upstream {
        &self.upstream
    }

    /// Sets (or, with `None`, clears) an extra header sent with every
    /// subsequent request — the trace-propagation hook: callers set
    /// `traceparent` here before a fetch so the upstream daemon
    /// continues the same trace. Names and values must be header-safe
    /// (no CR/LF); values containing control bytes are rejected.
    pub fn set_header(&mut self, name: &str, value: Option<&str>) {
        self.extra_headers
            .retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        if let Some(value) = value {
            if name.bytes().any(|b| b.is_ascii_control())
                || value.bytes().any(|b| b.is_ascii_control())
            {
                return;
            }
            self.extra_headers.push((name.to_owned(), value.to_owned()));
        }
    }

    fn connect(&self) -> Result<BufReader<TcpStream>, String> {
        let target = self.upstream.connect_target();
        let stream = target
            .parse::<std::net::SocketAddr>()
            .map_or_else(
                |_| TcpStream::connect(&target),
                |addr| TcpStream::connect_timeout(&addr, self.timeout),
            )
            .map_err(|e| format!("connecting to {target}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| format!("configuring socket: {e}"))?;
        Ok(BufReader::new(stream))
    }

    /// One `GET`, with an optional `If-None-Match` validator. The body is
    /// rejected (without being buffered) when it would exceed `max_body`.
    ///
    /// A send/parse failure on a kept-alive connection is retried once on
    /// a fresh connection — the idle peer may simply have timed us out.
    pub fn get(
        &mut self,
        path: &str,
        if_none_match: Option<&str>,
        max_body: u64,
    ) -> Result<HttpResponse, String> {
        self.request("GET", path, if_none_match, None, max_body)
    }

    /// One `POST` with a `Content-Length`-framed body of the given
    /// content type.
    pub fn post(
        &mut self,
        path: &str,
        content_type: &str,
        body: &[u8],
        max_body: u64,
    ) -> Result<HttpResponse, String> {
        self.request("POST", path, None, Some((content_type, body)), max_body)
    }

    /// One request, retried once on a fresh connection when a kept-alive
    /// peer turned out to be stale. Both `GET` and `POST` against the
    /// daemon are idempotent enough to retry: the failure modes retried
    /// here are connection-level (the request never reached a handler).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        if_none_match: Option<&str>,
        body: Option<(&str, &[u8])>,
        max_body: u64,
    ) -> Result<HttpResponse, String> {
        let reused = self.conn.is_some();
        match self.try_request(method, path, if_none_match, body, max_body) {
            Ok(r) => Ok(r),
            Err(e) if reused => {
                self.conn = None;
                self.try_request(method, path, if_none_match, body, max_body)
                    .map_err(|e2| format!("{e2} (after stale-connection retry: {e})"))
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        if_none_match: Option<&str>,
        body: Option<(&str, &[u8])>,
        max_body: u64,
    ) -> Result<HttpResponse, String> {
        let mut conn = match self.conn.take() {
            Some(c) => c,
            None => self.connect()?,
        };
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n",
            self.upstream.host,
        );
        if let Some(v) = if_none_match {
            request.push_str(&format!("If-None-Match: \"{v}\"\r\n"));
        }
        for (name, value) in &self.extra_headers {
            request.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some((content_type, bytes)) = body {
            request.push_str(&format!(
                "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
                bytes.len()
            ));
        }
        request.push_str("\r\n");
        conn.get_mut()
            .write_all(request.as_bytes())
            .and_then(|()| conn.get_mut().write_all(body.map_or(&[][..], |(_, b)| b)))
            .map_err(|e| format!("sending {method} {path}: {e}"))?;
        let response =
            read_response(&mut conn, max_body).map_err(|e| format!("{method} {path}: {e}"))?;
        let closing = response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if !closing {
            self.conn = Some(conn);
        }
        Ok(response)
    }
}

fn read_line(r: &mut impl BufRead) -> Result<String, String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte).map_err(|e| format!("read: {e}"))? {
            0 => return Err("connection closed mid-response".into()),
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line).map_err(|_| "non-UTF-8 header line".into());
                }
                if line.len() >= MAX_LINE {
                    return Err("response header line too long".into());
                }
                line.push(byte[0]);
            }
        }
    }
}

/// Reads one `Content-Length`-framed response.
fn read_response(r: &mut impl BufRead, max_body: u64) -> Result<HttpResponse, String> {
    let status_line = read_line(r)?;
    let mut parts = status_line.split_whitespace();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(format!("not an HTTP/1.x response: '{status_line}'")),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err("too many response headers".into());
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header '{line}'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err("transfer-encoding responses are not supported".into());
    }
    let content_length: u64 = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse().map_err(|_| format!("bad content-length '{v}'"))?,
        // 304 and friends may legitimately omit the header entirely.
        None => 0,
    };
    if content_length > max_body {
        return Err(format!(
            "response body of {content_length} bytes exceeds the {max_body}-byte cap"
        ));
    }
    let mut body = vec![0u8; content_length as usize];
    r.read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_upstream_urls() {
        let u = Upstream::parse("http://127.0.0.1:7070").unwrap();
        assert_eq!((u.host.as_str(), u.port), ("127.0.0.1", 7070));
        let u = Upstream::parse("http://primary.internal/").unwrap();
        assert_eq!((u.host.as_str(), u.port), ("primary.internal", 80));
        let u = Upstream::parse("http://[::1]:8080").unwrap();
        assert_eq!((u.host.as_str(), u.port), ("[::1]", 8080));
        assert!(Upstream::parse("https://x").is_err());
        assert!(Upstream::parse("http://").is_err());
        assert!(Upstream::parse("http://x:notaport").is_err());
        assert!(Upstream::parse("http://x/some/path").is_err());
    }

    #[test]
    fn parses_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nETag: \"00ff\"\r\nContent-Length: 2\r\n\r\n{}";
        let r = read_response(&mut &raw[..], 1024).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"{}");
        assert_eq!(r.etag(), Some("00ff"));

        let raw = b"HTTP/1.1 304 Not Modified\r\nETag: \"00ff\"\r\nContent-Length: 0\r\n\r\n";
        let r = read_response(&mut &raw[..], 1024).unwrap();
        assert_eq!(r.status, 304);
        assert!(r.body.is_empty());
    }

    #[test]
    fn rejects_oversized_and_malformed_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n";
        assert!(read_response(&mut &raw[..], 10).is_err());
        let raw = b"SPDY/3 200\r\n\r\n";
        assert!(read_response(&mut &raw[..], 10).is_err());
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(read_response(&mut &raw[..], 10).is_err());
    }

    /// Extra headers (the traceparent hook) are rendered on the wire,
    /// replaced case-insensitively, and cleared with `None`.
    #[test]
    fn extra_headers_reach_the_wire() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut seen = Vec::new();
            for _ in 0..2 {
                let mut tp = String::new();
                let mut line = String::new();
                loop {
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    if line == "\r\n" || line.is_empty() {
                        break;
                    }
                    if let Some(v) = line.strip_prefix("traceparent: ") {
                        tp = v.trim().to_owned();
                    }
                }
                seen.push(tp);
                conn.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
                    .unwrap();
            }
            seen
        });
        let mut client = HttpClient::new(
            Upstream::parse(&format!("http://{addr}")).unwrap(),
            Duration::from_secs(5),
        );
        client.set_header("Traceparent", Some("00-aa-bb-01"));
        client.set_header("traceparent", Some("00-11-22-01"));
        client.get("/x", None, 1024).unwrap();
        client.set_header("traceparent", None);
        // Control bytes never reach the wire (header injection guard).
        client.set_header("x-bad", Some("evil\r\nInjected: yes"));
        client.get("/x", None, 1024).unwrap();
        let seen = server.join().unwrap();
        assert_eq!(seen, vec!["00-11-22-01".to_owned(), String::new()]);
    }

    /// A live round-trip against a throwaway single-request server.
    #[test]
    fn keep_alive_get_round_trips() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            for _ in 0..2 {
                // Swallow one request (terminated by the blank line).
                let mut line = String::new();
                loop {
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    if line == "\r\n" || line.is_empty() {
                        break;
                    }
                }
                conn.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
                    .unwrap();
            }
        });
        let mut client = HttpClient::new(
            Upstream::parse(&format!("http://{addr}")).unwrap(),
            Duration::from_secs(5),
        );
        for _ in 0..2 {
            let r = client.get("/x", None, 1024).unwrap();
            assert_eq!((r.status, r.body.as_slice()), (200, &b"hello"[..]));
        }
        server.join().unwrap();
    }
}
