//! Minimal JSON, both directions — the one JSON implementation of the
//! serving stack. *Parsing* is a small recursive-descent reader (full
//! value grammar, UTF-8 strings with the standard escapes, `f64`
//! numbers, and a depth limit in place of arbitrary recursion) used by
//! the typed client, the replica sync engine, and the daemon's batch
//! endpoint. *Emission* is the order-preserving [`Object`] builder the
//! daemon renders every response with (clients use it to build batch
//! request bodies).

/// Maximum nesting depth (the manifest uses 3).
const MAX_DEPTH: usize = 32;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer (exact — rejects fractions
    /// and anything beyond 2^53, where doubles stop being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= 9_007_199_254_740_992.0 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

// ----------------------------------------------------------------------
// Emission
// ----------------------------------------------------------------------

/// Escapes a string for inclusion in a JSON document, with quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/∞; clamp to null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Builder for a JSON object, keeping insertion order.
#[derive(Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Adds a pre-rendered JSON value.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = string(value);
        self.raw(key, rendered)
    }

    /// Adds a float field.
    pub fn num(self, key: &str, value: f64) -> Self {
        let rendered = number(value);
        self.raw(key, rendered)
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object.
    pub fn build(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from pre-rendered values.
pub fn array(values: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v);
    }
    out.push(']');
    out
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

/// Parses one JSON document (and nothing after it).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self
            .bytes
            .get(self.pos..)
            .unwrap_or_default()
            .starts_with(word.as_bytes())
        {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("document nests too deeply".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past itself
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path — the overwhelmingly common case.
                    if b < 0x20 {
                        return Err(format!("unescaped control byte at offset {}", self.pos));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // One multi-byte UTF-8 scalar: decode exactly its
                    // bytes (the lead byte encodes the length; input is
                    // `&str`, so the sequence is valid by construction —
                    // validating only it keeps parsing O(n)).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| format!("truncated UTF-8 at offset {}", self.pos))?;
                    let c = std::str::from_utf8(chunk)
                        .map_err(|_| format!("non-UTF-8 string at offset {}", self.pos))?
                        .chars()
                        .next()
                        .ok_or_else(|| format!("non-UTF-8 string at offset {}", self.pos))?;
                    out.push(c);
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported),
    /// leaving `pos` after the escape.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex4 = |p: &mut Self| -> Result<u32, String> {
            let digits = p
                .bytes
                .get(p.pos..p.pos + 4)
                .and_then(|h| std::str::from_utf8(h).ok())
                .ok_or("truncated \\u escape")?;
            let v = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_owned())?;
            p.pos += 4;
            Ok(v)
        };
        self.pos += 1; // past the 'u'
        let hi = hex4(self)?;
        let cp = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err("unpaired surrogate".into());
            }
            self.pos += 2;
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("bad low surrogate".into());
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(cp).ok_or_else(|| "invalid code point".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or_default();
        let text =
            std::str::from_utf8(digits).map_err(|_| format!("bad number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_manifest_shape() {
        let doc = r#"{"server_version":"0.1.0","pairs":[
            {"name":"alpha","format":2,"generation":3,"bytes":12345,"checksum":"00ffab"},
            {"name":"beta","format":1,"generation":1,"bytes":99,"checksum":"01"}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("server_version").and_then(Json::as_str),
            Some("0.1.0")
        );
        let pairs = v.get("pairs").and_then(Json::as_array).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].get("name").and_then(Json::as_str), Some("alpha"));
        assert_eq!(pairs[0].get("generation").and_then(Json::as_u64), Some(3));
        assert_eq!(pairs[1].get("bytes").and_then(Json::as_u64), Some(99));
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("a\"b\\c\ndé😀".into())
        );
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"unterminated",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("\u{1}"), r#""\u0001""#);
        assert_eq!(string("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_rendering() {
        let o = Object::new()
            .str("name", "x")
            .int("n", 3)
            .bool("ok", true)
            .num("p", 0.25);
        assert_eq!(o.build(), r#"{"name":"x","n":3,"ok":true,"p":0.25}"#);
    }

    #[test]
    fn array_rendering() {
        assert_eq!(array(vec!["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    /// Every f64 the emitter renders parses back to the identical bits —
    /// what lets clients recompute explain evidence bit-exactly.
    #[test]
    fn emitted_floats_round_trip_bit_exactly() {
        for v in [0.5, 1.0 / 3.0, 0.9999112190443354, 1e-300, 123456.789] {
            let text = number(v);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }
}
