//! # paris-client — the typed client of the `/v1` query API
//!
//! Everything that *talks to* a `paris serve` daemon lives here, at the
//! bottom of the serving dependency stack: the hand-rolled HTTP/1.1
//! client ([`http_client`]), the one JSON implementation (parse + emit,
//! [`json`]), the pair-name safety rule shared by server, replica, and
//! client ([`valid_pair_name`]), and the typed [`ParisClient`] front
//! door. `paris-replica` builds its sync engine on the raw pieces;
//! `paris-server` renders its responses with the same [`json`] builder;
//! the `paris query` CLI subcommand and the replica-aware tooling speak
//! [`ParisClient`].
//!
//! ## The typed client
//!
//! [`ParisClient`] wraps one or more upstream daemons behind the `/v1`
//! contract (`{"data":…}` / `{"error":{code,message}}` envelopes):
//!
//! * **Typed calls** — [`healthz`](ParisClient::healthz),
//!   [`pairs`](ParisClient::pairs), [`stats`](ParisClient::stats),
//!   [`sameas`](ParisClient::sameas),
//!   [`neighbors`](ParisClient::neighbors),
//!   [`explain`](ParisClient::explain), and
//!   [`batch`](ParisClient::batch) (many lookups in one round-trip).
//!   Server-side errors surface as [`ClientError::Api`] with the
//!   envelope's machine-readable `code`.
//! * **ETag caching** — every cacheable `GET` remembers its validator
//!   and body; a repeat of the same request sends `If-None-Match` and
//!   turns a `304` back into the cached answer, so polling an unchanged
//!   daemon costs headers only ([`cache_hits`](ParisClient::cache_hits)
//!   counts the saves).
//! * **Multi-upstream failover** — construct with several URLs
//!   ([`ParisClient::with_upstreams`]); a transport failure rotates to
//!   the next upstream transparently. Roles are discovered from
//!   `/v1/healthz` ([`refresh_roles`](ParisClient::refresh_roles)), and
//!   [`prefer_role`](ParisClient::prefer_role) pins reads to replicas
//!   (or anything else) while [`reload`](ParisClient::reload) always
//!   chases a primary when one is known.
//!
//! ```no_run
//! use paris_client::{ParisClient, Query, Side};
//!
//! let mut client = ParisClient::with_upstreams(&[
//!     "http://replica-a:7070",
//!     "http://replica-b:7070",
//! ]).unwrap();
//! let answer = client.sameas(None, "http://yagofilm.test/p6", Side::Left, None).unwrap();
//! println!("{} ≡ {:?} ({})", answer.iri, answer.sameas, answer.score);
//!
//! // 64 lookups, one round-trip, one image acquisition server-side.
//! let queries: Vec<Query> = (0..64)
//!     .map(|i| Query::sameas(format!("http://yagofilm.test/p{i}")))
//!     .collect();
//! for result in client.batch(None, &queries).unwrap() {
//!     println!("{result:?}");
//! }
//! ```

#![forbid(unsafe_code)]

pub mod http_client;
pub mod json;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

pub use http_client::{HttpClient, HttpResponse, Upstream};
use json::Json;
use paris_obs as obs;

/// Longest accepted pair name.
pub const MAX_PAIR_NAME: usize = 128;

/// Whether a pair name is safe to appear in URLs, JSON, and filesystem
/// paths *without escaping*: ASCII alphanumerics plus `-`, `_`, `.`,
/// not starting with a dot (no hidden/temp files, no `.`/`..`), at most
/// [`MAX_PAIR_NAME`] bytes, and not the reserved route name `manifest`.
///
/// The serving catalog skips files whose stem fails this check (so
/// `/v1/pairs` and manifest output are injection-safe by construction),
/// the sync engine rejects manifest entries that fail it (so an
/// untrusted upstream cannot traverse out of the mirror directory), and
/// [`ParisClient`] refuses to embed a failing name in a request path.
pub fn valid_pair_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_PAIR_NAME
        && !name.starts_with('.')
        && name != "manifest"
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Percent-encodes a query-parameter value (everything but unreserved
/// characters — the conservative superset that round-trips through the
/// daemon's form decoder, which also maps `+` to space).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

// ----------------------------------------------------------------------
// Errors
// ----------------------------------------------------------------------

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Every configured upstream failed at the transport level (connect,
    /// send, or response framing). The message lists each attempt.
    Transport(String),
    /// The daemon answered with an error envelope
    /// (`{"error":{code,message}}`).
    Api {
        /// HTTP status code.
        status: u16,
        /// Machine-readable error code (`bad_request`, `not_found`, …).
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// The daemon answered 2xx but the body was not the expected shape —
    /// a version mismatch or a non-paris peer.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport failure: {m}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "HTTP {status} {code}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn protocol(what: impl Into<String>) -> ClientError {
    ClientError::Protocol(what.into())
}

// ----------------------------------------------------------------------
// Typed answers
// ----------------------------------------------------------------------

/// Which KB of a pair a lookup addresses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Side {
    /// The first (left) ontology — the default.
    #[default]
    Left,
    /// The second (right) ontology.
    Right,
}

impl Side {
    /// The query-parameter spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Side::Left => "left",
            Side::Right => "right",
        }
    }
}

/// `GET /v1/healthz`, typed.
#[derive(Clone, Debug)]
pub struct Health {
    /// `"ok"` when the daemon is serving.
    pub status: String,
    /// Daemon build version.
    pub version: String,
    /// `"primary"` or `"replica"`.
    pub role: String,
    /// Generation of the default pair.
    pub generation: u64,
    /// Pairs in the catalog.
    pub pairs: u64,
}

/// One catalog entry of `GET /v1/pairs`.
#[derive(Clone, Debug)]
pub struct PairEntry {
    /// Pair name.
    pub name: String,
    /// Whether an image is currently resident.
    pub loaded: bool,
    /// Per-pair generation (0 = never loaded).
    pub generation: u64,
}

/// `GET /v1/pairs/<name>/stats`, typed (the commonly consumed subset).
#[derive(Clone, Debug)]
pub struct Stats {
    /// Pair name.
    pub pair: String,
    /// Assigned KB-1 instances.
    pub aligned_instances: u64,
    /// Stored (non-zero) instance equivalences.
    pub instance_equivalences: u64,
    /// Per-pair generation.
    pub generation: u64,
    /// Whether the producing run converged.
    pub converged: bool,
    /// Snapshot format (`"v1"` / `"v2"`).
    pub format: String,
}

/// A `sameas` answer: the best match of an instance, if any.
#[derive(Clone, Debug, PartialEq)]
pub struct SameasAnswer {
    /// The queried IRI.
    pub iri: String,
    /// Best match in the other KB (`None` below threshold / unmatched).
    pub sameas: Option<String>,
    /// `Pr(iri ≡ sameas)` (0 when unmatched).
    pub score: f64,
}

/// One statement around an entity, as `neighbors` reports it.
#[derive(Clone, Debug, PartialEq)]
pub struct NeighborFact {
    /// IRI of the base relation.
    pub relation: String,
    /// True when the statement is held in the inverse direction.
    pub inverse: bool,
    /// The neighbour term, rendered.
    pub value: String,
    /// Global functionality of the directed relation.
    pub functionality: f64,
}

/// A `neighbors` page.
#[derive(Clone, Debug, PartialEq)]
pub struct NeighborsAnswer {
    /// The queried IRI.
    pub iri: String,
    /// Total statements around the entity (both directions).
    pub total_facts: u64,
    /// Index of the first returned fact.
    pub offset: u64,
    /// The page.
    pub facts: Vec<NeighborFact>,
}

/// One Eq. 13 evidence factor of an `explain` answer.
#[derive(Clone, Debug, PartialEq)]
pub struct EvidenceRow {
    /// Directed relation IRI on the left side (`r` in `r(x, y)`).
    pub relation_left: String,
    /// Directed relation IRI on the right side (`r′` in `r′(x′, y′)`).
    pub relation_right: String,
    /// The shared neighbour, rendered, left side (`y`).
    pub neighbor_left: String,
    /// The equivalent neighbour, rendered, right side (`y′`).
    pub neighbor_right: String,
    /// `Pr(y ≡ y′)`.
    pub neighbor_prob: f64,
    /// `fun⁻¹(r)` on the left side.
    pub inv_functionality_left: f64,
    /// `fun⁻¹(r′)` on the right side.
    pub inv_functionality_right: f64,
    /// Stored `Pr(r′ ⊆ r)`.
    pub subrel_right_in_left: f64,
    /// Stored `Pr(r ⊆ r′)`.
    pub subrel_left_in_right: f64,
    /// The Eq. 13 factor — smaller = stronger evidence.
    pub factor: f64,
}

/// An `explain` answer: why the stored model matches (or does not match)
/// one candidate pair.
#[derive(Clone, Debug)]
pub struct ExplainAnswer {
    /// The explained left-side IRI.
    pub left: String,
    /// The explained right-side candidate IRI.
    pub right: String,
    /// The Eq. 13 score recomputed from the listed evidence:
    /// `1 − ∏ factorᵢ`, multiplied in listed order — bit-reproducible
    /// from [`evidence`](Self::evidence).
    pub score: f64,
    /// The stored equivalence probability `Pr(left ≡ right)` (0 when the
    /// pair is not in the stored alignment).
    pub stored_score: f64,
    /// Whether `right` is the stored maximal assignment of `left`.
    pub assigned: bool,
    /// The stored assignment of `left` — exactly what `sameas` serves.
    pub assignment: SameasAnswer,
    /// The evidence factors, strongest first.
    pub evidence: Vec<EvidenceRow>,
}

/// One lookup of a batch request.
#[derive(Clone, Debug)]
pub enum Query {
    /// A `sameas` lookup.
    Sameas {
        /// The queried IRI.
        iri: String,
        /// Which KB the IRI lives in.
        side: Side,
        /// Minimum score (`None` = serve any match).
        threshold: Option<f64>,
    },
    /// A `neighbors` page.
    Neighbors {
        /// The queried IRI.
        iri: String,
        /// Which KB the IRI lives in.
        side: Side,
        /// Page size (`None` = server default).
        limit: Option<u64>,
        /// Page start.
        offset: u64,
    },
}

impl Query {
    /// A left-side `sameas` lookup with no threshold.
    pub fn sameas(iri: impl Into<String>) -> Query {
        Query::Sameas {
            iri: iri.into(),
            side: Side::Left,
            threshold: None,
        }
    }

    /// A left-side `neighbors` page with server defaults.
    pub fn neighbors(iri: impl Into<String>) -> Query {
        Query::Neighbors {
            iri: iri.into(),
            side: Side::Left,
            limit: None,
            offset: 0,
        }
    }

    fn to_json(&self) -> String {
        match self {
            Query::Sameas {
                iri,
                side,
                threshold,
            } => {
                let mut obj = json::Object::new()
                    .str("op", "sameas")
                    .str("iri", iri)
                    .str("side", side.as_str());
                if let Some(t) = threshold {
                    obj = obj.num("threshold", *t);
                }
                obj.build()
            }
            Query::Neighbors {
                iri,
                side,
                limit,
                offset,
            } => {
                let mut obj = json::Object::new()
                    .str("op", "neighbors")
                    .str("iri", iri)
                    .str("side", side.as_str());
                if let Some(l) = limit {
                    obj = obj.int("limit", *l);
                }
                if *offset > 0 {
                    obj = obj.int("offset", *offset);
                }
                obj.build()
            }
        }
    }
}

/// One answer of a batch request.
#[derive(Clone, Debug)]
pub enum BatchAnswer {
    /// Answer to a [`Query::Sameas`].
    Sameas(SameasAnswer),
    /// Answer to a [`Query::Neighbors`].
    Neighbors(NeighborsAnswer),
}

// ----------------------------------------------------------------------
// The client
// ----------------------------------------------------------------------

/// Default per-I/O timeout.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);
/// Default response-body cap (JSON answers; snapshots go elsewhere).
const DEFAULT_MAX_BODY: u64 = 64 << 20;
/// Cap on cached ETag entries per upstream (oldest-insertion eviction is
/// overkill; the cache is simply cleared when full — steady-state
/// clients poll a handful of paths).
const MAX_CACHE_ENTRIES: usize = 1024;

struct UpstreamState {
    client: HttpClient,
    /// `path → (etag, body)` of the last 200 answer.
    cache: HashMap<String, (String, Vec<u8>)>,
    /// Role from the last `/v1/healthz` probe (`None` = never probed).
    role: Option<String>,
    /// Requests attempted against this upstream (including probes and
    /// attempts that failed at the transport).
    requests: Arc<obs::Counter>,
    /// Transport failures here that rotated the request onward.
    failovers: Arc<obs::Counter>,
}

/// Client-side request accounting: per-upstream request and failover
/// counts plus ETag-cache hits, kept in an [`obs::Registry`] so they can
/// be rendered alongside server metrics. Obtained from
/// [`ParisClient::metrics`]; counts survive for the client's lifetime.
pub struct ClientMetrics {
    registry: obs::Registry,
    cache_hits: Arc<obs::Counter>,
    urls: Vec<String>,
}

impl ClientMetrics {
    fn new(urls: Vec<String>) -> ClientMetrics {
        let registry = obs::Registry::new();
        let cache_hits = registry.counter(
            "paris_client_cache_hits_total",
            "Conditional GETs answered from the client's ETag cache.",
            &[],
        );
        ClientMetrics {
            registry,
            cache_hits,
            urls,
        }
    }

    fn upstream_counters(&self, url: &str) -> (Arc<obs::Counter>, Arc<obs::Counter>) {
        let requests = self.registry.counter(
            "paris_client_requests_total",
            "Requests attempted, by upstream (failed attempts included).",
            &[("upstream", url)],
        );
        let failovers = self.registry.counter(
            "paris_client_failovers_total",
            "Transport failures that rotated the request to another upstream.",
            &[("upstream", url)],
        );
        (requests, failovers)
    }

    /// The underlying registry (renderable as Prometheus text or JSON).
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// ETag-cache hits across all upstreams.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// `(url, requests, failovers)` per upstream, in configured order.
    pub fn per_upstream(&self) -> Vec<(String, u64, u64)> {
        self.urls
            .iter()
            .map(|url| {
                let get = |name| {
                    self.registry
                        .counter_value(name, &[("upstream", url)])
                        .unwrap_or(0)
                };
                (
                    url.clone(),
                    get("paris_client_requests_total"),
                    get("paris_client_failovers_total"),
                )
            })
            .collect()
    }

    /// Total requests attempted across all upstreams.
    pub fn requests(&self) -> u64 {
        self.per_upstream().iter().map(|&(_, r, _)| r).sum()
    }

    /// Total failovers across all upstreams.
    pub fn failovers(&self) -> u64 {
        self.per_upstream().iter().map(|&(_, _, f)| f).sum()
    }
}

/// A typed, failover-capable client of one or more `paris serve`
/// daemons. See the [crate docs](crate) for an overview.
pub struct ParisClient {
    upstreams: Vec<UpstreamState>,
    /// Index of the upstream requests currently go to.
    active: usize,
    max_body: u64,
    metrics: ClientMetrics,
    /// The trace context injected with the most recent request.
    last_trace: Option<obs::span::SpanContext>,
}

impl ParisClient {
    /// A client of one upstream (`http://host:port`).
    pub fn new(url: &str) -> Result<ParisClient, ClientError> {
        ParisClient::with_upstreams(&[url])
    }

    /// A client that fails over across several upstreams, in order of
    /// preference. All must be `http://host[:port]` URLs.
    pub fn with_upstreams<S: AsRef<str>>(urls: &[S]) -> Result<ParisClient, ClientError> {
        ParisClient::with_upstreams_timeout(urls, DEFAULT_TIMEOUT)
    }

    /// Like [`with_upstreams`](Self::with_upstreams) with an explicit
    /// per-I/O timeout.
    pub fn with_upstreams_timeout<S: AsRef<str>>(
        urls: &[S],
        timeout: Duration,
    ) -> Result<ParisClient, ClientError> {
        if urls.is_empty() {
            return Err(protocol("at least one upstream URL is required"));
        }
        let mut upstreams = Vec::with_capacity(urls.len());
        for url in urls {
            let upstream = Upstream::parse(url.as_ref()).map_err(ClientError::Transport)?;
            upstreams.push(UpstreamState {
                client: HttpClient::new(upstream, timeout),
                cache: HashMap::new(),
                role: None,
                requests: Arc::new(obs::Counter::new()),
                failovers: Arc::new(obs::Counter::new()),
            });
        }
        let metrics = ClientMetrics::new(
            upstreams
                .iter()
                .map(|u| u.client.upstream().display.clone())
                .collect(),
        );
        for up in &mut upstreams {
            let (requests, failovers) = metrics.upstream_counters(&up.client.upstream().display);
            up.requests = requests;
            up.failovers = failovers;
        }
        Ok(ParisClient {
            upstreams,
            active: 0,
            max_body: DEFAULT_MAX_BODY,
            metrics,
            last_trace: None,
        })
    }

    /// The upstream URLs, in configured order.
    pub fn upstream_urls(&self) -> Vec<String> {
        self.upstreams
            .iter()
            .map(|u| u.client.upstream().display.clone())
            .collect()
    }

    /// How many conditional `GET`s were answered from the ETag cache.
    pub fn cache_hits(&self) -> u64 {
        self.metrics.cache_hits()
    }

    /// Request accounting: per-upstream requests, failovers, and
    /// ETag-cache hits, in an [`obs::Registry`].
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// The trace id (32 hex digits) injected with the most recent
    /// request. Every request carries a fresh W3C `traceparent` header,
    /// so a slow answer can be looked up server-side under exactly this
    /// id via `GET /v1/debug/traces/<id>`.
    pub fn last_trace_id(&self) -> Option<String> {
        self.last_trace.map(|ctx| ctx.trace.to_hex())
    }

    /// Starts a fresh client-side trace context and arms every
    /// upstream's `traceparent` header with it (failover attempts of one
    /// logical request share the trace).
    fn begin_trace(&mut self) -> obs::span::SpanContext {
        let ctx = obs::span::SpanContext::new_root();
        self.last_trace = Some(ctx);
        let header = ctx.traceparent();
        for up in &mut self.upstreams {
            up.client.set_header("traceparent", Some(&header));
        }
        ctx
    }

    /// One request with failover: upstreams are tried starting at the
    /// active one, rotating on *transport* failures only (an HTTP error
    /// status is an answer, not a reason to ask a different daemon the
    /// same thing). The upstream that answered becomes the active one.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<(&str, &[u8])>,
    ) -> Result<HttpResponse, ClientError> {
        let n = self.upstreams.len();
        let mut failures: Vec<String> = Vec::new();
        self.begin_trace();
        for attempt in 0..n {
            let i = (self.active + attempt) % n;
            let up = &mut self.upstreams[i];
            let cached = if method == "GET" {
                up.cache.get(path).cloned()
            } else {
                None
            };
            let validator = cached.as_ref().map(|(etag, _)| etag.as_str());
            up.requests.inc();
            match up
                .client
                .request(method, path, validator, body, self.max_body)
            {
                Ok(response) => {
                    self.active = i;
                    if response.status == 304 {
                        if let Some((_, cached_body)) = cached {
                            self.metrics.cache_hits.inc();
                            return Ok(HttpResponse {
                                status: 200,
                                headers: response.headers,
                                body: cached_body,
                            });
                        }
                        // A 304 we never asked for; treat as protocol noise.
                        return Ok(response);
                    }
                    if method == "GET" && response.status == 200 {
                        if let Some(etag) = response.etag() {
                            let up = &mut self.upstreams[i];
                            if up.cache.len() >= MAX_CACHE_ENTRIES {
                                up.cache.clear();
                            }
                            up.cache
                                .insert(path.to_owned(), (etag.to_owned(), response.body.clone()));
                        }
                    }
                    return Ok(response);
                }
                Err(e) => {
                    let up = &self.upstreams[i];
                    up.failovers.inc();
                    let url = &up.client.upstream().display;
                    failures.push(format!("{url}: {e}"));
                }
            }
        }
        Err(ClientError::Transport(failures.join("; ")))
    }

    /// Issues a request and unwraps the `/v1` envelope: 2xx yields the
    /// `data` member, an error status yields [`ClientError::Api`] from
    /// the `error` member.
    fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<(&str, &[u8])>,
    ) -> Result<Json, ClientError> {
        let response = self.request(method, path, body)?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| protocol(format!("{path}: non-UTF-8 response body")))?;
        let doc = json::parse(text)
            .map_err(|e| protocol(format!("{path}: response is not JSON: {e}")))?;
        if (200..300).contains(&response.status) {
            return doc
                .get("data")
                .cloned()
                .ok_or_else(|| protocol(format!("{path}: 2xx response without a data envelope")));
        }
        match doc.get("error") {
            Some(err) => Err(ClientError::Api {
                status: response.status,
                code: err
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            }),
            None => Err(protocol(format!(
                "{path}: HTTP {} without an error envelope",
                response.status
            ))),
        }
    }

    /// The `/v1/pairs/<name>` prefix for a pair, or the default pair's
    /// when `pair` is `None` (resolved once via `/v1/pairs`).
    fn pair_prefix(&mut self, pair: Option<&str>) -> Result<String, ClientError> {
        let name = match pair {
            Some(name) => name.to_owned(),
            None => self.default_pair()?,
        };
        if !valid_pair_name(&name) {
            return Err(protocol(format!("invalid pair name {name:?}")));
        }
        Ok(format!("/v1/pairs/{name}"))
    }

    /// The daemon's default pair name (from `/v1/pairs`).
    pub fn default_pair(&mut self) -> Result<String, ClientError> {
        let data = self.call("GET", "/v1/pairs", None)?;
        data.get("default")
            .and_then(Json::as_str)
            .filter(|n| !n.is_empty())
            .map(str::to_owned)
            .ok_or_else(|| protocol("/v1/pairs: no default pair"))
    }

    /// `GET /v1/healthz`, typed.
    pub fn healthz(&mut self) -> Result<Health, ClientError> {
        let data = self.call("GET", "/v1/healthz", None)?;
        let field = |key: &str| {
            data.get(key)
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned()
        };
        let health = Health {
            status: field("status"),
            version: field("version"),
            role: field("role"),
            generation: data.get("generation").and_then(Json::as_u64).unwrap_or(0),
            pairs: data.get("pairs").and_then(Json::as_u64).unwrap_or(0),
        };
        self.upstreams[self.active].role = Some(health.role.clone());
        Ok(health)
    }

    /// Probes `/v1/healthz` on *every* upstream, recording each role.
    /// Returns `(url, role)` for the upstreams that answered. Each probe
    /// goes to exactly its own upstream — **no failover** — so a dead
    /// daemon is recorded as unreachable (role cleared), never as
    /// another upstream's role.
    pub fn refresh_roles(&mut self) -> Vec<(String, String)> {
        let mut roles = Vec::new();
        for i in 0..self.upstreams.len() {
            // A failed probe clears the stale role.
            self.upstreams[i].role = None;
            let up = &mut self.upstreams[i];
            up.requests.inc();
            let Ok(response) = up
                .client
                .request("GET", "/v1/healthz", None, None, self.max_body)
            else {
                continue;
            };
            let role = std::str::from_utf8(&response.body)
                .ok()
                .and_then(|text| json::parse(text).ok())
                .filter(|_| response.status == 200)
                .and_then(|doc| {
                    doc.get("data")?
                        .get("role")
                        .and_then(Json::as_str)
                        .map(str::to_owned)
                });
            if let Some(role) = role {
                self.upstreams[i].role = Some(role.clone());
                roles.push((self.upstreams[i].client.upstream().display.clone(), role));
            }
        }
        roles
    }

    /// Makes the first upstream with the given role (probing all of them
    /// if none is known) the active one. Returns whether one was found —
    /// on `false` the active upstream is unchanged.
    pub fn prefer_role(&mut self, role: &str) -> bool {
        if !self.upstreams.iter().any(|u| u.role.is_some()) {
            self.refresh_roles();
        }
        match self
            .upstreams
            .iter()
            .position(|u| u.role.as_deref() == Some(role))
        {
            Some(i) => {
                self.active = i;
                true
            }
            None => false,
        }
    }

    /// `GET /v1/pairs`, typed: the default pair name and the catalog.
    pub fn pairs(&mut self) -> Result<(String, Vec<PairEntry>), ClientError> {
        let data = self.call("GET", "/v1/pairs", None)?;
        let default = data
            .get("default")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        let pairs = data
            .get("pairs")
            .and_then(Json::as_array)
            .ok_or_else(|| protocol("/v1/pairs: no pairs array"))?
            .iter()
            .map(|p| PairEntry {
                name: p
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
                loaded: p.get("loaded").and_then(Json::as_bool).unwrap_or(false),
                generation: p.get("generation").and_then(Json::as_u64).unwrap_or(0),
            })
            .collect();
        Ok((default, pairs))
    }

    /// `GET /v1/pairs/<name>/stats`, typed.
    pub fn stats(&mut self, pair: Option<&str>) -> Result<Stats, ClientError> {
        let prefix = self.pair_prefix(pair)?;
        let data = self.call("GET", &format!("{prefix}/stats"), None)?;
        let int = |key: &str| data.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok(Stats {
            pair: data
                .get("pair")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            aligned_instances: int("aligned_instances"),
            instance_equivalences: int("instance_equivalences"),
            generation: int("generation"),
            converged: data
                .get("converged")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            format: data
                .get("format")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
        })
    }

    /// `GET /v1/pairs/<name>/sameas`, typed.
    pub fn sameas(
        &mut self,
        pair: Option<&str>,
        iri: &str,
        side: Side,
        threshold: Option<f64>,
    ) -> Result<SameasAnswer, ClientError> {
        let prefix = self.pair_prefix(pair)?;
        let mut path = format!(
            "{prefix}/sameas?iri={}&side={}",
            percent_encode(iri),
            side.as_str()
        );
        if let Some(t) = threshold {
            path.push_str(&format!("&threshold={t}"));
        }
        let data = self.call("GET", &path, None)?;
        parse_sameas(&data)
    }

    /// `GET /v1/pairs/<name>/neighbors`, typed.
    pub fn neighbors(
        &mut self,
        pair: Option<&str>,
        iri: &str,
        side: Side,
        limit: Option<u64>,
        offset: u64,
    ) -> Result<NeighborsAnswer, ClientError> {
        let prefix = self.pair_prefix(pair)?;
        let mut path = format!(
            "{prefix}/neighbors?iri={}&side={}",
            percent_encode(iri),
            side.as_str()
        );
        if let Some(l) = limit {
            path.push_str(&format!("&limit={l}"));
        }
        if offset > 0 {
            path.push_str(&format!("&offset={offset}"));
        }
        let data = self.call("GET", &path, None)?;
        parse_neighbors(&data)
    }

    /// `GET /v1/pairs/<name>/explain`, typed: the stored evidence for
    /// one candidate pair (`left` in KB 1, `right` in KB 2).
    pub fn explain(
        &mut self,
        pair: Option<&str>,
        left: &str,
        right: &str,
    ) -> Result<ExplainAnswer, ClientError> {
        let prefix = self.pair_prefix(pair)?;
        let path = format!(
            "{prefix}/explain?left={}&right={}",
            percent_encode(left),
            percent_encode(right)
        );
        let data = self.call("GET", &path, None)?;
        let float = |key: &str| data.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let evidence = data
            .get("evidence")
            .and_then(Json::as_array)
            .ok_or_else(|| protocol("explain: no evidence array"))?
            .iter()
            .map(|e| {
                let s = |key: &str| e.get(key).and_then(Json::as_str).unwrap_or("").to_owned();
                let f = |key: &str| e.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                EvidenceRow {
                    relation_left: s("relation_left"),
                    relation_right: s("relation_right"),
                    neighbor_left: s("neighbor_left"),
                    neighbor_right: s("neighbor_right"),
                    neighbor_prob: f("neighbor_prob"),
                    inv_functionality_left: f("inv_functionality_left"),
                    inv_functionality_right: f("inv_functionality_right"),
                    subrel_right_in_left: f("subrel_right_in_left"),
                    subrel_left_in_right: f("subrel_left_in_right"),
                    factor: f("factor"),
                }
            })
            .collect();
        Ok(ExplainAnswer {
            left: data
                .get("left")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            right: data
                .get("right")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            score: float("score"),
            stored_score: float("stored_score"),
            assigned: data
                .get("assigned")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            assignment: data
                .get("assignment")
                .map(parse_sameas)
                .transpose()?
                .ok_or_else(|| protocol("explain: no assignment"))?,
            evidence,
        })
    }

    /// `POST /v1/pairs/<name>/query`: up to the server's batch cap of
    /// mixed lookups in one round-trip, answered from a single image
    /// acquisition. Per-query failures come back in place, so one bad
    /// IRI does not fail its siblings.
    pub fn batch(
        &mut self,
        pair: Option<&str>,
        queries: &[Query],
    ) -> Result<Vec<Result<BatchAnswer, ClientError>>, ClientError> {
        let prefix = self.pair_prefix(pair)?;
        let body = format!(
            "{{\"queries\":{}}}",
            json::array(queries.iter().map(Query::to_json))
        );
        let data = self.call(
            "POST",
            &format!("{prefix}/query"),
            Some(("application/json", body.as_bytes())),
        )?;
        let results = data
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| protocol("batch: no results array"))?;
        if results.len() != queries.len() {
            return Err(protocol(format!(
                "batch: {} results for {} queries",
                results.len(),
                queries.len()
            )));
        }
        queries
            .iter()
            .zip(results)
            .map(|(query, result)| {
                if let Some(err) = result.get("error") {
                    return Ok(Err(ClientError::Api {
                        status: 0,
                        code: err
                            .get("code")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_owned(),
                        message: err
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_owned(),
                    }));
                }
                match query {
                    Query::Sameas { .. } => parse_sameas(result).map(BatchAnswer::Sameas).map(Ok),
                    Query::Neighbors { .. } => {
                        parse_neighbors(result).map(BatchAnswer::Neighbors).map(Ok)
                    }
                }
            })
            .collect()
    }

    /// `POST /v1/pairs/<name>/reload`, returning the new generation.
    /// When several upstreams are configured, the request chases a
    /// `primary`-role upstream first (reloading a replica's mirror file
    /// would be undone by its next sync).
    pub fn reload(&mut self, pair: Option<&str>) -> Result<u64, ClientError> {
        if self.upstreams.len() > 1 {
            self.prefer_role("primary");
        }
        let prefix = self.pair_prefix(pair)?;
        // The mutation goes to exactly the chosen upstream — no
        // transport failover. Rotating a failed reload onto the next
        // upstream would mutate a daemon the caller did not pick
        // (reloading a replica's mirror file is undone by its next
        // sync), so a primary that cannot answer is an error, not a
        // reason to try someone else. (The connection-level retry
        // inside [`HttpClient::request`] can still re-send after a
        // stale keep-alive connection; reload is idempotent — a repeat
        // costs one extra generation bump, never serves wrong data.)
        self.begin_trace();
        let up = &mut self.upstreams[self.active];
        up.requests.inc();
        let response = up
            .client
            .request(
                "POST",
                &format!("{prefix}/reload"),
                None,
                Some(("application/x-www-form-urlencoded", b"")),
                self.max_body,
            )
            .map_err(ClientError::Transport)?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| protocol("reload: non-UTF-8 response body"))?;
        let doc =
            json::parse(text).map_err(|e| protocol(format!("reload: response not JSON: {e}")))?;
        if !(200..300).contains(&response.status) {
            let err = doc.get("error");
            return Err(ClientError::Api {
                status: response.status,
                code: err
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: err
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            });
        }
        doc.get("data")
            .and_then(|d| d.get("generation"))
            .and_then(Json::as_u64)
            .ok_or_else(|| protocol("reload: no generation"))
    }

    /// `GET /v1/metrics`: the daemon's telemetry, as the raw body text.
    /// `format` is forwarded as the `?format=` query parameter — `None`
    /// yields the Prometheus text exposition (the one `/v1` body served
    /// raw, since scrapers expect the bare format, so it bypasses the
    /// envelope unwrapping), `Some("json")` the enveloped JSON document.
    pub fn server_metrics(&mut self, format: Option<&str>) -> Result<String, ClientError> {
        let path = match format {
            Some(f) => format!("/v1/metrics?format={}", percent_encode(f)),
            None => "/v1/metrics".to_owned(),
        };
        let response = self.request("GET", &path, None)?;
        if response.status != 200 {
            return Err(protocol(format!("/v1/metrics: HTTP {}", response.status)));
        }
        String::from_utf8(response.body)
            .map_err(|_| protocol("/v1/metrics: non-UTF-8 response body"))
    }

    /// `GET /v1/metrics?format=json`, typed: the `data` member of the
    /// envelope, with its `counters` / `gauges` / `histograms` arrays.
    pub fn server_metrics_json(&mut self) -> Result<Json, ClientError> {
        self.call("GET", "/v1/metrics?format=json", None)
    }

    /// `GET /v1/debug/traces`: the daemon's recent spans and pinned
    /// slowest traces, as the `data` member of the envelope.
    pub fn debug_traces(&mut self) -> Result<Json, ClientError> {
        self.call("GET", "/v1/debug/traces", None)
    }

    /// `GET /v1/debug/traces/<trace-id>`: one trace's rendered span
    /// tree. `trace_id` must be the 32-hex-digit spelling (as reported
    /// by [`last_trace_id`](Self::last_trace_id) or the trace listing).
    pub fn debug_trace(&mut self, trace_id: &str) -> Result<Json, ClientError> {
        if trace_id.len() != 32 || !trace_id.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(protocol(format!("invalid trace id {trace_id:?}")));
        }
        self.call("GET", &format!("/v1/debug/traces/{trace_id}"), None)
    }

    /// `GET`s a `/v1` path and returns the raw envelope body verbatim —
    /// what the CLI's `--format json` prints. Error statuses still
    /// surface as [`ClientError::Api`].
    pub fn get_raw(&mut self, path: &str) -> Result<String, ClientError> {
        let response = self.request("GET", path, None)?;
        let text = String::from_utf8(response.body)
            .map_err(|_| protocol(format!("{path}: non-UTF-8 response body")))?;
        if (200..300).contains(&response.status) {
            return Ok(text);
        }
        match json::parse(&text)
            .ok()
            .and_then(|doc| doc.get("error").cloned())
        {
            Some(err) => Err(ClientError::Api {
                status: response.status,
                code: err
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            }),
            None => Err(protocol(format!(
                "{path}: HTTP {} without an error envelope",
                response.status
            ))),
        }
    }

    /// The `/v1/pairs/<name>/diagnostics` path for a pair (the default
    /// pair when `None`) — for [`get_raw`](Self::get_raw).
    pub fn diagnostics_path(&mut self, pair: Option<&str>) -> Result<String, ClientError> {
        Ok(format!("{}/diagnostics", self.pair_prefix(pair)?))
    }

    /// `GET /v1/pairs/<name>/diagnostics`: the gold-standard-free
    /// quality summary of a pair's served image, as the `data` member.
    pub fn diagnostics(&mut self, pair: Option<&str>) -> Result<Json, ClientError> {
        let path = self.diagnostics_path(pair)?;
        self.call("GET", &path, None)
    }

    /// The `/v1/debug/profile` path, with the optional `?root=` filter.
    pub fn profile_path(root: Option<&str>) -> String {
        match root {
            Some(name) => format!("/v1/debug/profile?root={}", percent_encode(name)),
            None => "/v1/debug/profile".to_owned(),
        }
    }

    /// `GET /v1/debug/profile`: the daemon's span ring folded into a
    /// flame tree, optionally re-rooted on spans named `root`.
    pub fn debug_profile(&mut self, root: Option<&str>) -> Result<Json, ClientError> {
        self.call("GET", &Self::profile_path(root), None)
    }

    /// `GET /v1/debug/runs`: the persisted align-run history.
    pub fn debug_runs(&mut self) -> Result<Json, ClientError> {
        self.call("GET", "/v1/debug/runs", None)
    }
}

fn parse_sameas(data: &Json) -> Result<SameasAnswer, ClientError> {
    Ok(SameasAnswer {
        iri: data
            .get("iri")
            .and_then(Json::as_str)
            .ok_or_else(|| protocol("sameas: no iri"))?
            .to_owned(),
        sameas: data.get("sameas").and_then(Json::as_str).map(str::to_owned),
        score: data.get("score").and_then(Json::as_f64).unwrap_or(0.0),
    })
}

fn parse_neighbors(data: &Json) -> Result<NeighborsAnswer, ClientError> {
    let facts = data
        .get("facts")
        .and_then(Json::as_array)
        .ok_or_else(|| protocol("neighbors: no facts array"))?
        .iter()
        .map(|f| NeighborFact {
            relation: f
                .get("relation")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            inverse: f.get("inverse").and_then(Json::as_bool).unwrap_or(false),
            value: f
                .get("value")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
            functionality: f.get("functionality").and_then(Json::as_f64).unwrap_or(0.0),
        })
        .collect();
    Ok(NeighborsAnswer {
        iri: data
            .get("iri")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned(),
        total_facts: data.get("total_facts").and_then(Json::as_u64).unwrap_or(0),
        offset: data.get("offset").and_then(Json::as_u64).unwrap_or(0),
        facts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpListener;

    #[test]
    fn pair_name_validation() {
        for good in ["alpha", "yago-dbpedia", "v2_pair", "a.b", "A9", "x"] {
            assert!(valid_pair_name(good), "{good}");
        }
        for bad in [
            "",
            ".",
            "..",
            ".hidden",
            "a/b",
            "../escape",
            "a b",
            "a\"b",
            "a\\b",
            "a\nb",
            "a?b",
            "a%b",
            "ümlaut",
            "manifest",
        ] {
            assert!(!valid_pair_name(bad), "{bad:?}");
        }
        assert!(valid_pair_name(&"n".repeat(MAX_PAIR_NAME)));
        assert!(!valid_pair_name(&"n".repeat(MAX_PAIR_NAME + 1)));
    }

    #[test]
    fn percent_encoding_is_conservative() {
        assert_eq!(percent_encode("abc-._~09"), "abc-._~09");
        assert_eq!(
            percent_encode("http://a/b?c=d"),
            "http%3A%2F%2Fa%2Fb%3Fc%3Dd"
        );
        assert_eq!(percent_encode("a b+c"), "a%20b%2Bc");
    }

    #[test]
    fn query_serialization() {
        assert_eq!(
            Query::sameas("http://a/x").to_json(),
            r#"{"op":"sameas","iri":"http://a/x","side":"left"}"#
        );
        let q = Query::Neighbors {
            iri: "http://a/x".into(),
            side: Side::Right,
            limit: Some(5),
            offset: 10,
        };
        assert_eq!(
            q.to_json(),
            r#"{"op":"neighbors","iri":"http://a/x","side":"right","limit":5,"offset":10}"#
        );
    }

    /// A scripted upstream: answers each accepted connection with the
    /// next canned response (one request per connection).
    fn scripted_upstream(responses: Vec<String>) -> (String, std::thread::JoinHandle<Vec<String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut seen = Vec::new();
            for response in responses {
                let (mut conn, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut request_line = String::new();
                reader.read_line(&mut request_line).unwrap();
                seen.push(request_line.trim_end().to_owned());
                let mut content_length = 0usize;
                loop {
                    let mut h = String::new();
                    reader.read_line(&mut h).unwrap();
                    if let Some(v) = h
                        .to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::trim)
                    {
                        content_length = v.parse().unwrap();
                    }
                    if h == "\r\n" || h.is_empty() {
                        break;
                    }
                }
                let mut body = vec![0u8; content_length];
                reader.read_exact(&mut body).unwrap();
                conn.write_all(response.as_bytes()).unwrap();
            }
            seen
        });
        (format!("http://{addr}"), handle)
    }

    fn framed(status: u16, reason: &str, body: &str, etag: Option<&str>) -> String {
        let etag_header = etag
            .map(|e| format!("ETag: \"{e}\"\r\n"))
            .unwrap_or_default();
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n{etag_header}Connection: close\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn envelope_unwrapping_and_api_errors() {
        let (url, server) = scripted_upstream(vec![
            framed(
                200,
                "OK",
                r#"{"data":{"status":"ok","version":"1","role":"primary","generation":3,"pairs":2}}"#,
                None,
            ),
            framed(
                404,
                "Not Found",
                r#"{"error":{"code":"not_found","message":"no such pair 'x'"}}"#,
                None,
            ),
        ]);
        let mut client = ParisClient::new(&url).unwrap();
        let health = client.healthz().unwrap();
        assert_eq!(health.role, "primary");
        assert_eq!(health.generation, 3);
        let err = client.call("GET", "/v1/pairs/x/stats", None).unwrap_err();
        assert_eq!(
            err,
            ClientError::Api {
                status: 404,
                code: "not_found".into(),
                message: "no such pair 'x'".into(),
            }
        );
        server.join().unwrap();
    }

    #[test]
    fn etag_cache_turns_304_into_the_cached_answer() {
        let body = r#"{"data":{"iri":"http://a/x","sameas":"http://b/y","score":0.5}}"#;
        let (url, server) = scripted_upstream(vec![
            framed(200, "OK", body, Some("00ff")),
            framed(304, "Not Modified", "", Some("00ff")),
        ]);
        let mut client = ParisClient::new(&url).unwrap();
        let path = "/v1/pairs/p/sameas?iri=x";
        let first = client.call("GET", path, None).unwrap();
        let second = client.call("GET", path, None).unwrap();
        assert_eq!(first, second);
        assert_eq!(client.cache_hits(), 1);
        assert_eq!(client.metrics().cache_hits(), 1);
        assert_eq!(client.metrics().requests(), 2);
        let seen = server.join().unwrap();
        assert_eq!(seen.len(), 2);
        server_sent_validator(&seen[1]);
    }

    fn server_sent_validator(request_line: &str) {
        // The validator travels in headers, which the scripted upstream
        // does not record — but the request line proves the retry hit
        // the same path (the 304 above would desynchronize otherwise).
        assert!(request_line.starts_with("GET /v1/pairs/p/sameas"));
    }

    #[test]
    fn transport_failover_rotates_upstreams() {
        // A dead upstream (bound, never accepted → refused after drop).
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            format!("http://{addr}")
        };
        let (live, server) = scripted_upstream(vec![framed(
            200,
            "OK",
            r#"{"data":{"status":"ok","version":"1","role":"replica","generation":1,"pairs":1}}"#,
            None,
        )]);
        let mut client = ParisClient::with_upstreams(&[dead.as_str(), live.as_str()]).unwrap();
        let health = client.healthz().unwrap();
        assert_eq!(health.role, "replica");
        // The live upstream is now the active one.
        assert_eq!(client.active, 1);
        // The failover was charged to the dead upstream, the request to
        // both (an attempt each).
        let per = client.metrics().per_upstream();
        assert_eq!(per[0].0, dead);
        assert_eq!((per[0].1, per[0].2), (1, 1), "{per:?}");
        assert_eq!((per[1].1, per[1].2), (1, 0), "{per:?}");
        assert_eq!(client.metrics().failovers(), 1);
        server.join().unwrap();
    }

    /// A dead upstream must be recorded as unreachable by the role
    /// probe — never as the *next* upstream's role (the probe must not
    /// take the failover path).
    #[test]
    fn refresh_roles_probes_each_upstream_without_failover() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            format!("http://{addr}")
        };
        let (live, server) = scripted_upstream(vec![framed(
            200,
            "OK",
            r#"{"data":{"status":"ok","version":"1","role":"primary","generation":1,"pairs":1}}"#,
            None,
        )]);
        let mut client = ParisClient::with_upstreams(&[dead.as_str(), live.as_str()]).unwrap();
        let roles = client.refresh_roles();
        assert_eq!(roles, vec![(live.clone(), "primary".to_owned())]);
        assert_eq!(client.upstreams[0].role, None, "dead upstream: no role");
        assert_eq!(client.upstreams[1].role.as_deref(), Some("primary"));
        assert!(client.prefer_role("primary"));
        assert_eq!(client.active, 1);
        server.join().unwrap();
    }

    #[test]
    fn all_upstreams_down_is_a_transport_error() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            format!("http://{addr}")
        };
        let mut client = ParisClient::new(&dead).unwrap();
        assert!(matches!(client.healthz(), Err(ClientError::Transport(_))));
    }
}
