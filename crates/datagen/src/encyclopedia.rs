//! Synthetic stand-in for the yago–DBpedia experiment (paper §6.4).
//!
//! One latent encyclopedic "world" (people, cities, countries,
//! organizations, creative works, prizes) is rendered as two ontologies
//! with deliberately different design philosophies, mirroring the real
//! pair:
//!
//! * **side A ("wikia", yago-like)** — few, coarse relations
//!   (`a:created` covers books, songs, and films; `a:isLocatedIn` covers
//!   city→country and org→city), labels on everything, and a *deep,
//!   fine-grained class taxonomy* including category-style classes
//!   (`a:PeopleFromX`, `a:XWinner`) — yago has 292 k such classes;
//! * **side B ("dbp", DBpedia-like)** — many fine-grained relations, some
//!   *inverted* (`b:parent` is child→parent where side A has `a:hasChild`;
//!   `b:author`/`b:composer`/`b:director` are work→person splits of
//!   `a:created`), and a *small, flat class hierarchy* (DBpedia's manual
//!   ontology has 318 classes).
//!
//! Entities overlap partially (the real yago/DBpedia share 1.4 M of
//! 2.4–2.8 M instances); facts are dropped independently per side; a small
//! fraction of people share names. All of this makes the alignment
//! genuinely iterative: literal evidence seeds the first round, and
//! relation/instance cross-fertilization lifts recall in later rounds —
//! the Table 3 shape.

use paris_kb::KbBuilder;
use paris_rdf::{Iri, Literal};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::gold::{DatasetPair, GoldStandard, RelationGold};
use crate::names;
use crate::noise;

/// Configuration of the encyclopedia generator.
#[derive(Clone, Debug)]
pub struct EncyclopediaConfig {
    /// Number of people in the latent world. Other entity counts scale
    /// from this (cities = n/40, orgs = n/50, works ≈ 0.7 n).
    pub num_people: usize,
    /// Fraction of people present in *both* ontologies.
    pub overlap: f64,
    /// Per-fact drop probability on side A.
    pub fact_drop_1: f64,
    /// Per-fact drop probability on side B.
    pub fact_drop_2: f64,
    /// Probability that a side-B entity lacks its `b:name` label.
    pub label_drop_2: f64,
    /// Fraction of people sharing their name with another person.
    pub duplicate_name_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EncyclopediaConfig {
    fn default() -> Self {
        EncyclopediaConfig {
            num_people: 2000,
            overlap: 0.55,
            fact_drop_1: 0.05,
            fact_drop_2: 0.15,
            label_drop_2: 0.15,
            duplicate_name_fraction: 0.03,
            seed: 11,
        }
    }
}

const NS1: &str = "http://wikia.test/";
const NS2: &str = "http://dbp.test/";

/// Creative-work types, driving the `created` → author/composer/director
/// split.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum WorkType {
    Book,
    Song,
    Film,
}

impl WorkType {
    fn of(i: usize) -> Self {
        match i % 3 {
            0 => WorkType::Book,
            1 => WorkType::Song,
            _ => WorkType::Film,
        }
    }
}

pub(crate) struct World {
    pub num_people: usize,
    pub person_name: Vec<String>,
    pub birth_year: Vec<u32>,
    pub birth_city: Vec<usize>,
    pub death_city: Vec<Option<usize>>,
    pub spouse: Vec<Option<usize>>,
    /// `(parent, child)` pairs.
    pub children: Vec<(usize, usize)>,
    pub employer: Vec<Option<usize>>,
    pub citizenship: Vec<usize>,
    /// `(person, work)` creation pairs.
    pub creations: Vec<(usize, usize)>,
    pub prizes_won: Vec<(usize, usize)>,
    pub cities: Vec<String>,
    pub city_country: Vec<usize>,
    pub city_population: Vec<u64>,
    pub countries: Vec<String>,
    pub orgs: Vec<String>,
    pub org_city: Vec<usize>,
    pub works: Vec<String>,
    pub work_type: Vec<WorkType>,
    pub work_year: Vec<u32>,
    /// For each work, its creator.
    pub work_creator: Vec<usize>,
    pub prizes: Vec<String>,
}

pub(crate) fn build_world(config: &EncyclopediaConfig) -> World {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_people;
    let num_cities = (n / 40).max(4);
    let num_countries = 12.min(num_cities);
    let num_orgs = (n / 50).max(3);
    let num_prizes = 20;

    let countries: Vec<String> = (0..num_countries)
        .map(|i| format!("{}land", names::pseudo_word(&mut rng, 2 + i % 2)))
        .collect();
    let cities: Vec<String> = (0..num_cities)
        .map(|i| names::city_name(&mut rng, i))
        .collect();
    let city_country: Vec<usize> = (0..num_cities).map(|i| i % num_countries).collect();
    let city_population: Vec<u64> = (0..num_cities)
        .map(|_| rng.random_range(10_000..5_000_000))
        .collect();
    let orgs: Vec<String> = (0..num_orgs)
        .map(|i| names::organization_name(&mut rng, i))
        .collect();
    let org_city: Vec<usize> = (0..num_orgs)
        .map(|_| rng.random_range(0..num_cities))
        .collect();
    let prizes: Vec<String> = (0..num_prizes)
        .map(|i| format!("{} Prize", names::pseudo_word(&mut rng, 2 + i % 2)))
        .collect();

    let mut person_name: Vec<String> = (0..n).map(names::person_name).collect();
    // Duplicate names: person i copies the name of person i-1.
    for i in 1..n {
        if noise::flip(&mut rng, config.duplicate_name_fraction) {
            person_name[i] = person_name[i - 1].clone();
        }
    }
    let birth_year: Vec<u32> = (0..n).map(|_| rng.random_range(1850..2000)).collect();
    let birth_city: Vec<usize> = (0..n).map(|_| rng.random_range(0..num_cities)).collect();
    let death_city: Vec<Option<usize>> = (0..n)
        .map(|_| noise::flip(&mut rng, 0.4).then(|| rng.random_range(0..num_cities)))
        .collect();
    let citizenship: Vec<usize> = birth_city.iter().map(|&c| city_country[c]).collect();
    let spouse: Vec<Option<usize>> = (0..n)
        .map(|i| {
            // Pair consecutive indices (2k, 2k+1) with probability 0.3.
            if i % 2 == 0 && i + 1 < n && noise::flip(&mut rng, 0.3) {
                Some(i + 1)
            } else {
                None
            }
        })
        .collect();
    // Symmetrize: if 2k married 2k+1, record only the forward pair; the
    // emitters decide the stored direction.
    let children: Vec<(usize, usize)> = (n / 2..n)
        .filter_map(|child| {
            let parent = child - n / 2;
            noise::flip(&mut rng, 0.35).then_some((parent, child))
        })
        .collect();
    let employer: Vec<Option<usize>> = (0..n)
        .map(|_| noise::flip(&mut rng, 0.5).then(|| rng.random_range(0..num_orgs)))
        .collect();

    let mut creations: Vec<(usize, usize)> = Vec::new();
    let mut works: Vec<String> = Vec::new();
    let mut work_type: Vec<WorkType> = Vec::new();
    let mut work_year: Vec<u32> = Vec::new();
    let mut work_creator: Vec<usize> = Vec::new();
    for (person, &born) in birth_year.iter().enumerate() {
        let count = if noise::flip(&mut rng, 0.45) {
            1 + usize::from(person % 5 == 0)
        } else {
            0
        };
        for _ in 0..count {
            let w = works.len();
            works.push(names::movie_title(w));
            work_type.push(WorkType::of(w));
            work_year.push(born + rng.random_range(20u32..60));
            work_creator.push(person);
            creations.push((person, w));
        }
    }
    let mut prizes_won: Vec<(usize, usize)> = Vec::new();
    for p in 0..n {
        if noise::flip(&mut rng, 0.1) {
            prizes_won.push((p, rng.random_range(0..num_prizes)));
        }
    }

    World {
        num_people: n,
        person_name,
        birth_year,
        birth_city,
        death_city,
        spouse,
        children,
        employer,
        citizenship,
        creations,
        prizes_won,
        cities,
        city_country,
        city_population,
        countries,
        orgs,
        org_city,
        works,
        work_type,
        work_year,
        work_creator,
        prizes,
    }
}

/// Which people each side contains: side A gets `[0, a_end)`, side B gets
/// `[b_start, n)`; the overlap is `[b_start, a_end)`.
fn split(n: usize, overlap: f64) -> (usize, usize) {
    let shared = ((n as f64) * overlap).round() as usize;
    let only = n - shared;
    let only_a = only / 2;
    let a_end = only_a + shared;
    let b_start = only_a;
    (a_end, b_start)
}

fn emit_side_a(world: &World, a_end: usize, config: &EncyclopediaConfig) -> KbBuilder {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA);
    let mut b = KbBuilder::new("wikia");
    let ns = NS1;
    let keep = |rng: &mut StdRng| !noise::flip(rng, config.fact_drop_1);

    // Deep taxonomy.
    for (sub, sup) in [
        ("Person", "Entity"),
        ("Creator", "Person"),
        ("Writer", "Creator"),
        ("Composer", "Creator"),
        ("Director", "Creator"),
        ("Location", "Entity"),
        ("City", "Location"),
        ("Country", "Location"),
        ("Organization", "Entity"),
        ("Work", "Entity"),
        ("Book", "Work"),
        ("Song", "Work"),
        ("Film", "Work"),
    ] {
        b.add_subclass(format!("{ns}{sub}"), format!("{ns}{sup}"));
    }
    // Category-style classes: one per city and per prize.
    for city in &world.cities {
        b.add_subclass(format!("{ns}PeopleFrom{city}"), format!("{ns}Person"));
    }
    for prize in &world.prizes {
        let tag = prize.replace(' ', "");
        b.add_subclass(format!("{ns}{tag}Winner"), format!("{ns}Person"));
    }

    let in_side = |p: usize| p < a_end;
    for p in 0..a_end {
        let e = format!("{ns}p{p}");
        b.add_type(e.as_str(), format!("{ns}Person"));
        b.add_type(
            e.as_str(),
            format!("{ns}PeopleFrom{}", world.cities[world.birth_city[p]]),
        );
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}label"),
            Literal::plain(world.person_name[p].clone()),
        );
        if keep(&mut rng) {
            b.add_literal_fact(
                e.as_str(),
                format!("{ns}bornOnDate"),
                Literal::plain(world.birth_year[p].to_string()),
            );
        }
        if keep(&mut rng) {
            b.add_fact(
                e.as_str(),
                format!("{ns}wasBornIn"),
                format!("{ns}city{}", world.birth_city[p]),
            );
        }
        if let Some(d) = world.death_city[p] {
            if keep(&mut rng) {
                b.add_fact(e.as_str(), format!("{ns}diedIn"), format!("{ns}city{d}"));
            }
        }
        if let Some(s) = world.spouse[p] {
            if in_side(s) && keep(&mut rng) {
                b.add_fact(e.as_str(), format!("{ns}isMarriedTo"), format!("{ns}p{s}"));
            }
        }
        if let Some(o) = world.employer[p] {
            if keep(&mut rng) {
                b.add_fact(e.as_str(), format!("{ns}worksAt"), format!("{ns}org{o}"));
            }
        }
        if keep(&mut rng) {
            b.add_fact(
                e.as_str(),
                format!("{ns}isCitizenOf"),
                format!("{ns}country{}", world.citizenship[p]),
            );
        }
    }
    for &(parent, child) in &world.children {
        if in_side(parent) && in_side(child) && keep(&mut rng) {
            b.add_fact(
                format!("{ns}p{parent}"),
                format!("{ns}hasChild"),
                format!("{ns}p{child}"),
            );
        }
    }
    for &(person, prize) in &world.prizes_won {
        if in_side(person) && keep(&mut rng) {
            b.add_fact(
                format!("{ns}p{person}"),
                format!("{ns}hasWonPrize"),
                format!("{ns}prize{prize}"),
            );
            let tag = world.prizes[prize].replace(' ', "");
            b.add_type(format!("{ns}p{person}"), format!("{ns}{tag}Winner"));
        }
    }
    for &(person, w) in &world.creations {
        if !in_side(person) {
            continue;
        }
        let we = format!("{ns}w{w}");
        let (wclass, occupation) = match world.work_type[w] {
            WorkType::Book => ("Book", "Writer"),
            WorkType::Song => ("Song", "Composer"),
            WorkType::Film => ("Film", "Director"),
        };
        b.add_type(we.as_str(), format!("{ns}{wclass}"));
        b.add_type(format!("{ns}p{person}"), format!("{ns}{occupation}"));
        b.add_literal_fact(
            we.as_str(),
            format!("{ns}label"),
            Literal::plain(world.works[w].clone()),
        );
        if keep(&mut rng) {
            b.add_fact(
                format!("{ns}p{person}"),
                format!("{ns}created"),
                we.as_str(),
            );
        }
        if keep(&mut rng) {
            b.add_literal_fact(
                we.as_str(),
                format!("{ns}createdOnDate"),
                Literal::plain(world.work_year[w].to_string()),
            );
        }
    }
    for (c, city) in world.cities.iter().enumerate() {
        let e = format!("{ns}city{c}");
        b.add_type(e.as_str(), format!("{ns}City"));
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}label"),
            Literal::plain(city.clone()),
        );
        b.add_fact(
            e.as_str(),
            format!("{ns}isLocatedIn"),
            format!("{ns}country{}", world.city_country[c]),
        );
        if keep(&mut rng) {
            b.add_literal_fact(
                e.as_str(),
                format!("{ns}hasPopulation"),
                Literal::plain(world.city_population[c].to_string()),
            );
        }
    }
    for (k, country) in world.countries.iter().enumerate() {
        let e = format!("{ns}country{k}");
        b.add_type(e.as_str(), format!("{ns}Country"));
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}label"),
            Literal::plain(country.clone()),
        );
    }
    for (o, org) in world.orgs.iter().enumerate() {
        let e = format!("{ns}org{o}");
        b.add_type(e.as_str(), format!("{ns}Organization"));
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}label"),
            Literal::plain(org.clone()),
        );
        b.add_fact(
            e.as_str(),
            format!("{ns}isLocatedIn"),
            format!("{ns}city{}", world.org_city[o]),
        );
    }
    for (pz, prize) in world.prizes.iter().enumerate() {
        let e = format!("{ns}prize{pz}");
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}label"),
            Literal::plain(prize.clone()),
        );
    }
    b
}

fn emit_side_b(world: &World, b_start: usize, config: &EncyclopediaConfig) -> KbBuilder {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB);
    let mut b = KbBuilder::new("dbp");
    let ns = NS2;
    let n = world.num_people;
    let keep = |rng: &mut StdRng| !noise::flip(rng, config.fact_drop_2);

    // Flat(ish) hierarchy: DBpedia style.
    for (sub, sup) in [
        ("Person", "Agent"),
        ("Writer", "Person"),
        ("MusicalArtist", "Person"),
        ("FilmDirector", "Person"),
        ("Settlement", "Place"),
        ("Country", "Place"),
        ("WrittenWork", "Work"),
        ("MusicalWork", "Work"),
        ("Film", "Work"),
    ] {
        b.add_subclass(format!("{ns}{sub}"), format!("{ns}{sup}"));
    }

    let in_side = |p: usize| p >= b_start && p < n;
    for p in b_start..n {
        let e = format!("{ns}P{p}");
        b.add_type(e.as_str(), format!("{ns}Person"));
        if !noise::flip(&mut rng, config.label_drop_2) {
            b.add_literal_fact(
                e.as_str(),
                format!("{ns}name"),
                Literal::plain(world.person_name[p].clone()),
            );
        }
        if keep(&mut rng) {
            b.add_literal_fact(
                e.as_str(),
                format!("{ns}birthYear"),
                Literal::plain(world.birth_year[p].to_string()),
            );
        }
        if keep(&mut rng) {
            b.add_fact(
                e.as_str(),
                format!("{ns}birthPlace"),
                format!("{ns}C{}", world.birth_city[p]),
            );
        }
        if let Some(d) = world.death_city[p] {
            if keep(&mut rng) {
                b.add_fact(e.as_str(), format!("{ns}deathPlace"), format!("{ns}C{d}"));
            }
        }
        if let Some(s) = world.spouse[p] {
            // Stored in the *opposite* person order from side A.
            if in_side(s) && keep(&mut rng) {
                b.add_fact(format!("{ns}P{s}"), format!("{ns}spouse"), e.as_str());
            }
        }
        if let Some(o) = world.employer[p] {
            if keep(&mut rng) {
                b.add_fact(e.as_str(), format!("{ns}employer"), format!("{ns}O{o}"));
            }
        }
        if keep(&mut rng) {
            b.add_fact(
                e.as_str(),
                format!("{ns}nationality"),
                format!("{ns}K{}", world.citizenship[p]),
            );
        }
    }
    for &(parent, child) in &world.children {
        // Inverted: child → parent.
        if in_side(parent) && in_side(child) && keep(&mut rng) {
            b.add_fact(
                format!("{ns}P{child}"),
                format!("{ns}parent"),
                format!("{ns}P{parent}"),
            );
        }
    }
    for &(person, prize) in &world.prizes_won {
        if in_side(person) && keep(&mut rng) {
            b.add_fact(
                format!("{ns}P{person}"),
                format!("{ns}award"),
                format!("{ns}Z{prize}"),
            );
        }
    }
    for &(person, w) in &world.creations {
        if !in_side(person) {
            continue;
        }
        let we = format!("{ns}W{w}");
        let (wclass, pclass, rel) = match world.work_type[w] {
            WorkType::Book => ("WrittenWork", "Writer", "author"),
            WorkType::Song => ("MusicalWork", "MusicalArtist", "composer"),
            WorkType::Film => ("Film", "FilmDirector", "director"),
        };
        b.add_type(we.as_str(), format!("{ns}{wclass}"));
        b.add_type(format!("{ns}P{person}"), format!("{ns}{pclass}"));
        if !noise::flip(&mut rng, config.label_drop_2) {
            b.add_literal_fact(
                we.as_str(),
                format!("{ns}name"),
                Literal::plain(world.works[w].clone()),
            );
        }
        // Inverted and split: work → person.
        if keep(&mut rng) {
            b.add_fact(we.as_str(), format!("{ns}{rel}"), format!("{ns}P{person}"));
        }
        if keep(&mut rng) {
            b.add_literal_fact(
                we.as_str(),
                format!("{ns}releaseYear"),
                Literal::plain(world.work_year[w].to_string()),
            );
        }
    }
    for (c, city) in world.cities.iter().enumerate() {
        let e = format!("{ns}C{c}");
        b.add_type(e.as_str(), format!("{ns}Settlement"));
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}name"),
            Literal::plain(city.clone()),
        );
        b.add_fact(
            e.as_str(),
            format!("{ns}locatedIn"),
            format!("{ns}K{}", world.city_country[c]),
        );
        if keep(&mut rng) {
            b.add_literal_fact(
                e.as_str(),
                format!("{ns}populationTotal"),
                Literal::plain(world.city_population[c].to_string()),
            );
        }
    }
    for (k, country) in world.countries.iter().enumerate() {
        let e = format!("{ns}K{k}");
        b.add_type(e.as_str(), format!("{ns}Country"));
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}name"),
            Literal::plain(country.clone()),
        );
    }
    for (o, org) in world.orgs.iter().enumerate() {
        let e = format!("{ns}O{o}");
        b.add_type(e.as_str(), format!("{ns}Organisation"));
        b.add_literal_fact(e.as_str(), format!("{ns}name"), Literal::plain(org.clone()));
        // Split of a:isLocatedIn for organizations.
        b.add_fact(
            e.as_str(),
            format!("{ns}headquarter"),
            format!("{ns}C{}", world.org_city[o]),
        );
    }
    for (pz, prize) in world.prizes.iter().enumerate() {
        let e = format!("{ns}Z{pz}");
        b.add_literal_fact(
            e.as_str(),
            format!("{ns}name"),
            Literal::plain(prize.clone()),
        );
    }
    b
}

fn relation_gold() -> (Vec<RelationGold>, Vec<RelationGold>) {
    let g = |sub: &str, sup: &str, inverted: bool| RelationGold {
        sub: Iri::new(format!("{NS1}{sub}")),
        sup: Iri::new(format!("{NS2}{sup}")),
        inverted,
    };
    let h = |sub: &str, sup: &str, inverted: bool| RelationGold {
        sub: Iri::new(format!("{NS2}{sub}")),
        sup: Iri::new(format!("{NS1}{sup}")),
        inverted,
    };
    let one_to_two = vec![
        g("label", "name", false),
        g("bornOnDate", "birthYear", false),
        g("wasBornIn", "birthPlace", false),
        g("diedIn", "deathPlace", false),
        g("isMarriedTo", "spouse", false),
        g("isMarriedTo", "spouse", true), // symmetric in the world
        g("hasChild", "parent", true),
        g("worksAt", "employer", false),
        g("isCitizenOf", "nationality", false),
        g("hasWonPrize", "award", false),
        g("created", "author", true),
        g("created", "composer", true),
        g("created", "director", true),
        g("createdOnDate", "releaseYear", false),
        g("hasPopulation", "populationTotal", false),
    ];
    let two_to_one = vec![
        h("name", "label", false),
        h("birthYear", "bornOnDate", false),
        h("birthPlace", "wasBornIn", false),
        h("deathPlace", "diedIn", false),
        h("spouse", "isMarriedTo", false),
        h("spouse", "isMarriedTo", true),
        h("parent", "hasChild", true),
        h("employer", "worksAt", false),
        h("nationality", "isCitizenOf", false),
        h("award", "hasWonPrize", false),
        h("author", "created", true),
        h("composer", "created", true),
        h("director", "created", true),
        h("releaseYear", "createdOnDate", false),
        h("populationTotal", "hasPopulation", false),
        h("locatedIn", "isLocatedIn", false),
        h("headquarter", "isLocatedIn", false),
    ];
    (one_to_two, two_to_one)
}

/// Strict ancestors within side A's hardcoded taxonomy.
fn a_ancestors(class: &str) -> &'static [&'static str] {
    match class {
        "Person" | "Location" | "Organization" | "Work" => &["Entity"],
        "Creator" => &["Person", "Entity"],
        "Writer" | "Composer" | "Director" => &["Creator", "Person", "Entity"],
        "City" | "Country" => &["Location", "Entity"],
        "Book" | "Song" | "Film" => &["Work", "Entity"],
        _ => &[],
    }
}

/// Strict ancestors within side B's hardcoded taxonomy.
fn b_ancestors(class: &str) -> &'static [&'static str] {
    match class {
        "Person" => &["Agent"],
        "Writer" | "MusicalArtist" | "FilmDirector" => &["Person", "Agent"],
        "Settlement" | "Country" => &["Place"],
        "WrittenWork" | "MusicalWork" | "Film" => &["Work"],
        _ => &[],
    }
}

/// The true class inclusions in both directions: for each source class,
/// its tightest counterpart on the other side plus all of that
/// counterpart's ancestors. (The paper evaluates class alignments
/// manually; completeness here matters because an incomplete gold would
/// count true inclusions like `b:Country ⊆ a:Location` as errors.)
/// A directional list of `(sub-class IRI, super-class IRI)` gold pairs.
type ClassGoldList = Vec<(Iri, Iri)>;

fn class_gold(world: &World) -> (ClassGoldList, ClassGoldList) {
    let a = |c: &str| Iri::new(format!("{NS1}{c}"));
    let b = |c: &str| Iri::new(format!("{NS2}{c}"));

    // Tightest A → B counterparts.
    const CORE_A_TO_B: &[(&str, &str)] = &[
        ("Person", "Person"),
        ("Creator", "Person"), // B has no Creator; Person is the tightest superset
        ("Writer", "Writer"),
        ("Composer", "MusicalArtist"),
        ("Director", "FilmDirector"),
        ("Location", "Place"),
        ("City", "Settlement"),
        ("Country", "Country"),
        ("Organization", "Organisation"),
        ("Work", "Work"),
        ("Book", "WrittenWork"),
        ("Song", "MusicalWork"),
        ("Film", "Film"),
    ];
    let mut one_to_two = Vec::new();
    for &(ca, cb) in CORE_A_TO_B {
        one_to_two.push((a(ca), b(cb)));
        for &anc in b_ancestors(cb) {
            one_to_two.push((a(ca), b(anc)));
        }
    }
    // Category classes are subclasses of Person on the other side.
    let mut category_tags: Vec<String> = world
        .cities
        .iter()
        .map(|c| format!("PeopleFrom{c}"))
        .collect();
    category_tags.extend(
        world
            .prizes
            .iter()
            .map(|p| format!("{}Winner", p.replace(' ', ""))),
    );
    for tag in &category_tags {
        one_to_two.push((a(tag), b("Person")));
        one_to_two.push((a(tag), b("Agent")));
    }

    // Tightest B → A counterparts.
    const CORE_B_TO_A: &[(&str, &str)] = &[
        ("Person", "Person"),
        ("Agent", "Person"), // every Agent in this world is a person
        ("Writer", "Writer"),
        ("MusicalArtist", "Composer"),
        ("FilmDirector", "Director"),
        ("Place", "Location"),
        ("Settlement", "City"),
        ("Country", "Country"),
        ("Organisation", "Organization"),
        ("Work", "Work"),
        ("WrittenWork", "Book"),
        ("MusicalWork", "Song"),
        ("Film", "Film"),
    ];
    let mut two_to_one = Vec::new();
    for &(cb, ca) in CORE_B_TO_A {
        two_to_one.push((b(cb), a(ca)));
        for &anc in a_ancestors(ca) {
            two_to_one.push((b(cb), a(anc)));
        }
    }
    (one_to_two, two_to_one)
}

/// Generates the encyclopedia dataset pair.
pub fn generate(config: &EncyclopediaConfig) -> DatasetPair {
    let world = build_world(config);
    let (a_end, b_start) = split(world.num_people, config.overlap);
    let kb1 = emit_side_a(&world, a_end, config).build();
    let kb2 = emit_side_b(&world, b_start, config).build();

    let mut gold = GoldStandard::default();
    for p in b_start..a_end {
        gold.instances.push((
            Iri::new(format!("{NS1}p{p}")),
            Iri::new(format!("{NS2}P{p}")),
        ));
    }
    for c in 0..world.cities.len() {
        gold.instances.push((
            Iri::new(format!("{NS1}city{c}")),
            Iri::new(format!("{NS2}C{c}")),
        ));
    }
    for k in 0..world.countries.len() {
        gold.instances.push((
            Iri::new(format!("{NS1}country{k}")),
            Iri::new(format!("{NS2}K{k}")),
        ));
    }
    for o in 0..world.orgs.len() {
        gold.instances.push((
            Iri::new(format!("{NS1}org{o}")),
            Iri::new(format!("{NS2}O{o}")),
        ));
    }
    for z in 0..world.prizes.len() {
        gold.instances.push((
            Iri::new(format!("{NS1}prize{z}")),
            Iri::new(format!("{NS2}Z{z}")),
        ));
    }
    for (w, &creator) in world.work_creator.iter().enumerate() {
        if creator >= b_start && creator < a_end {
            gold.instances.push((
                Iri::new(format!("{NS1}w{w}")),
                Iri::new(format!("{NS2}W{w}")),
            ));
        }
    }
    let (r12, r21) = relation_gold();
    gold.relations_1to2 = r12;
    gold.relations_2to1 = r21;
    let (c12, c21) = class_gold(&world);
    gold.classes_1to2 = c12;
    gold.classes_2to1 = c21;

    DatasetPair { kb1, kb2, gold }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EncyclopediaConfig {
        EncyclopediaConfig {
            num_people: 400,
            ..EncyclopediaConfig::default()
        }
    }

    #[test]
    fn sides_have_contrasting_shapes() {
        let pair = generate(&small());
        // Side A: fewer relations, more classes (yago-like).
        assert!(pair.kb1.num_base_relations() < pair.kb2.num_base_relations());
        assert!(pair.kb1.num_classes() > pair.kb2.num_classes());
        assert!(pair.gold_is_consistent());
    }

    #[test]
    fn overlap_fraction_is_respected() {
        let config = small();
        let pair = generate(&config);
        let people_gold = pair
            .gold
            .instances
            .iter()
            .filter(|(a, _)| {
                a.as_str()
                    .strip_prefix("http://wikia.test/p")
                    .is_some_and(|rest| rest.chars().all(|c| c.is_ascii_digit()))
            })
            .count();
        let expected = (400.0 * config.overlap).round() as usize;
        assert_eq!(people_gold, expected);
    }

    #[test]
    fn inverted_relations_are_really_inverted() {
        let pair = generate(&small());
        // a:hasChild goes parent→child; b:parent goes child→parent.
        let has_child = pair
            .kb1
            .relation_by_iri("http://wikia.test/hasChild")
            .unwrap();
        let parent = pair.kb2.relation_by_iri("http://dbp.test/parent").unwrap();
        assert!(pair.kb1.num_pairs(has_child) > 0);
        assert!(pair.kb2.num_pairs(parent) > 0);
        // Spot-check one pair: the child id is numerically > parent id.
        let (x, y) = pair.kb1.pairs(has_child).next().unwrap();
        let xi: usize = pair
            .kb1
            .iri(x)
            .unwrap()
            .as_str()
            .rsplit('p')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let yi: usize = pair
            .kb1
            .iri(y)
            .unwrap()
            .as_str()
            .rsplit('p')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(yi > xi, "hasChild must go parent→child");
        let (c, p) = pair.kb2.pairs(parent).next().unwrap();
        let ci: usize = pair
            .kb2
            .iri(c)
            .unwrap()
            .as_str()
            .rsplit('P')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let pi: usize = pair
            .kb2
            .iri(p)
            .unwrap()
            .as_str()
            .rsplit('P')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(ci > pi, "parent must go child→parent");
    }

    #[test]
    fn created_is_split_by_work_type() {
        let pair = generate(&small());
        let created = pair
            .kb1
            .relation_by_iri("http://wikia.test/created")
            .unwrap();
        let author = pair.kb2.relation_by_iri("http://dbp.test/author").unwrap();
        let composer = pair
            .kb2
            .relation_by_iri("http://dbp.test/composer")
            .unwrap();
        let director = pair
            .kb2
            .relation_by_iri("http://dbp.test/director")
            .unwrap();
        let split_total = pair.kb2.num_pairs(author)
            + pair.kb2.num_pairs(composer)
            + pair.kb2.num_pairs(director);
        assert!(pair.kb1.num_pairs(created) > 0);
        assert!(split_total > 0);
        // The three splits partition roughly evenly.
        assert!(pair.kb2.num_pairs(author) > 0);
        assert!(pair.kb2.num_pairs(composer) > 0);
        assert!(pair.kb2.num_pairs(director) > 0);
    }

    #[test]
    fn category_classes_exist_on_side_a() {
        let pair = generate(&small());
        let from_classes = pair
            .kb1
            .classes()
            .iter()
            .filter(|&&c| pair.kb1.iri(c).unwrap().as_str().contains("PeopleFrom"))
            .count();
        assert!(from_classes >= 4, "{from_classes}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.kb1.num_facts(), b.kb1.num_facts());
        assert_eq!(a.kb2.num_facts(), b.kb2.num_facts());
        assert_eq!(a.gold.instances, b.gold.instances);
    }

    #[test]
    fn seeds_change_content() {
        let a = generate(&small());
        let b = generate(&EncyclopediaConfig {
            seed: 99,
            ..small()
        });
        assert_ne!(a.kb1.num_facts(), b.kb1.num_facts());
    }

    #[test]
    fn label_drop_reduces_side_b_names() {
        let pair = generate(&small());
        let name = pair.kb2.relation_by_iri("http://dbp.test/name").unwrap();
        let people: usize = pair
            .kb2
            .entities()
            .filter(|&e| {
                pair.kb2
                    .iri(e)
                    .map(|i| i.as_str().contains("/P"))
                    .unwrap_or(false)
            })
            .count();
        let named_people = pair
            .kb2
            .pairs(name)
            .filter(|&(s, _)| {
                pair.kb2
                    .iri(s)
                    .map(|i| i.as_str().contains("/P"))
                    .unwrap_or(false)
            })
            .count();
        assert!(named_people < people, "some labels must be missing");
        assert!(named_people as f64 > people as f64 * 0.7);
    }
}
