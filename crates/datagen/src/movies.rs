//! Synthetic stand-in for the yago–IMDb experiment (paper §6.4).
//!
//! One latent movie world is rendered as:
//!
//! * **side A ("yagofilm", yago-like)** — the *famous* subset of people and
//!   movies (yago covers Wikipedia-notable entities only), with
//!   person→movie relations (`a:actedIn`, `a:directed`), `rdfs:label` on
//!   everything, and subclassed person types (`a:Actor ⊑ a:Person`);
//! * **side B ("imdb", IMDb-like)** — *everything*, with the relations
//!   stored movie→person (`b:cast`, `b:director` — inverted, like the
//!   plain-text IMDb dumps), a flat 4-class schema, and catalogue-style
//!   title conventions.
//!
//! Noise reproduces the paper's observed error sources: word-order title
//! variants (*Sugata Sanshirô* / *Sanshiro Sugata*), near-duplicate movies
//! (*King of the Royal Mounted* vs its feature version *The Yukon Patrol*
//! with the same cast and crew), shared person names, and label variants
//! that cripple the exact-label baseline (97 % precision but only ~70 %
//! recall in the paper).

use paris_kb::KbBuilder;
use paris_rdf::{Iri, Literal};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::gold::{DatasetPair, GoldStandard, RelationGold};
use crate::names;
use crate::noise;

/// Configuration of the movies generator.
#[derive(Clone, Debug)]
pub struct MoviesConfig {
    /// Number of movies in the world.
    pub num_movies: usize,
    /// People per movie (cast size range is 2..=this).
    pub max_cast: usize,
    /// Fraction of movies/people famous enough for side A.
    pub famous_fraction: f64,
    /// Fraction of side-B titles with swapped word order.
    pub title_swap_fraction: f64,
    /// Fraction of side-A person labels that differ from side B (middle
    /// initials etc.) — what caps the label baseline's recall.
    pub label_variant_fraction: f64,
    /// Number of near-duplicate movie pairs (feature versions sharing cast
    /// and director) — the paper's precision hazard.
    pub near_duplicates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        MoviesConfig {
            num_movies: 800,
            max_cast: 6,
            famous_fraction: 0.55,
            title_swap_fraction: 0.06,
            label_variant_fraction: 0.25,
            near_duplicates: 8,
            seed: 23,
        }
    }
}

const NS1: &str = "http://yagofilm.test/";
const NS2: &str = "http://imdb.test/";

struct MovieWorld {
    num_people: usize,
    person_name: Vec<String>,
    /// Side-A label variant (sometimes with a middle initial).
    person_label_a: Vec<String>,
    person_birth: Vec<u32>,
    movie_title: Vec<String>,
    /// Side-B title (sometimes word-swapped).
    movie_title_b: Vec<String>,
    movie_year: Vec<u32>,
    /// `(movie, person)` cast pairs.
    cast: Vec<(usize, usize)>,
    /// Per movie: director person.
    director: Vec<usize>,
    /// Movies that are TV series (class differs on side B).
    is_series: Vec<bool>,
    famous_person: Vec<bool>,
    famous_movie: Vec<bool>,
}

fn build_world(config: &MoviesConfig) -> MovieWorld {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let base_movies = config.num_movies;
    let num_people = (base_movies as f64 * 2.5) as usize;

    let mut person_name: Vec<String> = (0..num_people).map(names::person_name).collect();
    // A few people share names (precision hazard for the label baseline).
    for i in 1..num_people {
        if noise::flip(&mut rng, 0.02) {
            person_name[i] = person_name[i - 1].clone();
        }
    }
    let person_label_a: Vec<String> = person_name
        .iter()
        .enumerate()
        .map(|(i, n)| {
            if noise::flip(&mut rng, config.label_variant_fraction) {
                // Middle initial on side A: "Alice Smith" → "Alice K. Smith".
                let initial = (b'A' + (i % 26) as u8) as char;
                match n.split_once(' ') {
                    Some((first, rest)) => format!("{first} {initial}. {rest}"),
                    None => format!("{n} {initial}."),
                }
            } else {
                n.clone()
            }
        })
        .collect();
    let person_birth: Vec<u32> = (0..num_people)
        .map(|_| rng.random_range(1900..2000))
        .collect();

    let mut movie_title: Vec<String> = (0..base_movies).map(names::movie_title).collect();
    let mut movie_year: Vec<u32> = (0..base_movies)
        .map(|_| rng.random_range(1930..2010))
        .collect();
    let mut cast: Vec<(usize, usize)> = Vec::new();
    let mut director: Vec<usize> = Vec::new();
    let mut is_series: Vec<bool> = Vec::new();
    for m in 0..base_movies {
        let cast_size = rng.random_range(2..=config.max_cast.max(3));
        for _ in 0..cast_size {
            cast.push((m, rng.random_range(0..num_people)));
        }
        director.push(rng.random_range(0..num_people));
        is_series.push(noise::flip(&mut rng, 0.1));
    }
    cast.sort_unstable();
    cast.dedup();

    // Near-duplicates: append a feature version sharing cast and director.
    let mut duplicates = Vec::new();
    for k in 0..config.near_duplicates.min(base_movies) {
        let orig = k * (base_movies / config.near_duplicates.max(1)).max(1);
        let dup = movie_title.len();
        movie_title.push(format!("{}: The Feature", movie_title[orig]));
        movie_year.push(movie_year[orig] + 1);
        let orig_cast: Vec<(usize, usize)> = cast
            .iter()
            .filter(|&&(m, _)| m == orig)
            .map(|&(_, p)| (dup, p))
            .collect();
        cast.extend(orig_cast);
        director.push(director[orig]);
        is_series.push(false);
        duplicates.push((orig, dup));
    }

    let num_movies = movie_title.len();
    let movie_title_b: Vec<String> = movie_title
        .iter()
        .map(|t| {
            if noise::flip(&mut rng, config.title_swap_fraction) {
                noise::swap_words(t)
            } else {
                t.clone()
            }
        })
        .collect();

    let famous_person: Vec<bool> = (0..num_people)
        .map(|_| noise::flip(&mut rng, config.famous_fraction))
        .collect();
    let mut famous_movie: Vec<bool> = (0..num_movies)
        .map(|_| noise::flip(&mut rng, config.famous_fraction))
        .collect();
    // Feature versions are obscure: only the original is in yago.
    for &(_, dup) in &duplicates {
        famous_movie[dup] = false;
    }

    // False friends: a few catalogue-only people carry *exactly* the
    // curated side's variant label of a famous person. Both labels are
    // unique on their side, so the exact-label baseline confidently
    // mismatches them — this keeps the baseline's precision below 100 %
    // (the paper measured it at 97 %). PARIS recovers these through
    // shared movie structure in later iterations.
    let variant_famous: Vec<usize> = (0..num_people)
        .filter(|&i| famous_person[i] && person_label_a[i] != person_name[i])
        .collect();
    let obscure: Vec<usize> = (0..num_people)
        .rev()
        .filter(|&j| !famous_person[j])
        .collect();
    let false_friends = (num_people / 120)
        .min(variant_famous.len())
        .min(obscure.len());
    for k in 0..false_friends {
        person_name[obscure[k]] = person_label_a[variant_famous[k]].clone();
    }

    MovieWorld {
        num_people,
        person_name,
        person_label_a,
        person_birth,
        movie_title,
        movie_title_b,
        movie_year,
        cast,
        director,
        is_series,
        famous_person,
        famous_movie,
    }
}

/// Generates the movies dataset pair.
pub fn generate(config: &MoviesConfig) -> DatasetPair {
    let world = build_world(config);

    // ---- side A: famous subset, person→movie relations, labels.
    let mut b1 = KbBuilder::new("yagofilm");
    for (sub, sup) in [
        ("Actor", "Person"),
        ("Director", "Person"),
        ("Movie", "Work"),
    ] {
        b1.add_subclass(format!("{NS1}{sub}"), format!("{NS1}{sup}"));
    }
    for p in 0..world.num_people {
        if !world.famous_person[p] {
            continue;
        }
        let e = format!("{NS1}p{p}");
        b1.add_type(e.as_str(), format!("{NS1}Person"));
        b1.add_literal_fact(
            e.as_str(),
            paris_rdf::vocab::RDFS_LABEL,
            Literal::plain(world.person_label_a[p].clone()),
        );
        b1.add_literal_fact(
            e.as_str(),
            format!("{NS1}bornOnDate"),
            Literal::plain(world.person_birth[p].to_string()),
        );
    }
    for m in 0..world.movie_title.len() {
        if !world.famous_movie[m] {
            continue;
        }
        let e = format!("{NS1}m{m}");
        b1.add_type(e.as_str(), format!("{NS1}Movie"));
        b1.add_literal_fact(
            e.as_str(),
            paris_rdf::vocab::RDFS_LABEL,
            Literal::plain(world.movie_title[m].clone()),
        );
        b1.add_literal_fact(
            e.as_str(),
            format!("{NS1}producedOnDate"),
            Literal::plain(world.movie_year[m].to_string()),
        );
        if world.famous_person[world.director[m]] {
            b1.add_fact(
                format!("{NS1}p{}", world.director[m]),
                format!("{NS1}directed"),
                e.as_str(),
            );
            b1.add_type(
                format!("{NS1}p{}", world.director[m]),
                format!("{NS1}Director"),
            );
        }
    }
    for &(m, p) in &world.cast {
        if world.famous_movie[m] && world.famous_person[p] {
            b1.add_fact(
                format!("{NS1}p{p}"),
                format!("{NS1}actedIn"),
                format!("{NS1}m{m}"),
            );
            b1.add_type(format!("{NS1}p{p}"), format!("{NS1}Actor"));
        }
    }

    // ---- side B: everything, movie→person relations, flat classes.
    let mut b2 = KbBuilder::new("imdb");
    for p in 0..world.num_people {
        let e = format!("{NS2}nm{p}");
        b2.add_type(e.as_str(), format!("{NS2}person"));
        b2.add_literal_fact(
            e.as_str(),
            paris_rdf::vocab::RDFS_LABEL,
            Literal::plain(world.person_name[p].clone()),
        );
        b2.add_literal_fact(
            e.as_str(),
            format!("{NS2}birthYear"),
            Literal::plain(world.person_birth[p].to_string()),
        );
    }
    for m in 0..world.movie_title.len() {
        let e = format!("{NS2}tt{m}");
        let class = if world.is_series[m] {
            "tvSeries"
        } else {
            "movie"
        };
        b2.add_type(e.as_str(), format!("{NS2}{class}"));
        b2.add_literal_fact(
            e.as_str(),
            paris_rdf::vocab::RDFS_LABEL,
            Literal::plain(world.movie_title_b[m].clone()),
        );
        b2.add_literal_fact(
            e.as_str(),
            format!("{NS2}year"),
            Literal::plain(world.movie_year[m].to_string()),
        );
        b2.add_fact(
            e.as_str(),
            format!("{NS2}director"),
            format!("{NS2}nm{}", world.director[m]),
        );
    }
    for &(m, p) in &world.cast {
        b2.add_fact(
            format!("{NS2}tt{m}"),
            format!("{NS2}cast"),
            format!("{NS2}nm{p}"),
        );
    }

    // ---- gold
    let mut gold = GoldStandard::default();
    for p in 0..world.num_people {
        if world.famous_person[p] {
            gold.instances.push((
                Iri::new(format!("{NS1}p{p}")),
                Iri::new(format!("{NS2}nm{p}")),
            ));
        }
    }
    for m in 0..world.movie_title.len() {
        if world.famous_movie[m] {
            gold.instances.push((
                Iri::new(format!("{NS1}m{m}")),
                Iri::new(format!("{NS2}tt{m}")),
            ));
        }
    }
    let g = |sub: &str, sup: &str, inverted: bool| RelationGold {
        sub: Iri::new(if sub.contains("://") {
            sub.to_owned()
        } else {
            format!("{NS1}{sub}")
        }),
        sup: Iri::new(if sup.contains("://") {
            sup.to_owned()
        } else {
            format!("{NS2}{sup}")
        }),
        inverted,
    };
    gold.relations_1to2 = vec![
        g("actedIn", "cast", true),
        g("directed", "director", true),
        g(
            paris_rdf::vocab::RDFS_LABEL,
            paris_rdf::vocab::RDFS_LABEL,
            false,
        ),
        g("bornOnDate", "birthYear", false),
        g("producedOnDate", "year", false),
    ];
    let h = |sub: &str, sup: &str, inverted: bool| RelationGold {
        sub: Iri::new(if sub.contains("://") {
            sub.to_owned()
        } else {
            format!("{NS2}{sub}")
        }),
        sup: Iri::new(if sup.contains("://") {
            sup.to_owned()
        } else {
            format!("{NS1}{sup}")
        }),
        inverted,
    };
    gold.relations_2to1 = vec![
        h("cast", "actedIn", true),
        h("director", "directed", true),
        h(
            paris_rdf::vocab::RDFS_LABEL,
            paris_rdf::vocab::RDFS_LABEL,
            false,
        ),
        h("birthYear", "bornOnDate", false),
        h("year", "producedOnDate", false),
    ];
    gold.classes_1to2 = vec![
        (
            Iri::new(format!("{NS1}Person")),
            Iri::new(format!("{NS2}person")),
        ),
        (
            Iri::new(format!("{NS1}Actor")),
            Iri::new(format!("{NS2}person")),
        ),
        (
            Iri::new(format!("{NS1}Director")),
            Iri::new(format!("{NS2}person")),
        ),
        (
            Iri::new(format!("{NS1}Movie")),
            Iri::new(format!("{NS2}movie")),
        ),
    ];
    gold.classes_2to1 = vec![
        (
            Iri::new(format!("{NS2}person")),
            Iri::new(format!("{NS1}Person")),
        ),
        (
            Iri::new(format!("{NS2}movie")),
            Iri::new(format!("{NS1}Movie")),
        ),
    ];

    DatasetPair {
        kb1: b1.build(),
        kb2: b2.build(),
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MoviesConfig {
        MoviesConfig {
            num_movies: 200,
            ..MoviesConfig::default()
        }
    }

    #[test]
    fn side_b_is_strictly_larger() {
        let pair = generate(&small());
        assert!(pair.kb2.num_instances() > pair.kb1.num_instances());
        assert!(pair.gold_is_consistent());
    }

    #[test]
    fn relations_are_inverted_across_sides() {
        let pair = generate(&small());
        let acted = pair
            .kb1
            .relation_by_iri("http://yagofilm.test/actedIn")
            .unwrap();
        let cast = pair.kb2.relation_by_iri("http://imdb.test/cast").unwrap();
        // a:actedIn subjects are people (IRIs contain "/p"); b:cast subjects
        // are movies ("tt").
        let (s, _) = pair.kb1.pairs(acted).next().unwrap();
        assert!(pair.kb1.iri(s).unwrap().as_str().contains("/p"));
        let (s2, _) = pair.kb2.pairs(cast).next().unwrap();
        assert!(pair.kb2.iri(s2).unwrap().as_str().contains("/tt"));
    }

    #[test]
    fn labels_exist_on_both_sides() {
        let pair = generate(&small());
        let l1 = pair
            .kb1
            .relation_by_iri(paris_rdf::vocab::RDFS_LABEL)
            .unwrap();
        let l2 = pair
            .kb2
            .relation_by_iri(paris_rdf::vocab::RDFS_LABEL)
            .unwrap();
        assert!(pair.kb1.num_pairs(l1) > 0);
        assert!(pair.kb2.num_pairs(l2) > 0);
    }

    #[test]
    fn label_variants_limit_exact_matching() {
        let pair = generate(&small());
        let l1 = pair
            .kb1
            .relation_by_iri(paris_rdf::vocab::RDFS_LABEL)
            .unwrap();
        let labels2: std::collections::HashSet<String> = {
            let l2 = pair
                .kb2
                .relation_by_iri(paris_rdf::vocab::RDFS_LABEL)
                .unwrap();
            pair.kb2
                .pairs(l2)
                .map(|(_, l)| pair.kb2.literal(l).unwrap().value().to_owned())
                .collect()
        };
        let (mut hit, mut miss) = (0usize, 0usize);
        for (_, l) in pair.kb1.pairs(l1) {
            if labels2.contains(pair.kb1.literal(l).unwrap().value()) {
                hit += 1;
            } else {
                miss += 1;
            }
        }
        let recall_bound = hit as f64 / (hit + miss) as f64;
        assert!(
            recall_bound < 0.95,
            "label variants must exist: {recall_bound}"
        );
        assert!(
            recall_bound > 0.5,
            "most labels still match: {recall_bound}"
        );
    }

    #[test]
    fn near_duplicates_share_cast() {
        let config = small();
        let pair = generate(&config);
        // The duplicate movies exist on side B with "… The Feature" titles.
        // Title-swap noise may reorder the surrounding words, so match on
        // the marker word (absent from the title vocabulary) rather than
        // the exact ": The Feature" suffix.
        let l2 = pair
            .kb2
            .relation_by_iri(paris_rdf::vocab::RDFS_LABEL)
            .unwrap();
        let feature_titles = pair
            .kb2
            .pairs(l2)
            .filter(|&(_, l)| pair.kb2.literal(l).unwrap().value().contains("Feature"))
            .count();
        assert_eq!(feature_titles, config.near_duplicates);
    }

    #[test]
    fn deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.kb1.num_facts(), b.kb1.num_facts());
        assert_eq!(a.gold.instances, b.gold.instances);
    }

    #[test]
    fn famous_fraction_scales_side_a() {
        let sparse = generate(&MoviesConfig {
            famous_fraction: 0.2,
            ..small()
        });
        let dense = generate(&MoviesConfig {
            famous_fraction: 0.9,
            ..small()
        });
        assert!(dense.kb1.num_instances() > sparse.kb1.num_instances() * 2);
    }
}
