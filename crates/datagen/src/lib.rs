//! Synthetic dataset generators for the PARIS reproduction.
//!
//! The paper evaluates on the OAEI 2010 benchmark (person, restaurant) and
//! on yago / DBpedia / IMDb. None of those artifacts is redistributable or
//! still hosted in its 2011 form, so this crate generates *structural
//! equivalents* from seeded latent worlds: each generator documents which
//! properties of the original it preserves (overlap fraction, relation
//! functionality profile, literal noise, schema-design contrast) — see
//! DESIGN.md §3 for the substitution table.
//!
//! All generators are deterministic given their config (seeded `StdRng`,
//! no iteration-order dependence), so experiments are exactly
//! reproducible.
//!
//! ```
//! use paris_datagen::persons::{generate, PersonsConfig};
//!
//! let pair = generate(&PersonsConfig { num_persons: 50, ..Default::default() });
//! assert_eq!(pair.gold.num_instances(), 100); // 50 people + 50 addresses
//! assert!(pair.gold_is_consistent());
//! ```

#![forbid(unsafe_code)]

pub mod encyclopedia;
pub mod gold;
pub mod movies;
pub mod names;
pub mod noise;
pub mod persons;
pub mod restaurants;

pub use encyclopedia::EncyclopediaConfig;
pub use gold::{DatasetPair, GoldStandard, RelationGold};
pub use movies::MoviesConfig;
pub use persons::PersonsConfig;
pub use restaurants::RestaurantsConfig;
