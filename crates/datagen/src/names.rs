//! Deterministic synthetic name generation.
//!
//! Produces human-looking names, street names, movie titles, and
//! organization names from small word pools plus syllable composition —
//! scalable to arbitrary counts without ever repeating (a numeric
//! discriminator is appended when pools are exhausted), so the
//! "one ontology contains no duplicates" assumption (§3) holds by
//! construction.

use rand::rngs::StdRng;
use rand::RngExt;

const SYLLABLES: &[&str] = &[
    "ka", "ro", "mi", "ta", "lo", "ve", "na", "si", "du", "fe", "gar", "bel", "ton", "mar", "lin",
    "sor", "pel", "ran", "vi", "ze", "qua", "bri", "cho", "dre",
];

const FIRST_NAMES: &[&str] = &[
    "Alice", "Bruno", "Carla", "David", "Elena", "Felix", "Grace", "Hugo", "Irene", "Jonas",
    "Karin", "Louis", "Marta", "Nils", "Olga", "Pavel", "Quinn", "Rosa", "Stefan", "Tina",
    "Ursula", "Victor", "Wanda", "Xavier", "Yara", "Zeno",
];

const SURNAME_STEMS: &[&str] = &[
    "Smith", "Berg", "Rossi", "Kato", "Novak", "Dubois", "Meier", "Olsen", "Silva", "Kumar",
    "Haas", "Lindt", "Moreau", "Petrov", "Quist", "Ricci", "Sato", "Tanaka", "Urban", "Vogel",
];

const STREET_WORDS: &[&str] = &[
    "Oak", "Maple", "Cedar", "River", "Hill", "Lake", "Park", "Mill", "Church", "Station",
    "Garden", "Bridge", "Market", "Forest", "Harbor", "Spring", "Sunset", "Meadow",
];

const TITLE_WORDS: &[&str] = &[
    "Shadow", "River", "King", "Night", "Garden", "Secret", "Voyage", "Winter", "Crimson", "Echo",
    "Silent", "Golden", "Broken", "Last", "First", "Hidden", "Lost", "Iron", "Glass", "Paper",
    "Electric", "Distant", "Burning", "Frozen",
];

const TITLE_NOUNS: &[&str] = &[
    "Empire", "Patrol", "Letter", "Story", "Dream", "Road", "Island", "Mountain", "Song", "Return",
    "Promise", "Harvest", "Journey", "Legacy", "Mirror", "Storm", "Garden", "City",
];

const CUISINES: &[&str] = &[
    "Italian",
    "French",
    "Japanese",
    "Mexican",
    "Thai",
    "Indian",
    "Greek",
    "Spanish",
    "Korean",
    "Vietnamese",
    "American",
    "Ethiopian",
];

/// A capitalized pseudo-word of `n` syllables.
pub fn pseudo_word(rng: &mut StdRng, n: usize) -> String {
    let mut w = String::new();
    for _ in 0..n.max(1) {
        w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
    }
    let mut chars = w.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => w,
    }
}

/// The `i`-th person's full name: deterministic per index, unique.
pub fn person_name(i: usize) -> String {
    let first = FIRST_NAMES[i % FIRST_NAMES.len()];
    let stem = SURNAME_STEMS[(i / FIRST_NAMES.len()) % SURNAME_STEMS.len()];
    let gen = i / (FIRST_NAMES.len() * SURNAME_STEMS.len());
    if gen == 0 {
        format!("{first} {stem}")
    } else {
        format!("{first} {stem}-{gen}")
    }
}

/// The `i`-th unique city name.
pub fn city_name(rng: &mut StdRng, i: usize) -> String {
    let base = pseudo_word(rng, 2 + i % 2);
    format!("{base}ville")
}

/// The `i`-th street address line.
pub fn street_address(rng: &mut StdRng, i: usize) -> String {
    let number = 1 + (i * 37) % 9900;
    let word = STREET_WORDS[rng.random_range(0..STREET_WORDS.len())];
    let kind = ["St", "Ave", "Blvd", "Rd"][i % 4];
    format!("{number} {word} {kind}")
}

/// A unique phone number for index `i`, formatted with dashes.
pub fn phone_number(i: usize) -> String {
    let area = 200 + (i * 7) % 700;
    let mid = 100 + (i * 13) % 900;
    let last = 1000 + (i * 31) % 9000;
    format!("{area}-{mid}-{last}")
}

/// A unique social-security-like identifier.
pub fn ssn(i: usize) -> String {
    format!(
        "{:03}-{:02}-{:04}",
        (i * 17) % 1000,
        (i * 5) % 100,
        i % 10_000
    )
}

/// The `i`-th movie title: two pool words plus a discriminator when pools
/// recycle.
pub fn movie_title(i: usize) -> String {
    let adj = TITLE_WORDS[i % TITLE_WORDS.len()];
    let noun = TITLE_NOUNS[(i / TITLE_WORDS.len()) % TITLE_NOUNS.len()];
    let cycle = i / (TITLE_WORDS.len() * TITLE_NOUNS.len());
    if cycle == 0 {
        format!("The {adj} {noun}")
    } else {
        format!("The {adj} {noun} {}", cycle + 1)
    }
}

/// The `i`-th restaurant name.
pub fn restaurant_name(rng: &mut StdRng, i: usize) -> String {
    let cuisine = CUISINES[i % CUISINES.len()];
    let word = pseudo_word(rng, 2);
    match i % 3 {
        0 => format!("{word}'s {cuisine} Kitchen"),
        1 => format!("Cafe {word}"),
        _ => format!("The {cuisine} {word}"),
    }
}

/// A cuisine label.
pub fn cuisine(i: usize) -> &'static str {
    CUISINES[i % CUISINES.len()]
}

/// The `i`-th organization name.
pub fn organization_name(rng: &mut StdRng, i: usize) -> String {
    let word = pseudo_word(rng, 2);
    let kind = ["University", "Institute", "Corporation", "Studios", "Labs"][i % 5];
    format!("{word} {kind}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn person_names_unique_at_scale() {
        let names: std::collections::HashSet<String> = (0..5000).map(person_name).collect();
        assert_eq!(names.len(), 5000);
    }

    #[test]
    fn movie_titles_unique_at_scale() {
        let titles: std::collections::HashSet<String> = (0..3000).map(movie_title).collect();
        assert_eq!(titles.len(), 3000);
    }

    #[test]
    fn phones_and_ssns_deterministic() {
        assert_eq!(phone_number(7), phone_number(7));
        assert_eq!(ssn(7), ssn(7));
        assert_ne!(phone_number(7), phone_number(8));
    }

    #[test]
    fn pseudo_word_is_capitalized_and_seeded() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let wa = pseudo_word(&mut a, 3);
        let wb = pseudo_word(&mut b, 3);
        assert_eq!(wa, wb);
        assert!(wa.chars().next().unwrap().is_uppercase());
        assert!(wa.len() >= 6);
    }

    #[test]
    fn generators_do_not_panic_at_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = person_name(0);
        let _ = city_name(&mut rng, 0);
        let _ = street_address(&mut rng, 0);
        let _ = movie_title(0);
        let _ = restaurant_name(&mut rng, 0);
        let _ = organization_name(&mut rng, 0);
        let _ = pseudo_word(&mut rng, 0);
    }
}
