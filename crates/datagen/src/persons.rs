//! Synthetic stand-in for the OAEI 2010 *person* dataset (paper §6.2).
//!
//! The original benchmark pairs two ontologies describing the same 500
//! people; the paper additionally renamed all relations and classes in the
//! first ontology so that "the sets of instances, classes, and relations
//! used in the first ontology are disjoint from the ones used in the
//! second". This generator reproduces that regime: one latent population,
//! two clean views with entirely disjoint vocabularies, linked only through
//! literal values. The data is noise-free, with unique SSNs and phone
//! numbers (high inverse functionality) — the setting where PARIS achieves
//! 100 % precision and recall on instances, classes, and relations
//! (Table 1).

use paris_kb::KbBuilder;
use paris_rdf::{Iri, Literal};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gold::{DatasetPair, GoldStandard, RelationGold};
use crate::names;

/// Configuration of the persons generator.
#[derive(Clone, Debug)]
pub struct PersonsConfig {
    /// Number of matched persons (the gold standard size). Paper: 500.
    pub num_persons: usize,
    /// Extra persons present only in ontology 1.
    pub extra_1: usize,
    /// Extra persons present only in ontology 2.
    pub extra_2: usize,
    /// RNG seed (streets/cities draw pseudo-words).
    pub seed: u64,
}

impl Default for PersonsConfig {
    fn default() -> Self {
        PersonsConfig {
            num_persons: 500,
            extra_1: 0,
            extra_2: 0,
            seed: 42,
        }
    }
}

const NS1: &str = "http://person1.test/";
const NS2: &str = "http://person2.test/";

struct PersonRecord {
    name: String,
    ssn: String,
    phone: String,
    birth_year: u32,
    street: String,
    city: String,
}

fn world(config: &PersonsConfig) -> Vec<PersonRecord> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total = config.num_persons + config.extra_1 + config.extra_2;
    let num_cities = (total / 25).max(2);
    let cities: Vec<String> = (0..num_cities)
        .map(|i| names::city_name(&mut rng, i))
        .collect();
    (0..total)
        .map(|i| PersonRecord {
            name: names::person_name(i),
            ssn: names::ssn(i),
            phone: names::phone_number(i),
            birth_year: 1930 + (i as u32 * 13) % 70,
            street: names::street_address(&mut rng, i),
            city: cities[i % num_cities].clone(),
        })
        .collect()
}

/// Emits one view of the population into a builder.
///
/// `v` carries the per-view vocabulary: `(person class, address class,
/// name, ssn, phone, birthYear, hasAddress, street, city)`.
#[allow(clippy::too_many_arguments)]
fn emit(
    b: &mut KbBuilder,
    ns: &str,
    person_tag: &str,
    v: &[&str; 9],
    records: &[PersonRecord],
    indices: impl Iterator<Item = usize>,
) {
    let [cls_person, cls_address, r_name, r_ssn, r_phone, r_birth, r_addr, r_street, r_city] = v;
    for i in indices {
        let rec = &records[i];
        let p = format!("{ns}{person_tag}{i}");
        let a = format!("{ns}addr{i}");
        b.add_type(p.as_str(), format!("{ns}{cls_person}"));
        b.add_type(a.as_str(), format!("{ns}{cls_address}"));
        b.add_literal_fact(
            p.as_str(),
            format!("{ns}{r_name}"),
            Literal::plain(rec.name.clone()),
        );
        b.add_literal_fact(
            p.as_str(),
            format!("{ns}{r_ssn}"),
            Literal::plain(rec.ssn.clone()),
        );
        b.add_literal_fact(
            p.as_str(),
            format!("{ns}{r_phone}"),
            Literal::plain(rec.phone.clone()),
        );
        b.add_literal_fact(
            p.as_str(),
            format!("{ns}{r_birth}"),
            Literal::plain(rec.birth_year.to_string()),
        );
        b.add_fact(p.as_str(), format!("{ns}{r_addr}"), a.as_str());
        b.add_literal_fact(
            a.as_str(),
            format!("{ns}{r_street}"),
            Literal::plain(rec.street.clone()),
        );
        b.add_literal_fact(
            a.as_str(),
            format!("{ns}{r_city}"),
            Literal::plain(rec.city.clone()),
        );
    }
}

const VOCAB1: [&str; 9] = [
    "Person",
    "Address",
    "hasName",
    "hasSSN",
    "hasPhone",
    "bornInYear",
    "hasAddress",
    "street",
    "inCity",
];
const VOCAB2: [&str; 9] = [
    "Human",
    "Location",
    "fullName",
    "socialSecurityNumber",
    "phoneNumber",
    "yearOfBirth",
    "residence",
    "streetLine",
    "cityName",
];

/// Generates the persons dataset pair.
pub fn generate(config: &PersonsConfig) -> DatasetPair {
    let records = world(config);
    let n = config.num_persons;

    let mut b1 = KbBuilder::new("person1");
    emit(
        &mut b1,
        NS1,
        "p",
        &VOCAB1,
        &records,
        (0..n).chain(n..n + config.extra_1),
    );
    let mut b2 = KbBuilder::new("person2");
    emit(
        &mut b2,
        NS2,
        "q",
        &VOCAB2,
        &records,
        (0..n).chain(n + config.extra_1..n + config.extra_1 + config.extra_2),
    );

    let mut gold = GoldStandard::default();
    for i in 0..n {
        gold.instances.push((
            Iri::new(format!("{NS1}p{i}")),
            Iri::new(format!("{NS2}q{i}")),
        ));
        gold.instances.push((
            Iri::new(format!("{NS1}addr{i}")),
            Iri::new(format!("{NS2}addr{i}")),
        ));
    }
    for (r1, r2) in VOCAB1[2..].iter().zip(&VOCAB2[2..]) {
        gold.relations_1to2.push(RelationGold {
            sub: Iri::new(format!("{NS1}{r1}")),
            sup: Iri::new(format!("{NS2}{r2}")),
            inverted: false,
        });
        gold.relations_2to1.push(RelationGold {
            sub: Iri::new(format!("{NS2}{r2}")),
            sup: Iri::new(format!("{NS1}{r1}")),
            inverted: false,
        });
    }
    for (c1, c2) in VOCAB1[..2].iter().zip(&VOCAB2[..2]) {
        gold.classes_1to2.push((
            Iri::new(format!("{NS1}{c1}")),
            Iri::new(format!("{NS2}{c2}")),
        ));
        gold.classes_2to1.push((
            Iri::new(format!("{NS2}{c2}")),
            Iri::new(format!("{NS1}{c1}")),
        ));
    }

    DatasetPair {
        kb1: b1.build(),
        kb2: b2.build(),
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_match_paper() {
        let pair = generate(&PersonsConfig::default());
        assert_eq!(pair.gold.num_instances(), 1000); // 500 persons + 500 addresses
        assert_eq!(pair.kb1.num_instances(), 1000);
        assert_eq!(pair.kb2.num_instances(), 1000);
        assert_eq!(pair.kb1.num_classes(), 2);
        assert_eq!(pair.kb1.num_base_relations(), 7);
        assert!(pair.gold_is_consistent());
    }

    #[test]
    fn vocabularies_are_disjoint() {
        let pair = generate(&PersonsConfig::default());
        for r in 0..pair.kb1.num_base_relations() {
            let iri = &pair
                .kb1
                .relation_iri(paris_kb::RelationId::forward(r))
                .clone();
            assert!(pair.kb2.relation_by_iri(iri.as_str()).is_none());
        }
    }

    #[test]
    fn literals_are_shared_values() {
        let config = PersonsConfig {
            num_persons: 20,
            ..PersonsConfig::default()
        };
        let pair = generate(&config);
        // Every KB-1 SSN literal exists verbatim in KB-2.
        let ssn_rel = pair
            .kb1
            .relation_by_iri("http://person1.test/hasSSN")
            .unwrap();
        for (_, lit) in pair.kb1.pairs(ssn_rel) {
            let term = pair.kb1.term(lit).clone();
            assert!(pair.kb2.entity(&term).is_some(), "missing {term:?}");
        }
    }

    #[test]
    fn extras_are_unmatched() {
        let config = PersonsConfig {
            num_persons: 10,
            extra_1: 3,
            extra_2: 5,
            ..PersonsConfig::default()
        };
        let pair = generate(&config);
        assert_eq!(pair.kb1.num_instances(), 2 * 13);
        assert_eq!(pair.kb2.num_instances(), 2 * 15);
        assert_eq!(pair.gold.num_instances(), 20);
        assert!(pair.gold_is_consistent());
        // extra person 10..13 exists in kb1 but not kb2
        assert!(pair.kb1.entity_by_iri("http://person1.test/p10").is_some());
        assert!(pair.kb2.entity_by_iri("http://person2.test/q10").is_none());
        assert!(pair.kb2.entity_by_iri("http://person2.test/q13").is_some());
    }

    #[test]
    fn deterministic_across_calls() {
        let a = generate(&PersonsConfig {
            num_persons: 30,
            ..Default::default()
        });
        let b = generate(&PersonsConfig {
            num_persons: 30,
            ..Default::default()
        });
        assert_eq!(a.kb1.num_facts(), b.kb1.num_facts());
        assert_eq!(a.gold.instances, b.gold.instances);
    }

    #[test]
    fn ssn_is_inverse_functional() {
        let pair = generate(&PersonsConfig::default());
        let ssn = pair
            .kb1
            .relation_by_iri("http://person1.test/hasSSN")
            .unwrap();
        assert_eq!(pair.kb1.functionality(ssn), 1.0);
        assert_eq!(pair.kb1.functionality(ssn.inverse()), 1.0);
        // city, by contrast, is shared by many addresses
        let city = pair
            .kb1
            .relation_by_iri("http://person1.test/inCity")
            .unwrap();
        assert!(pair.kb1.functionality(city.inverse()) < 0.2);
    }
}
