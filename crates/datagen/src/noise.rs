//! Literal-noise models.
//!
//! Each noise function reproduces a disturbance the paper explicitly ran
//! into: phone-number reformatting (`213/467-1108` vs `213-467-1108`,
//! §6.3), word-order swaps in titles (*Sugata Sanshirô* vs *Sanshiro
//! Sugata*, §6.4), and plain typos. All draws come from a caller-provided
//! seeded RNG, so datasets are reproducible.

use rand::rngs::StdRng;
use rand::RngExt;

/// Reformats a dash-separated phone number with slashes, the exact §6.3
/// pattern: `213-467-1108` → `213/467-1108` (first separator only).
pub fn reformat_phone(phone: &str) -> String {
    phone.replacen('-', "/", 1)
}

/// Swaps the first two whitespace-separated words, dropping a leading
/// article first (mimicking *Sanshiro Sugata* vs *Sugata Sanshirô* and
/// catalogue-style titles).
pub fn swap_words(s: &str) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    let skip = usize::from(matches!(
        words.first(),
        Some(&"The") | Some(&"A") | Some(&"An")
    ));
    if words.len() < skip + 2 {
        return s.to_owned();
    }
    let mut out: Vec<&str> = words.clone();
    out.swap(skip, skip + 1);
    out.join(" ")
}

/// Introduces one character-level typo: transposes two adjacent letters at
/// a random interior position. Strings shorter than 4 chars are returned
/// unchanged.
pub fn typo(rng: &mut StdRng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 4 {
        return s.to_owned();
    }
    let i = rng.random_range(1..chars.len() - 2);
    let mut out = chars;
    out.swap(i, i + 1);
    out.into_iter().collect()
}

/// Randomly uppercases or adds punctuation to a name (case/punctuation
/// noise that `Normalized` literal similarity absorbs).
pub fn restyle(rng: &mut StdRng, s: &str) -> String {
    match rng.random_range(0..3) {
        0 => s.to_uppercase(),
        1 => s.replace(' ', "  "),
        _ => format!("{s}."),
    }
}

/// True with probability `p`.
pub fn flip(rng: &mut StdRng, p: f64) -> bool {
    p > 0.0 && rng.random_range(0.0..1.0) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn phone_reformat_matches_paper_example() {
        assert_eq!(reformat_phone("213-467-1108"), "213/467-1108");
    }

    #[test]
    fn swap_words_basic() {
        assert_eq!(swap_words("Sanshiro Sugata"), "Sugata Sanshiro");
        assert_eq!(swap_words("The Crimson Empire"), "The Empire Crimson");
        assert_eq!(swap_words("Single"), "Single");
        assert_eq!(swap_words("The Single"), "The Single");
    }

    #[test]
    fn typo_changes_exactly_one_adjacent_pair() {
        let mut rng = StdRng::seed_from_u64(3);
        let orig = "restaurant";
        let noisy = typo(&mut rng, orig);
        assert_ne!(noisy, orig);
        assert_eq!(noisy.len(), orig.len());
        let diffs: Vec<usize> = orig
            .chars()
            .zip(noisy.chars())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[1], diffs[0] + 1);
    }

    #[test]
    fn typo_preserves_short_strings() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(typo(&mut rng, "abc"), "abc");
    }

    #[test]
    fn restyle_keeps_normalized_form() {
        use paris_literals::normalize_alnum;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let styled = restyle(&mut rng, "Cafe Karo");
            assert_eq!(normalize_alnum(&styled), normalize_alnum("Cafe Karo"));
        }
    }

    #[test]
    fn flip_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let fa: Vec<bool> = (0..50).map(|_| flip(&mut a, 0.3)).collect();
        let fb: Vec<bool> = (0..50).map(|_| flip(&mut b, 0.3)).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(|&x| x));
        assert!(fa.iter().any(|&x| !x));
    }

    #[test]
    fn flip_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!flip(&mut rng, 0.0));
        assert!(flip(&mut rng, 1.0));
    }
}
