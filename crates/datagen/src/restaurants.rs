//! Synthetic stand-in for the OAEI 2010 *restaurant* dataset (§6.2–6.3).
//!
//! The original pairs two restaurant catalogues with 112 gold matches and
//! systematically different literal conventions — the paper calls out phone
//! numbers written `213/467-1108` in one source and `213-467-1108` in the
//! other. This generator reproduces the three §6.3 regimes:
//!
//! * **identity literals**: phones never match (reformatted on side 2),
//!   names match for the clean majority → recall ≈ 0.88, precision < 1
//!   (chain restaurants share names across cities);
//! * **negative evidence + identity**: the ubiquitous attribute mismatches
//!   kill every match (the paper's "gave up all matches");
//! * **normalized strings**: punctuation/case differences vanish, typos
//!   remain → precision 1, recall ≈ 0.7–0.9.

use paris_kb::KbBuilder;
use paris_rdf::{Iri, Literal};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gold::{DatasetPair, GoldStandard, RelationGold};
use crate::names;
use crate::noise;

/// Configuration of the restaurants generator.
#[derive(Clone, Debug)]
pub struct RestaurantsConfig {
    /// Matched restaurants (gold size). Paper: 112.
    pub num_matched: usize,
    /// Restaurants only in catalogue 1.
    pub extra_1: usize,
    /// Restaurants only in catalogue 2.
    pub extra_2: usize,
    /// Fraction of side-2 names restyled (case/punctuation — normalizable).
    pub restyle_fraction: f64,
    /// Fraction of *dirty* records: the side-2 copy has a typo'd name AND
    /// a reformatted street, so no literal matches under identity — these
    /// are the records that cap recall (paper: ~12 % unmatched).
    pub dirty_fraction: f64,
    /// Number of chain pairs: two *different* restaurants (in different
    /// cities) sharing one name on both sides — the precision hazard.
    pub chains: usize,
    /// Fraction of clean records whose side-2 phone keeps the dash format
    /// (matches under identity). This keeps the phone ↔ telephone
    /// sub-relation discoverable, which is what lets negative evidence
    /// (§6.3, experiment 3) punish the majority of records whose phones
    /// *don't* match — the paper's "gave up all matches" effect.
    pub phone_match_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RestaurantsConfig {
    fn default() -> Self {
        RestaurantsConfig {
            num_matched: 112,
            extra_1: 20,
            extra_2: 30,
            restyle_fraction: 0.12,
            dirty_fraction: 0.12,
            chains: 4,
            phone_match_fraction: 0.1,
            seed: 7,
        }
    }
}

const NS1: &str = "http://rest1.test/";
const NS2: &str = "http://rest2.test/";

struct RestaurantRecord {
    name: String,
    phone: String,
    street: String,
    city: String,
    cuisine: &'static str,
    /// Side-2 name (noisy variant of `name`).
    name_2: String,
    /// Side-2 street.
    street_2: String,
    /// Side-2 phone (usually slash-reformatted).
    phone_2: String,
}

fn world(config: &RestaurantsConfig) -> Vec<RestaurantRecord> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total = config.num_matched + config.extra_1 + config.extra_2;
    // Few cities and cuisines: these attributes are shared so widely that
    // their inverse functionality stays below θ even with perfect
    // sub-relation scores — like "category" in the real OAEI data, they
    // must never seed a match on their own.
    let num_cities = 6;
    let num_cuisines = 6;
    let cities: Vec<String> = (0..num_cities)
        .map(|i| names::city_name(&mut rng, i))
        .collect();

    let mut records: Vec<RestaurantRecord> = (0..total)
        .map(|i| {
            let name = names::restaurant_name(&mut rng, i);
            let street = names::street_address(&mut rng, i);
            // Dirty records lose every identity match on side 2: typo'd
            // name plus catalogue-style street suffix expansion ("St" →
            // "Street"). Clean records keep street verbatim and the name
            // either verbatim or merely restyled (case/punctuation).
            let dirty = noise::flip(&mut rng, config.dirty_fraction);
            let street_2 = if dirty {
                street
                    .replace(" Ave", " Avenue")
                    .replace(" Blvd", " Boulevard")
                    .replace(" Rd", " Road")
                    .replace(" St", " Street")
            } else {
                street.clone()
            };
            let name_2 = if dirty {
                noise::typo(&mut rng, &name)
            } else if noise::flip(&mut rng, config.restyle_fraction) {
                noise::restyle(&mut rng, &name)
            } else {
                name.clone()
            };
            let phone = names::phone_number(i);
            // Most side-2 phones use the slash format (the paper's exact
            // mismatch); a small fraction keeps the dash format.
            let phone_2 = if !dirty && noise::flip(&mut rng, config.phone_match_fraction) {
                phone.clone()
            } else {
                noise::reformat_phone(&phone)
            };
            RestaurantRecord {
                name,
                phone,
                street,
                city: cities[i % num_cities].clone(),
                cuisine: names::cuisine(i % num_cuisines),
                name_2,
                street_2,
                phone_2,
            }
        })
        .collect();

    // Franchise pairs: two *different* restaurants (2k, 2k+1) in the same
    // city sharing one name and cuisine, with their side-2 streets
    // reformatted — only the ambiguous name + city evidence remains, so
    // PARIS has to guess. This is the precision hazard (the paper's ~5 %
    // wrong restaurant matches).
    for k in 0..config.chains.min(config.num_matched / 2) {
        let shared = format!("Chain House {k}");
        let city = records[2 * k].city.clone();
        for offset in [2 * k, 2 * k + 1] {
            let r = &mut records[offset];
            r.name = shared.clone();
            r.name_2 = shared.clone();
            r.city = city.clone();
            r.cuisine = names::cuisine(0);
            r.street_2 = r
                .street
                .replace(" Ave", " Avenue")
                .replace(" Blvd", " Boulevard")
                .replace(" Rd", " Road")
                .replace(" St", " Street");
        }
    }
    records
}

/// Generates the restaurants dataset pair.
pub fn generate(config: &RestaurantsConfig) -> DatasetPair {
    let records = world(config);
    let n = config.num_matched;

    let mut b1 = KbBuilder::new("rest1");
    for (i, r) in records.iter().take(n + config.extra_1).enumerate() {
        let e = format!("{NS1}r{i}");
        let a = format!("{NS1}addr{i}");
        b1.add_type(e.as_str(), format!("{NS1}Restaurant"));
        b1.add_type(a.as_str(), format!("{NS1}Address"));
        b1.add_literal_fact(
            e.as_str(),
            format!("{NS1}name"),
            Literal::plain(r.name.clone()),
        );
        b1.add_literal_fact(
            e.as_str(),
            format!("{NS1}phone"),
            Literal::plain(r.phone.clone()),
        );
        b1.add_literal_fact(
            e.as_str(),
            format!("{NS1}category"),
            Literal::plain(r.cuisine),
        );
        b1.add_fact(e.as_str(), format!("{NS1}hasAddress"), a.as_str());
        b1.add_literal_fact(
            a.as_str(),
            format!("{NS1}street"),
            Literal::plain(r.street.clone()),
        );
        b1.add_literal_fact(
            a.as_str(),
            format!("{NS1}city"),
            Literal::plain(r.city.clone()),
        );
    }

    let mut b2 = KbBuilder::new("rest2");
    let side2_indices = (0..n).chain(n + config.extra_1..records.len());
    for i in side2_indices {
        let r = &records[i];
        let e = format!("{NS2}r{i}");
        let a = format!("{NS2}addr{i}");
        b2.add_type(e.as_str(), format!("{NS2}Eatery"));
        b2.add_type(a.as_str(), format!("{NS2}Place"));
        b2.add_literal_fact(
            e.as_str(),
            format!("{NS2}title"),
            Literal::plain(r.name_2.clone()),
        );
        b2.add_literal_fact(
            e.as_str(),
            format!("{NS2}telephone"),
            Literal::plain(r.phone_2.clone()),
        );
        b2.add_literal_fact(
            e.as_str(),
            format!("{NS2}cuisine"),
            Literal::plain(r.cuisine),
        );
        b2.add_fact(e.as_str(), format!("{NS2}location"), a.as_str());
        b2.add_literal_fact(
            a.as_str(),
            format!("{NS2}streetAddress"),
            Literal::plain(r.street_2.clone()),
        );
        b2.add_literal_fact(
            a.as_str(),
            format!("{NS2}cityName"),
            Literal::plain(r.city.clone()),
        );
    }

    let mut gold = GoldStandard::default();
    for i in 0..n {
        gold.instances.push((
            Iri::new(format!("{NS1}r{i}")),
            Iri::new(format!("{NS2}r{i}")),
        ));
        gold.instances.push((
            Iri::new(format!("{NS1}addr{i}")),
            Iri::new(format!("{NS2}addr{i}")),
        ));
    }
    for (r1, r2) in [
        ("name", "title"),
        ("phone", "telephone"),
        ("category", "cuisine"),
        ("hasAddress", "location"),
        ("street", "streetAddress"),
        ("city", "cityName"),
    ] {
        gold.relations_1to2.push(RelationGold {
            sub: Iri::new(format!("{NS1}{r1}")),
            sup: Iri::new(format!("{NS2}{r2}")),
            inverted: false,
        });
        gold.relations_2to1.push(RelationGold {
            sub: Iri::new(format!("{NS2}{r2}")),
            sup: Iri::new(format!("{NS1}{r1}")),
            inverted: false,
        });
    }
    gold.classes_1to2.push((
        Iri::new(format!("{NS1}Restaurant")),
        Iri::new(format!("{NS2}Eatery")),
    ));
    gold.classes_1to2.push((
        Iri::new(format!("{NS1}Address")),
        Iri::new(format!("{NS2}Place")),
    ));
    gold.classes_2to1.push((
        Iri::new(format!("{NS2}Eatery")),
        Iri::new(format!("{NS1}Restaurant")),
    ));
    gold.classes_2to1.push((
        Iri::new(format!("{NS2}Place")),
        Iri::new(format!("{NS1}Address")),
    ));

    DatasetPair {
        kb1: b1.build(),
        kb2: b2.build(),
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_literals::normalize_alnum;

    #[test]
    fn default_sizes_match_paper() {
        let pair = generate(&RestaurantsConfig::default());
        assert_eq!(pair.gold.num_instances(), 224); // 112 restaurants + addresses
        assert_eq!(pair.kb1.num_instances(), 2 * 132);
        assert_eq!(pair.kb2.num_instances(), 2 * 142);
        assert!(pair.gold_is_consistent());
    }

    #[test]
    fn phones_never_match_identically_but_normalize() {
        let pair = generate(&RestaurantsConfig::default());
        let phone1 = pair.kb1.relation_by_iri("http://rest1.test/phone").unwrap();
        let tel2 = pair
            .kb2
            .relation_by_iri("http://rest2.test/telephone")
            .unwrap();
        let p1: Vec<String> = pair
            .kb1
            .pairs(phone1)
            .map(|(_, l)| pair.kb1.literal(l).unwrap().value().to_owned())
            .collect();
        let p2: std::collections::HashSet<String> = pair
            .kb2
            .pairs(tel2)
            .map(|(_, l)| pair.kb2.literal(l).unwrap().value().to_owned())
            .collect();
        let p2_norm: std::collections::HashSet<String> =
            p2.iter().map(|s| normalize_alnum(s)).collect();
        let raw_hits = p1.iter().filter(|v| p2.contains(*v)).count();
        assert!(
            raw_hits < 25,
            "only the phone_match_fraction matches raw: {raw_hits}"
        );
        assert!(raw_hits > 0, "some phones must keep the dash format");
        let normalized_hits = p1
            .iter()
            .filter(|v| p2_norm.contains(&normalize_alnum(v)))
            .count();
        assert!(
            normalized_hits >= 112,
            "normalized phones must match: {normalized_hits}"
        );
    }

    #[test]
    fn most_names_match_identically() {
        let config = RestaurantsConfig::default();
        let pair = generate(&config);
        let name1 = pair.kb1.relation_by_iri("http://rest1.test/name").unwrap();
        let names2: std::collections::HashSet<String> = {
            let title2 = pair.kb2.relation_by_iri("http://rest2.test/title").unwrap();
            pair.kb2
                .pairs(title2)
                .map(|(_, l)| pair.kb2.literal(l).unwrap().value().to_owned())
                .collect()
        };
        let hits = pair
            .kb1
            .pairs(name1)
            .filter(|&(_, l)| names2.contains(pair.kb1.literal(l).unwrap().value()))
            .count();
        // ~80 % of matched names are identical strings
        assert!(hits >= 70, "identical names: {hits}");
        assert!(hits <= 130);
    }

    #[test]
    fn chains_share_names() {
        let pair = generate(&RestaurantsConfig::default());
        let name1 = pair.kb1.relation_by_iri("http://rest1.test/name").unwrap();
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for (_, l) in pair.kb1.pairs(name1) {
            *counts
                .entry(pair.kb1.literal(l).unwrap().value().to_owned())
                .or_default() += 1;
        }
        assert!(counts.values().any(|&c| c >= 2), "chain names must repeat");
    }

    #[test]
    fn deterministic() {
        let a = generate(&RestaurantsConfig::default());
        let b = generate(&RestaurantsConfig::default());
        assert_eq!(a.kb1.num_facts(), b.kb1.num_facts());
        assert_eq!(a.kb2.num_facts(), b.kb2.num_facts());
    }

    #[test]
    fn no_noise_config_gives_clean_pair() {
        let config = RestaurantsConfig {
            restyle_fraction: 0.0,
            dirty_fraction: 0.0,
            phone_match_fraction: 0.0,
            chains: 0,
            extra_1: 0,
            extra_2: 0,
            num_matched: 20,
            seed: 1,
        };
        let pair = generate(&config);
        let name1 = pair.kb1.relation_by_iri("http://rest1.test/name").unwrap();
        for (_, l) in pair.kb1.pairs(name1) {
            let term = pair.kb1.term(l).clone();
            assert!(pair.kb2.entity(&term).is_some());
        }
    }
}
