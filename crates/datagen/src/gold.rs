//! Gold standards and dataset pairs.
//!
//! Every generator produces a [`DatasetPair`]: two knowledge bases derived
//! from one latent "world", plus the ground-truth alignment — instance
//! pairs (like the OAEI reference alignments, §6.2), expected relation
//! inclusions (like the manually-created relation gold standard for
//! yago–IMDb, §6.4), and expected class inclusions.

use paris_kb::Kb;
use paris_rdf::Iri;

/// An expected relation inclusion, directionally:
/// `sub ⊆ sup` where `sub` lives in one KB and `sup` in the other.
///
/// `inverted` marks that `sub`'s pairs are the *reverse* of `sup`'s (the
/// paper's `y:actedIn ⊆ dbp:starring⁻¹` case).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationGold {
    /// IRI of the sub-relation (in the source KB of this direction).
    pub sub: Iri,
    /// IRI of the super-relation (in the target KB).
    pub sup: Iri,
    /// Whether the inclusion holds against the inverse of `sup`.
    pub inverted: bool,
}

/// The complete ground truth of a generated dataset pair.
#[derive(Clone, Debug, Default)]
pub struct GoldStandard {
    /// Equivalent instance pairs `(KB-1 IRI, KB-2 IRI)`.
    pub instances: Vec<(Iri, Iri)>,
    /// Expected relation inclusions, KB1 → KB2.
    pub relations_1to2: Vec<RelationGold>,
    /// Expected relation inclusions, KB2 → KB1.
    pub relations_2to1: Vec<RelationGold>,
    /// Expected class inclusions `(KB-1 class, KB-2 class)` — KB-1 class is
    /// a subclass of (or equivalent to) the KB-2 class.
    pub classes_1to2: Vec<(Iri, Iri)>,
    /// Expected class inclusions `(KB-2 class, KB-1 class)`.
    pub classes_2to1: Vec<(Iri, Iri)>,
}

impl GoldStandard {
    /// Number of gold instance pairs (the paper's "Gold" column).
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }
}

/// Two generated ontologies plus their ground truth.
pub struct DatasetPair {
    /// The first ontology.
    pub kb1: Kb,
    /// The second ontology.
    pub kb2: Kb,
    /// Ground-truth alignment between them.
    pub gold: GoldStandard,
}

impl DatasetPair {
    /// Sanity check used by tests: every gold IRI actually occurs in its KB.
    pub fn gold_is_consistent(&self) -> bool {
        self.gold.instances.iter().all(|(a, b)| {
            self.kb1.entity_by_iri(a.as_str()).is_some()
                && self.kb2.entity_by_iri(b.as_str()).is_some()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::KbBuilder;

    #[test]
    fn consistency_check_detects_missing_entities() {
        let mut b1 = KbBuilder::new("a");
        b1.add_fact("http://a/x", "http://a/r", "http://a/y");
        let mut b2 = KbBuilder::new("b");
        b2.add_fact("http://b/x", "http://b/r", "http://b/y");
        let pair = DatasetPair {
            kb1: b1.build(),
            kb2: b2.build(),
            gold: GoldStandard {
                instances: vec![(Iri::new("http://a/x"), Iri::new("http://b/x"))],
                ..GoldStandard::default()
            },
        };
        assert!(pair.gold_is_consistent());

        let broken = GoldStandard {
            instances: vec![(Iri::new("http://a/missing"), Iri::new("http://b/x"))],
            ..GoldStandard::default()
        };
        let pair2 = DatasetPair {
            kb1: pair.kb1,
            kb2: pair.kb2,
            gold: broken,
        };
        assert!(!pair2.gold_is_consistent());
    }
}
