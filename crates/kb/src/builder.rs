//! Mutable construction of a [`Kb`], frozen by [`KbBuilder::build`].
//!
//! The builder ingests triples (from a parser or programmatically),
//! intercepts the RDFS vocabulary (`rdf:type`, `rdfs:subClassOf`,
//! `rdfs:subPropertyOf`) into dedicated schema structures, and at freeze
//! time computes the deductive closure (§3: "we assume … the ontologies are
//! available in their deductive closure"), builds both-direction fact
//! indexes, and pre-computes functionalities.

use paris_rdf::term::{Iri, Literal, Term};
use paris_rdf::triple::Triple;
use paris_rdf::vocab;

use crate::closure::close_taxonomy;
use crate::functionality::{compute_functionalities, FunctionalityVariant};
use crate::fxhash::FxHashMap;
use crate::ids::{EntityId, EntityKind, RelationId};
use crate::store::Kb;

/// Incremental builder for a [`Kb`].
///
/// ```
/// use paris_kb::KbBuilder;
/// use paris_rdf::Literal;
///
/// let mut b = KbBuilder::new("demo");
/// b.add_fact("http://ex/Elvis", "http://ex/bornIn", "http://ex/Tupelo");
/// b.add_literal_fact("http://ex/Elvis", "http://ex/name", Literal::plain("Elvis Presley"));
/// b.add_type("http://ex/Elvis", "http://ex/Singer");
/// b.add_subclass("http://ex/Singer", "http://ex/Person");
/// let kb = b.build();
/// assert_eq!(kb.num_instances(), 2); // Elvis and Tupelo
/// assert_eq!(kb.num_literals(), 1);  // "Elvis Presley"
/// assert_eq!(kb.num_classes(), 2);   // Singer, Person
/// ```
pub struct KbBuilder {
    name: String,
    terms: Vec<Term>,
    term_index: FxHashMap<Term, EntityId>,
    relation_names: Vec<Iri>,
    relation_index: FxHashMap<Iri, u32>,
    /// Raw forward facts `(subject, base relation, object)`.
    facts: Vec<(EntityId, u32, EntityId)>,
    /// `rdf:type` edges `(instance, class)`.
    type_edges: Vec<(EntityId, EntityId)>,
    /// `rdfs:subClassOf` edges `(sub, super)`.
    subclass_edges: Vec<(EntityId, EntityId)>,
    /// `rdfs:subPropertyOf` edges `(sub base rel, super base rel)`.
    subproperty_edges: Vec<(u32, u32)>,
}

impl KbBuilder {
    /// Creates an empty builder with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        KbBuilder {
            name: name.into(),
            terms: Vec::new(),
            term_index: FxHashMap::default(),
            relation_names: Vec::new(),
            relation_index: FxHashMap::default(),
            facts: Vec::new(),
            type_edges: Vec::new(),
            subclass_edges: Vec::new(),
            subproperty_edges: Vec::new(),
        }
    }

    fn intern(&mut self, term: Term) -> EntityId {
        if let Some(&id) = self.term_index.get(&term) {
            return id;
        }
        let id = EntityId::from_index(self.terms.len());
        self.terms.push(term.clone());
        self.term_index.insert(term, id);
        id
    }

    fn intern_relation(&mut self, iri: Iri) -> u32 {
        if let Some(&b) = self.relation_index.get(&iri) {
            return b;
        }
        let b = u32::try_from(self.relation_names.len()).expect("relation count exceeds u32");
        self.relation_names.push(iri.clone());
        self.relation_index.insert(iri, b);
        b
    }

    /// Ingests one parsed triple, dispatching on the predicate.
    pub fn add_triple(&mut self, triple: &Triple) {
        match triple.predicate.as_str() {
            vocab::RDF_TYPE => {
                if let Term::Iri(class) = &triple.object {
                    self.add_type(triple.subject.clone(), class.clone());
                }
                // rdf:type with a literal object is malformed; drop it.
            }
            vocab::RDFS_SUBCLASS_OF => {
                if let Term::Iri(sup) = &triple.object {
                    self.add_subclass(triple.subject.clone(), sup.clone());
                }
            }
            vocab::RDFS_SUBPROPERTY_OF => {
                if let Term::Iri(sup) = &triple.object {
                    self.add_subproperty(triple.subject.clone(), sup.clone());
                }
            }
            _ => {
                let s = self.intern(Term::Iri(triple.subject.clone()));
                let r = self.intern_relation(triple.predicate.clone());
                let o = self.intern(triple.object.clone());
                self.facts.push((s, r, o));
            }
        }
    }

    /// Ingests every triple from an iterator.
    pub fn add_triples<'t>(&mut self, triples: impl IntoIterator<Item = &'t Triple>) {
        for t in triples {
            self.add_triple(t);
        }
    }

    /// Adds a resource-to-resource fact `r(subject, object)`.
    pub fn add_fact(
        &mut self,
        subject: impl Into<Iri>,
        relation: impl Into<Iri>,
        object: impl Into<Iri>,
    ) {
        let s = self.intern(Term::Iri(subject.into()));
        let r = self.intern_relation(relation.into());
        let o = self.intern(Term::Iri(object.into()));
        self.facts.push((s, r, o));
    }

    /// Adds a resource-to-literal fact `r(subject, literal)`.
    pub fn add_literal_fact(
        &mut self,
        subject: impl Into<Iri>,
        relation: impl Into<Iri>,
        literal: Literal,
    ) {
        let s = self.intern(Term::Iri(subject.into()));
        let r = self.intern_relation(relation.into());
        let o = self.intern(Term::Literal(literal));
        self.facts.push((s, r, o));
    }

    /// Adds `rdf:type(instance, class)`.
    pub fn add_type(&mut self, instance: impl Into<Iri>, class: impl Into<Iri>) {
        let i = self.intern(Term::Iri(instance.into()));
        let c = self.intern(Term::Iri(class.into()));
        self.type_edges.push((i, c));
    }

    /// Adds `rdfs:subClassOf(sub, super)`.
    pub fn add_subclass(&mut self, sub: impl Into<Iri>, sup: impl Into<Iri>) {
        let s = self.intern(Term::Iri(sub.into()));
        let p = self.intern(Term::Iri(sup.into()));
        self.subclass_edges.push((s, p));
    }

    /// Adds `rdfs:subPropertyOf(sub, super)`.
    pub fn add_subproperty(&mut self, sub: impl Into<Iri>, sup: impl Into<Iri>) {
        let s = self.intern_relation(sub.into());
        let p = self.intern_relation(sup.into());
        self.subproperty_edges.push((s, p));
    }

    /// Number of raw facts ingested so far (before closure/dedup).
    pub fn num_raw_facts(&self) -> usize {
        self.facts.len()
    }

    /// Freezes the builder into an immutable, fully-indexed [`Kb`].
    pub fn build(self) -> Kb {
        self.build_with_functionality(FunctionalityVariant::HarmonicMean)
    }

    /// Freezes with an alternative functionality definition (Appendix A).
    pub fn build_with_functionality(mut self, variant: FunctionalityVariant) -> Kb {
        // 1. Deductive closure of rdfs:subPropertyOf: r ⊑ s adds s(x,y)
        //    for every r(x,y).
        let prop_closure = close_taxonomy(
            self.relation_names.len(),
            self.subproperty_edges
                .iter()
                .map(|&(a, b)| (a as usize, b as usize)),
        );
        let mut closed_facts = self.facts.clone();
        for &(s, r, o) in &self.facts {
            for &sup in &prop_closure[r as usize] {
                closed_facts.push((s, sup as u32, o));
            }
        }

        // 2. Per-relation pair lists, sorted and deduplicated.
        let mut pairs: Vec<Vec<(EntityId, EntityId)>> = vec![Vec::new(); self.relation_names.len()];
        for (s, r, o) in closed_facts {
            pairs[r as usize].push((s, o));
        }
        for list in &mut pairs {
            list.sort_unstable();
            list.dedup();
        }

        // 3. Both-direction adjacency.
        let mut adj: Vec<Vec<(RelationId, EntityId)>> = vec![Vec::new(); self.terms.len()];
        for (base, list) in pairs.iter().enumerate() {
            let fwd = RelationId::forward(base);
            let inv = fwd.inverse();
            for &(x, y) in list {
                adj[x.index()].push((fwd, y));
                adj[y.index()].push((inv, x));
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            list.shrink_to_fit();
        }

        // 4. Entity kinds: literals were known at intern time; classes are
        //    everything in class position of rdf:type / rdfs:subClassOf.
        let mut kinds: Vec<EntityKind> = self
            .terms
            .iter()
            .map(|t| {
                if t.is_literal() {
                    EntityKind::Literal
                } else {
                    EntityKind::Instance
                }
            })
            .collect();
        for &(_, c) in &self.type_edges {
            kinds[c.index()] = EntityKind::Class;
        }
        for &(a, b) in &self.subclass_edges {
            kinds[a.index()] = EntityKind::Class;
            kinds[b.index()] = EntityKind::Class;
        }
        let classes: Vec<EntityId> = (0..self.terms.len())
            .map(EntityId::from_index)
            .filter(|&e| kinds[e.index()] == EntityKind::Class)
            .collect();

        // 5. Class taxonomy closure: class → strict superclasses.
        let class_pos: FxHashMap<EntityId, usize> =
            classes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let sub_edges: Vec<(usize, usize)> = self
            .subclass_edges
            .iter()
            .filter_map(|&(a, b)| Some((*class_pos.get(&a)?, *class_pos.get(&b)?)))
            .collect();
        let tax_closure = close_taxonomy(classes.len(), sub_edges.iter().copied());
        let mut superclasses: FxHashMap<EntityId, Vec<EntityId>> = FxHashMap::default();
        for (i, sups) in tax_closure.iter().enumerate() {
            if !sups.is_empty() {
                superclasses.insert(
                    classes[i],
                    sups.iter().map(|&s| classes[s]).collect::<Vec<_>>(),
                );
            }
        }

        // 6. Deductive closure of rdf:type: membership propagates to all
        //    superclasses.
        self.type_edges.sort_unstable();
        self.type_edges.dedup();
        let mut types_of: FxHashMap<EntityId, Vec<EntityId>> = FxHashMap::default();
        for &(x, c) in &self.type_edges {
            let entry = types_of.entry(x).or_default();
            entry.push(c);
            if let Some(&pos) = class_pos.get(&c) {
                entry.extend(tax_closure[pos].iter().map(|&s| classes[s]));
            }
        }
        let mut class_members: FxHashMap<EntityId, Vec<EntityId>> = FxHashMap::default();
        for (x, cs) in &mut types_of {
            cs.sort_unstable();
            cs.dedup();
            for &c in cs.iter() {
                class_members.entry(c).or_default().push(*x);
            }
        }
        for ms in class_members.values_mut() {
            ms.sort_unstable();
            ms.dedup();
        }

        let mut kb = Kb {
            name: self.name,
            terms: self.terms,
            kinds,
            term_index: self.term_index,
            relation_names: self.relation_names,
            relation_index: self.relation_index,
            adj,
            pairs,
            classes,
            class_members,
            types_of,
            superclasses,
            fun: Vec::new(),
        };
        kb.fun = compute_functionalities(&kb, variant);
        kb
    }
}

/// Convenience: parse an N-Triples document and build a KB from it.
pub fn kb_from_ntriples(name: &str, doc: &str) -> Result<Kb, paris_rdf::RdfError> {
    let triples = paris_rdf::ntriples::Parser::parse_all(doc)?;
    let mut b = KbBuilder::new(name);
    b.add_triples(&triples);
    Ok(b.build())
}

/// Convenience: load an RDF file and build a KB from it. Files ending in
/// `.ttl` / `.turtle` are parsed as Turtle, everything else as N-Triples
/// (which Turtle subsumes, so `.nt` always works).
pub fn kb_from_file(
    name: &str,
    path: impl AsRef<std::path::Path>,
) -> Result<Kb, paris_rdf::RdfError> {
    let path = path.as_ref();
    let is_turtle = path
        .extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("ttl") || e.eq_ignore_ascii_case("turtle"));
    let triples = if is_turtle {
        paris_rdf::turtle::parse_turtle_file(path)?
    } else {
        paris_rdf::ntriples::parse_file(path)?
    };
    let mut b = KbBuilder::new(name);
    b.add_triples(&triples);
    Ok(b.build())
}

/// Convenience: parse a Turtle document and build a KB from it.
pub fn kb_from_turtle(name: &str, doc: &str) -> Result<Kb, paris_rdf::RdfError> {
    let triples = paris_rdf::turtle::parse_turtle(doc)?;
    let mut b = KbBuilder::new(name);
    b.add_triples(&triples);
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityKind;

    fn small_kb() -> Kb {
        let mut b = KbBuilder::new("test");
        b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        b.add_literal_fact("http://x/Elvis", "http://x/name", Literal::plain("Elvis"));
        b.add_type("http://x/Elvis", "http://x/Singer");
        b.add_subclass("http://x/Singer", "http://x/Person");
        b.add_subclass("http://x/Person", "http://x/Agent");
        b.build()
    }

    #[test]
    fn kinds_are_partitioned() {
        let kb = small_kb();
        let elvis = kb.entity_by_iri("http://x/Elvis").unwrap();
        let singer = kb.entity_by_iri("http://x/Singer").unwrap();
        assert_eq!(kb.kind(elvis), EntityKind::Instance);
        assert_eq!(kb.kind(singer), EntityKind::Class);
        assert_eq!(kb.num_literals(), 1);
        assert_eq!(kb.num_classes(), 3);
        assert_eq!(kb.num_instances(), 2); // Elvis, Tupelo
    }

    #[test]
    fn adjacency_contains_both_directions() {
        let kb = small_kb();
        let elvis = kb.entity_by_iri("http://x/Elvis").unwrap();
        let tupelo = kb.entity_by_iri("http://x/Tupelo").unwrap();
        let born_in = kb.relation_by_iri("http://x/bornIn").unwrap();
        assert!(kb.facts(elvis).contains(&(born_in, tupelo)));
        assert!(kb.facts(tupelo).contains(&(born_in.inverse(), elvis)));
    }

    #[test]
    fn type_closure_reaches_all_superclasses() {
        let kb = small_kb();
        let elvis = kb.entity_by_iri("http://x/Elvis").unwrap();
        let types: Vec<_> = kb
            .types_of(elvis)
            .iter()
            .map(|&c| kb.iri(c).unwrap().local_name())
            .collect();
        assert_eq!(types.len(), 3, "Singer, Person, Agent: {types:?}");
        let agent = kb.entity_by_iri("http://x/Agent").unwrap();
        assert_eq!(kb.members(agent), &[elvis]);
    }

    #[test]
    fn subclass_closure_is_transitive() {
        let kb = small_kb();
        let singer = kb.entity_by_iri("http://x/Singer").unwrap();
        let agent = kb.entity_by_iri("http://x/Agent").unwrap();
        assert!(kb.is_subclass_of(singer, agent));
        assert!(kb.is_subclass_of(singer, singer), "reflexive");
        assert!(!kb.is_subclass_of(agent, singer));
    }

    #[test]
    fn subproperty_closure_adds_facts() {
        let mut b = KbBuilder::new("t");
        b.add_fact("http://x/a", "http://x/hasCapital", "http://x/b");
        b.add_subproperty("http://x/hasCapital", "http://x/contains");
        let kb = b.build();
        let a = kb.entity_by_iri("http://x/a").unwrap();
        let b_ = kb.entity_by_iri("http://x/b").unwrap();
        let contains = kb.relation_by_iri("http://x/contains").unwrap();
        assert!(kb.facts(a).contains(&(contains, b_)));
        assert_eq!(kb.num_facts(), 2);
    }

    #[test]
    fn duplicate_facts_are_deduplicated() {
        let mut b = KbBuilder::new("t");
        b.add_fact("http://x/a", "http://x/r", "http://x/b");
        b.add_fact("http://x/a", "http://x/r", "http://x/b");
        let kb = b.build();
        assert_eq!(kb.num_facts(), 1);
    }

    #[test]
    fn triple_dispatch_interprets_vocab() {
        use paris_rdf::ntriples::Parser;
        let doc = r#"
<http://x/e> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/C> .
<http://x/C> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/D> .
<http://x/r> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://x/s> .
<http://x/e> <http://x/r> <http://x/f> .
"#;
        let triples = Parser::parse_all(doc).unwrap();
        let mut b = KbBuilder::new("t");
        b.add_triples(&triples);
        let kb = b.build();
        assert_eq!(kb.num_classes(), 2);
        let e = kb.entity_by_iri("http://x/e").unwrap();
        assert_eq!(kb.types_of(e).len(), 2);
        // the fact got both r and its superproperty s
        assert_eq!(kb.facts(e).len(), 2);
    }

    #[test]
    fn cyclic_taxonomy_does_not_hang() {
        let mut b = KbBuilder::new("t");
        b.add_subclass("http://x/A", "http://x/B");
        b.add_subclass("http://x/B", "http://x/A");
        b.add_type("http://x/e", "http://x/A");
        let kb = b.build();
        let e = kb.entity_by_iri("http://x/e").unwrap();
        assert_eq!(kb.types_of(e).len(), 2);
    }

    #[test]
    fn kb_from_ntriples_works() {
        let kb = kb_from_ntriples("t", "<http://s> <http://p> \"lit\" .\n").unwrap();
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.num_literals(), 1);
    }

    #[test]
    fn same_literal_interns_once() {
        let mut b = KbBuilder::new("t");
        b.add_literal_fact("http://x/a", "http://x/name", Literal::plain("x"));
        b.add_literal_fact("http://x/b", "http://x/name", Literal::plain("x"));
        let kb = b.build();
        assert_eq!(kb.num_literals(), 1);
    }
}
