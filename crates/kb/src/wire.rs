//! Panic-free little-endian decode primitives for untrusted wire bytes.
//!
//! Every decoder in this crate (`snapshot`, `snapshot_v2`, `delta`) and
//! the serving layers above them consume bytes that may arrive from a
//! truncated file, a corrupt transfer, or a hostile peer. The workspace
//! audit rules (`no-panic-decode`, `checked-casts-in-decoders` — see
//! docs/CORRECTNESS.md) forbid bare indexing, `unwrap`/`expect`, and
//! bare `as usize` casts inside those modules; this module is the
//! checked vocabulary they use instead.
//!
//! Reads past the end of a buffer yield zero-padded values rather than
//! panicking: a short read produces a value that downstream range
//! checks reject, never a crash. Length/offset conversions saturate
//! instead of truncating — a saturated `usize::MAX` always fails a
//! later bounds check, while silent truncation on a 32-bit target could
//! let a hostile 2^32-aligned offset slip through one.

/// The `i`-th little-endian `u32` of a section, zero-padded past the end.
#[inline]
#[must_use]
pub fn le_u32(buf: &[u8], i: usize) -> u32 {
    let start = 4usize.saturating_mul(i);
    match buf.get(start..start.wrapping_add(4)) {
        Some(word) => match word.try_into() {
            Ok(arr) => u32::from_le_bytes(arr),
            Err(_) => 0,
        },
        None => u32::from_le_bytes(tail::<4>(buf, start)),
    }
}

/// The `i`-th little-endian `u64` of a section, zero-padded past the end.
#[inline]
#[must_use]
pub fn le_u64(buf: &[u8], i: usize) -> u64 {
    let start = 8usize.saturating_mul(i);
    match buf.get(start..start.wrapping_add(8)) {
        Some(word) => match word.try_into() {
            Ok(arr) => u64::from_le_bytes(arr),
            Err(_) => 0,
        },
        None => u64::from_le_bytes(tail::<8>(buf, start)),
    }
}

/// The `i`-th little-endian `f64` of a section, zero-padded past the end.
#[inline]
#[must_use]
pub fn le_f64(buf: &[u8], i: usize) -> f64 {
    f64::from_bits(le_u64(buf, i))
}

/// A fixed-size array read at a byte offset (not an element index), or
/// `None` when fewer than `N` bytes remain.
#[inline]
#[must_use]
pub fn array_at<const N: usize>(buf: &[u8], pos: usize) -> Option<[u8; N]> {
    let word = buf.get(pos..pos.checked_add(N)?)?;
    word.try_into().ok()
}

/// The sub-slice at `range`, or the empty slice when out of bounds —
/// the panic-free spelling of `&buf[range]` for ranges derived from
/// wire data (a clamped-empty slice fails downstream length checks the
/// same way a short read does).
#[inline]
#[must_use]
pub fn slice(buf: &[u8], range: std::ops::Range<usize>) -> &[u8] {
    buf.get(range).unwrap_or_default()
}

/// Converts a wire-derived length or offset to `usize`, saturating.
///
/// Saturation is deliberate: on a 32-bit target a truncating `as usize`
/// would map `2^32 + k` to `k` and *pass* a later bounds check, while a
/// saturated `usize::MAX` always fails it.
#[inline]
#[must_use]
pub fn saturating_usize(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// The zero-padded trailing window starting at `start` (cold path of the
/// `le_*` readers: the buffer ends inside the word).
#[cold]
fn tail<const N: usize>(buf: &[u8], start: usize) -> [u8; N] {
    let mut word = [0u8; N];
    let src = buf.get(start..).unwrap_or(&[]);
    for (dst, &byte) in word.iter_mut().zip(src) {
        *dst = byte;
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_readers_in_bounds() {
        let buf: Vec<u8> = (1..=16).collect();
        assert_eq!(le_u32(&buf, 0), u32::from_le_bytes([1, 2, 3, 4]));
        assert_eq!(le_u32(&buf, 3), u32::from_le_bytes([13, 14, 15, 16]));
        assert_eq!(
            le_u64(&buf, 1),
            u64::from_le_bytes([9, 10, 11, 12, 13, 14, 15, 16])
        );
        assert_eq!(le_f64(&[0u8; 8], 0), 0.0);
    }

    #[test]
    fn le_readers_zero_pad_past_end() {
        let buf = [0xAA, 0xBB];
        assert_eq!(le_u32(&buf, 0), u32::from_le_bytes([0xAA, 0xBB, 0, 0]));
        assert_eq!(le_u32(&buf, 1), 0);
        assert_eq!(le_u32(&buf, usize::MAX), 0);
        assert_eq!(
            le_u64(&buf, 0),
            u64::from_le_bytes([0xAA, 0xBB, 0, 0, 0, 0, 0, 0])
        );
        assert_eq!(le_u64(&[], 0), 0);
        assert_eq!(le_u64(&buf, usize::MAX / 4), 0);
    }

    #[test]
    fn array_at_bounds() {
        let buf = [1u8, 2, 3, 4, 5];
        assert_eq!(array_at::<4>(&buf, 0), Some([1, 2, 3, 4]));
        assert_eq!(array_at::<4>(&buf, 1), Some([2, 3, 4, 5]));
        assert_eq!(array_at::<4>(&buf, 2), None);
        assert_eq!(array_at::<2>(&buf, usize::MAX), None);
        assert_eq!(array_at::<0>(&buf, 5), Some([]));
    }

    #[test]
    fn saturating_usize_saturates() {
        assert_eq!(saturating_usize(7), 7);
        if usize::BITS >= 64 {
            assert_eq!(saturating_usize(u64::MAX), u64::MAX as usize);
        }
    }
}
