//! In-memory knowledge-base substrate for the PARIS reproduction.
//!
//! The paper's implementation stored its ontologies in Berkeley DB on an
//! SSD and was "heavily IO-bound" (§5.2). This crate is the modern
//! equivalent substrate: a fully in-memory, interned, index-everything
//! store sized for the scaled-down synthetic datasets, providing exactly
//! the access paths the algorithm needs:
//!
//! * dense [`EntityId`]s / [`RelationId`]s (inverse encoded in the low bit),
//! * per-entity fact lists **in both directions** — the paper assumes "the
//!   ontology contains all inverse relations and their corresponding
//!   statements" (§3),
//! * per-relation pair lists for the sub-relation equations,
//! * deductive closure of `rdfs:subClassOf` / `rdfs:subPropertyOf` (§3),
//! * pre-computed global functionalities (Eq. 2) with all Appendix-A
//!   variants available for ablation.
//!
//! # Example
//!
//! ```
//! use paris_kb::KbBuilder;
//!
//! let mut b = KbBuilder::new("tiny");
//! b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
//! b.add_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
//! let kb = b.build();
//!
//! let born_in = kb.relation_by_iri("http://x/bornIn").unwrap();
//! assert_eq!(kb.functionality(born_in), 1.0);            // everyone: one birthplace
//! assert_eq!(kb.functionality(born_in.inverse()), 0.5);  // one city, two people
//! ```

pub mod arena;
pub mod builder;
pub mod closure;
pub mod delta;
pub mod delta_apply;
pub mod export;
pub mod functionality;
pub mod fxhash;
pub mod ids;
pub mod ingest;
pub mod snapshot;
pub mod snapshot_v2;
pub mod stats;
pub mod store;
pub mod tsv;
pub mod wire;

pub use arena::Arena;
pub use builder::{kb_from_file, kb_from_ntriples, kb_from_turtle, KbBuilder};
pub use delta::{AppliedDelta, DeltaError, KbDelta};
pub use functionality::FunctionalityVariant;
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{EntityId, EntityKind, RelationId};
pub use ingest::{ingest_file, ingest_reader, IngestError, IngestOptions, IngestReport};
pub use snapshot_v2::{KbLayout, KbView, MappedKbSnapshot, SnapshotArena};
pub use stats::KbStats;
pub use store::Kb;
