//! The immutable, fully-indexed knowledge base.
//!
//! A [`Kb`] is the frozen product of a
//! [`KbBuilder`](crate::builder::KbBuilder): entities interned to dense ids,
//! facts indexed by subject *in both directions* (the paper's "all inverse
//! statements" assumption, §3), per-relation pair lists, the deductive
//! closure of the class taxonomy, and pre-computed global functionalities
//! (Eq. 2).

use paris_rdf::term::{Iri, Literal, Term};

use crate::functionality::{compute_functionalities, FunctionalityVariant};
use crate::fxhash::FxHashMap;
use crate::ids::{EntityId, EntityKind, RelationId};

/// An immutable, indexed RDFS knowledge base (one "ontology" of the paper).
///
/// Cloning duplicates every index — cheap enough for tests and tooling,
/// but the delta pipeline offers
/// [`apply_owned`](crate::delta::apply_owned) precisely so the hot path
/// never has to.
#[derive(Clone)]
pub struct Kb {
    pub(crate) name: String,
    // ---- entity tables ----
    pub(crate) terms: Vec<Term>,
    pub(crate) kinds: Vec<EntityKind>,
    pub(crate) term_index: FxHashMap<Term, EntityId>,
    // ---- relations ----
    pub(crate) relation_names: Vec<Iri>,
    pub(crate) relation_index: FxHashMap<Iri, u32>,
    // ---- facts ----
    /// Per entity: all `(r, y)` with `r(x, y)`, including inverse directions.
    pub(crate) adj: Vec<Vec<(RelationId, EntityId)>>,
    /// Per *base* relation: sorted, deduplicated forward pairs `(x, y)`.
    pub(crate) pairs: Vec<Vec<(EntityId, EntityId)>>,
    // ---- schema ----
    pub(crate) classes: Vec<EntityId>,
    /// Class → its instances, after deductive closure.
    pub(crate) class_members: FxHashMap<EntityId, Vec<EntityId>>,
    /// Instance → its classes, after deductive closure.
    pub(crate) types_of: FxHashMap<EntityId, Vec<EntityId>>,
    /// Class → strict superclasses (transitively closed).
    pub(crate) superclasses: FxHashMap<EntityId, Vec<EntityId>>,
    // ---- statistics ----
    /// Global functionality per directed relation (harmonic mean, Eq. 2).
    pub(crate) fun: Vec<f64>,
}

impl Kb {
    /// The human-readable name given at construction (e.g. `"yago"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Entities
    // ------------------------------------------------------------------

    /// Total number of interned entities (instances + classes + literals).
    pub fn num_entities(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over every entity id.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.terms.len()).map(EntityId::from_index)
    }

    /// The kind (instance / class / literal) of an entity.
    #[inline]
    pub fn kind(&self, e: EntityId) -> EntityKind {
        self.kinds[e.index()]
    }

    /// The term an entity id was interned from.
    #[inline]
    pub fn term(&self, e: EntityId) -> &Term {
        &self.terms[e.index()]
    }

    /// The IRI of a resource entity, `None` for literals.
    pub fn iri(&self, e: EntityId) -> Option<&Iri> {
        self.term(e).as_iri()
    }

    /// The literal of a literal entity, `None` for resources.
    pub fn literal(&self, e: EntityId) -> Option<&Literal> {
        self.term(e).as_literal()
    }

    /// Looks up an entity by exact term.
    pub fn entity(&self, term: &Term) -> Option<EntityId> {
        self.term_index.get(term).copied()
    }

    /// Looks up a resource entity by IRI string.
    pub fn entity_by_iri(&self, iri: &str) -> Option<EntityId> {
        self.entity(&Term::Iri(Iri::new(iri)))
    }

    /// Iterates over instance entities only.
    pub fn instances(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.entities()
            .filter(|&e| self.kind(e) == EntityKind::Instance)
    }

    /// Iterates over literal entities only.
    pub fn literals(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.entities()
            .filter(|&e| self.kind(e) == EntityKind::Literal)
    }

    /// Number of instance entities.
    pub fn num_instances(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| **k == EntityKind::Instance)
            .count()
    }

    /// Number of literal entities.
    pub fn num_literals(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| **k == EntityKind::Literal)
            .count()
    }

    // ------------------------------------------------------------------
    // Facts
    // ------------------------------------------------------------------

    /// All statements `r(x, y)` with `x = e`, in both directions: a fact
    /// `r(a, b)` appears as `(r, b)` on `a` and `(r⁻¹, a)` on `b`.
    #[inline]
    pub fn facts(&self, e: EntityId) -> &[(RelationId, EntityId)] {
        &self.adj[e.index()]
    }

    /// Total number of stored (forward) facts.
    pub fn num_facts(&self) -> usize {
        self.pairs.iter().map(Vec::len).sum()
    }

    /// Sorted, deduplicated pairs `(x, y)` of a directed relation.
    ///
    /// For an inverse id the forward pairs are yielded swapped.
    pub fn pairs(&self, r: RelationId) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        let base = &self.pairs[r.base_index()];
        let inv = r.is_inverse();
        base.iter()
            .map(move |&(x, y)| if inv { (y, x) } else { (x, y) })
    }

    /// Number of pairs of a directed relation (same for `r` and `r⁻¹`).
    pub fn num_pairs(&self, r: RelationId) -> usize {
        self.pairs[r.base_index()].len()
    }

    // ------------------------------------------------------------------
    // Relations
    // ------------------------------------------------------------------

    /// Number of base (forward) relations.
    pub fn num_base_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Number of directed relations (`2 ×` base count).
    pub fn num_directed_relations(&self) -> usize {
        self.relation_names.len() * 2
    }

    /// Iterates over all directed relation ids.
    pub fn directed_relations(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.num_directed_relations()).map(RelationId::from_directed_index)
    }

    /// The IRI of a directed relation's base relation.
    pub fn relation_iri(&self, r: RelationId) -> &Iri {
        &self.relation_names[r.base_index()]
    }

    /// Renders a directed relation as `name` or `name⁻` for display.
    pub fn relation_display(&self, r: RelationId) -> String {
        let name = self.relation_iri(r).local_name();
        if r.is_inverse() {
            format!("{name}⁻")
        } else {
            name.to_owned()
        }
    }

    /// Looks up the forward direction of a relation by IRI string.
    pub fn relation_by_iri(&self, iri: &str) -> Option<RelationId> {
        self.relation_index
            .get(iri)
            .map(|&b| RelationId::forward(b as usize))
    }

    // ------------------------------------------------------------------
    // Schema
    // ------------------------------------------------------------------

    /// All class entities.
    pub fn classes(&self) -> &[EntityId] {
        &self.classes
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Instances of a class, including those inherited from subclasses
    /// (deductive closure, §3).
    pub fn members(&self, class: EntityId) -> &[EntityId] {
        self.class_members
            .get(&class)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Classes of an instance, including superclasses (deductive closure).
    pub fn types_of(&self, instance: EntityId) -> &[EntityId] {
        self.types_of
            .get(&instance)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Strict superclasses of a class (transitively closed).
    pub fn superclasses(&self, class: EntityId) -> &[EntityId] {
        self.superclasses
            .get(&class)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True iff `sub` is a (strict or reflexive) subclass of `sup`.
    pub fn is_subclass_of(&self, sub: EntityId, sup: EntityId) -> bool {
        sub == sup || self.superclasses(sub).contains(&sup)
    }

    // ------------------------------------------------------------------
    // Functionality (paper §3, Eq. 1–2)
    // ------------------------------------------------------------------

    /// The global functionality `fun(r)` of a directed relation,
    /// pre-computed with the harmonic-mean definition (Eq. 2).
    ///
    /// `fun⁻¹(r)` is simply `self.functionality(r.inverse())`.
    #[inline]
    pub fn functionality(&self, r: RelationId) -> f64 {
        self.fun[r.directed_index()]
    }

    /// Recomputes all functionalities under an alternative definition
    /// (Appendix A ablation). Does not mutate the stored values.
    pub fn functionalities_with(&self, variant: FunctionalityVariant) -> Vec<f64> {
        compute_functionalities(self, variant)
    }

    /// Replaces the stored functionalities with those of another
    /// Appendix-A definition. Used by the functionality ablation; the
    /// paper computes functionalities "within each ontology upfront"
    /// (§5.1), so this is a per-KB property, not an aligner parameter.
    pub fn set_functionality_variant(&mut self, variant: FunctionalityVariant) {
        self.fun = compute_functionalities(self, variant);
    }
}

impl std::fmt::Debug for Kb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kb")
            .field("name", &self.name)
            .field("entities", &self.num_entities())
            .field("instances", &self.num_instances())
            .field("classes", &self.num_classes())
            .field("relations", &self.num_base_relations())
            .field("facts", &self.num_facts())
            .finish()
    }
}
