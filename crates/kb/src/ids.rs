//! Dense integer identifiers for entities and relations.
//!
//! Every resource and literal of one knowledge base is interned to an
//! [`EntityId`] (a dense `u32`), and every property to a [`RelationId`]
//! whose **low bit encodes inverse-ness**: `r⁻¹ = r ^ 1`. This realizes the
//! paper's assumption (§3) that "the ontology contains all inverse relations
//! and their corresponding statements" without storing anything twice.

use std::fmt;

/// Identifier of an entity (instance, class, or literal) within one KB.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The dense index, usable directly into per-entity vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        EntityId(u32::try_from(i).expect("entity count exceeds u32"))
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a directed relation within one KB.
///
/// Base relations receive even ids; `r.inverse()` flips the low bit, so the
/// inverse of an inverse is the original relation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl RelationId {
    /// Creates the forward direction of the `base`-th relation.
    #[inline]
    pub fn forward(base: usize) -> Self {
        RelationId(u32::try_from(base * 2).expect("relation count exceeds u32/2"))
    }

    /// The opposite direction: `r⁻¹` for `r`, and `r` for `r⁻¹`.
    #[inline]
    #[must_use]
    pub fn inverse(self) -> Self {
        RelationId(self.0 ^ 1)
    }

    /// True iff this is an inverse (`r⁻¹`) direction.
    #[inline]
    pub fn is_inverse(self) -> bool {
        self.0 & 1 == 1
    }

    /// Index of the underlying base relation (shared by `r` and `r⁻¹`).
    #[inline]
    pub fn base_index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Dense index over *directed* relations (`0..2 * base_count`).
    #[inline]
    pub fn directed_index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense directed index.
    #[inline]
    pub fn from_directed_index(i: usize) -> Self {
        RelationId(u32::try_from(i).expect("directed relation index exceeds u32"))
    }
}

impl fmt::Debug for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inverse() {
            write!(f, "r{}⁻¹", self.base_index())
        } else {
            write!(f, "r{}", self.base_index())
        }
    }
}

/// What kind of node an [`EntityId`] denotes.
///
/// The paper assumes the ontology "partitions the resources into classes and
/// instances" (§3); literals form the third kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// An ordinary instance (alignable by the instance equations).
    Instance,
    /// A class (aligned by the subclass equations, Eq. 15–17).
    Class,
    /// A literal (equivalence clamped up front, §5.3).
    Literal,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_involutive() {
        let r = RelationId::forward(3);
        assert!(!r.is_inverse());
        assert!(r.inverse().is_inverse());
        assert_eq!(r.inverse().inverse(), r);
        assert_eq!(r.base_index(), 3);
        assert_eq!(r.inverse().base_index(), 3);
    }

    #[test]
    fn directed_indices_are_dense() {
        let r0 = RelationId::forward(0);
        let r1 = RelationId::forward(1);
        assert_eq!(r0.directed_index(), 0);
        assert_eq!(r0.inverse().directed_index(), 1);
        assert_eq!(r1.directed_index(), 2);
        assert_eq!(r1.inverse().directed_index(), 3);
        assert_eq!(RelationId::from_directed_index(3), r1.inverse());
    }

    #[test]
    fn entity_id_round_trip() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(format!("{e:?}"), "e42");
    }

    #[test]
    fn debug_marks_inverse() {
        assert_eq!(format!("{:?}", RelationId::forward(2)), "r2");
        assert_eq!(format!("{:?}", RelationId::forward(2).inverse()), "r2⁻¹");
    }
}
