//! A minimal FxHash-style hasher.
//!
//! PARIS spends most of its time probing integer-keyed hash maps (entity and
//! relation ids). SipHash — the standard library default — is needlessly slow
//! for that workload; the Firefox/rustc "Fx" multiply-rotate hash is the
//! conventional replacement. We inline the ~40-line algorithm here rather
//! than pulling an extra dependency (see DESIGN.md §6).

use std::hash::{BuildHasherDefault, Hasher};

/// Seed from the golden ratio, as in rustc's `FxHasher`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; not DoS-resistant, which is fine for ids we
/// assign ourselves.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Sanity, not cryptography: consecutive ids should not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn string_hashing_is_deterministic() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash("abc"), hash("abc"));
        assert_ne!(hash("abc"), hash("abd"));
        assert_ne!(hash("abc"), hash("abc\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
