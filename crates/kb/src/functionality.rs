//! Global functionality of relations (paper §3, Eq. 1–2, and Appendix A).
//!
//! The *local* functionality of `r` at `x` is `1 / #y : r(x, y)` (Eq. 1).
//! The paper's chosen *global* functionality is the harmonic mean of the
//! local functionalities, which collapses to (Eq. 2):
//!
//! ```text
//! fun(r) = #x ∃y : r(x, y)  /  #x,y : r(x, y)
//! ```
//!
//! Appendix A discusses four design alternatives; all are implemented here
//! behind [`FunctionalityVariant`] so the `functionality_ablation` bench can
//! compare them. The inverse functionality `fun⁻¹(r)` is always
//! `fun(r⁻¹)`, i.e. the same computation over swapped pairs.

use crate::fxhash::FxHashMap;
use crate::ids::{EntityId, RelationId};
use crate::store::Kb;

/// Which global-functionality definition to use (Appendix A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum FunctionalityVariant {
    /// Appendix A #4/#5 — the paper's choice (Eq. 2): harmonic mean of the
    /// local functionalities, `#distinct first args / #pairs`.
    #[default]
    HarmonicMean,
    /// Appendix A #1: `#pairs / #(x, y, y′) same-source statement pairs`.
    /// "Very volatile to single sources that have a large number of
    /// targets."
    PairRatio,
    /// Appendix A #2: `#distinct first args / #distinct second args`,
    /// clamped to `[0, 1]`. "Treacherous": assigns functionality 1 to the
    /// all-pairs `likesDish` relation.
    ArgRatio,
    /// Appendix A #3: arithmetic mean of the local functionalities.
    /// "The local functionalities are ratios, so the arithmetic mean is
    /// less appropriate."
    ArithmeticMean,
}

impl FunctionalityVariant {
    /// All variants, for ablation sweeps.
    pub const ALL: [FunctionalityVariant; 4] = [
        FunctionalityVariant::HarmonicMean,
        FunctionalityVariant::PairRatio,
        FunctionalityVariant::ArgRatio,
        FunctionalityVariant::ArithmeticMean,
    ];

    /// Short display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FunctionalityVariant::HarmonicMean => "harmonic-mean",
            FunctionalityVariant::PairRatio => "pair-ratio",
            FunctionalityVariant::ArgRatio => "arg-ratio",
            FunctionalityVariant::ArithmeticMean => "arithmetic-mean",
        }
    }
}

/// Per-direction aggregate statistics of one relation's pair list.
struct DirectionStats {
    /// Number of distinct first arguments.
    distinct_sources: usize,
    /// `Σ_x n_x²` where `n_x` is the number of objects of `x`.
    sum_squared_fanout: f64,
    /// `Σ_x 1 / n_x`.
    sum_reciprocal_fanout: f64,
}

fn direction_stats(group_sizes: &FxHashMap<EntityId, u32>) -> DirectionStats {
    let mut sum_sq = 0.0;
    let mut sum_recip = 0.0;
    for &n in group_sizes.values() {
        let n = f64::from(n);
        sum_sq += n * n;
        sum_recip += 1.0 / n;
    }
    DirectionStats {
        distinct_sources: group_sizes.len(),
        sum_squared_fanout: sum_sq,
        sum_reciprocal_fanout: sum_recip,
    }
}

/// Computes the global functionality of one base relation under `variant`,
/// returning `(fun(r), fun(r⁻¹))`. A relation with no pairs gets `(1, 1)`
/// (it contributes no evidence anyway, and `1.0` keeps products
/// well-defined). Used both for the full up-front computation and to
/// refresh only touched relations after a
/// [`KbDelta`](crate::delta::KbDelta) is applied.
pub fn functionality_of(kb: &Kb, base: usize, variant: FunctionalityVariant) -> (f64, f64) {
    let fwd = RelationId::forward(base);
    let n_pairs = kb.num_pairs(fwd);
    if n_pairs == 0 {
        return (1.0, 1.0);
    }
    let mut by_subject: FxHashMap<EntityId, u32> = FxHashMap::default();
    let mut by_object: FxHashMap<EntityId, u32> = FxHashMap::default();
    for (x, y) in kb.pairs(fwd) {
        *by_subject.entry(x).or_insert(0) += 1;
        *by_object.entry(y).or_insert(0) += 1;
    }
    let s = direction_stats(&by_subject);
    let o = direction_stats(&by_object);
    let n = n_pairs as f64;
    match variant {
        FunctionalityVariant::HarmonicMean => {
            (s.distinct_sources as f64 / n, o.distinct_sources as f64 / n)
        }
        FunctionalityVariant::PairRatio => (n / s.sum_squared_fanout, n / o.sum_squared_fanout),
        FunctionalityVariant::ArgRatio => {
            let r = s.distinct_sources as f64 / o.distinct_sources as f64;
            (r.min(1.0), (1.0 / r).min(1.0))
        }
        FunctionalityVariant::ArithmeticMean => (
            s.sum_reciprocal_fanout / s.distinct_sources as f64,
            o.sum_reciprocal_fanout / o.distinct_sources as f64,
        ),
    }
}

/// Computes the global functionality of every directed relation of `kb`.
///
/// The result is indexed by [`RelationId::directed_index`].
pub fn compute_functionalities(kb: &Kb, variant: FunctionalityVariant) -> Vec<f64> {
    let mut out = vec![1.0; kb.num_directed_relations()];
    for base in 0..kb.num_base_relations() {
        let fwd = RelationId::forward(base);
        let (f_fwd, f_inv) = functionality_of(kb, base, variant);
        out[fwd.directed_index()] = f_fwd;
        out[fwd.inverse().directed_index()] = f_inv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;

    /// `r` maps a→{b}, c→{d, e}: 3 pairs, 2 sources, 3 targets.
    fn fanout_kb() -> Kb {
        let mut b = KbBuilder::new("t");
        b.add_fact("http://x/a", "http://x/r", "http://x/b");
        b.add_fact("http://x/c", "http://x/r", "http://x/d");
        b.add_fact("http://x/c", "http://x/r", "http://x/e");
        b.build()
    }

    #[test]
    fn harmonic_mean_matches_eq2() {
        let kb = fanout_kb();
        let r = kb.relation_by_iri("http://x/r").unwrap();
        // fun(r) = #sources / #pairs = 2/3
        assert!((kb.functionality(r) - 2.0 / 3.0).abs() < 1e-12);
        // fun⁻¹(r) = #targets / #pairs = 3/3 = 1 (all targets unique)
        assert!((kb.functionality(r.inverse()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_function_has_functionality_one() {
        let mut b = KbBuilder::new("t");
        for i in 0..10 {
            b.add_fact(
                format!("http://x/p{i}"),
                "http://x/bornIn",
                format!("http://x/city{}", i % 3),
            );
        }
        let kb = b.build();
        let r = kb.relation_by_iri("http://x/bornIn").unwrap();
        assert!((kb.functionality(r) - 1.0).abs() < 1e-12);
        // 3 distinct cities over 10 pairs
        assert!((kb.functionality(r.inverse()) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pair_ratio_variant() {
        let kb = fanout_kb();
        let funs = kb.functionalities_with(FunctionalityVariant::PairRatio);
        let r = kb.relation_by_iri("http://x/r").unwrap();
        // Σ n_x² = 1² + 2² = 5; fun = 3/5
        assert!((funs[r.directed_index()] - 0.6).abs() < 1e-12);
        // all targets have fanin 1: Σ = 3; fun⁻¹ = 1
        assert!((funs[r.inverse().directed_index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arg_ratio_variant_is_clamped() {
        let kb = fanout_kb();
        let funs = kb.functionalities_with(FunctionalityVariant::ArgRatio);
        let r = kb.relation_by_iri("http://x/r").unwrap();
        // 2 sources / 3 targets
        assert!((funs[r.directed_index()] - 2.0 / 3.0).abs() < 1e-12);
        // inverse would be 3/2 — clamped to 1
        assert!((funs[r.inverse().directed_index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arg_ratio_likes_dish_pathology() {
        // Appendix A: everyone likes every dish → ArgRatio says 1,
        // HarmonicMean correctly says 1/n.
        let mut b = KbBuilder::new("t");
        for p in 0..4 {
            for d in 0..4 {
                b.add_fact(
                    format!("http://x/person{p}"),
                    "http://x/likesDish",
                    format!("http://x/dish{d}"),
                );
            }
        }
        let kb = b.build();
        let r = kb.relation_by_iri("http://x/likesDish").unwrap();
        let arg = kb.functionalities_with(FunctionalityVariant::ArgRatio);
        let harm = kb.functionalities_with(FunctionalityVariant::HarmonicMean);
        assert!(
            (arg[r.directed_index()] - 1.0).abs() < 1e-12,
            "pathological 1.0"
        );
        assert!(
            (harm[r.directed_index()] - 0.25).abs() < 1e-12,
            "harmonic 4/16"
        );
    }

    #[test]
    fn arithmetic_mean_variant() {
        let kb = fanout_kb();
        let funs = kb.functionalities_with(FunctionalityVariant::ArithmeticMean);
        let r = kb.relation_by_iri("http://x/r").unwrap();
        // locals: 1/1 and 1/2 → mean 0.75
        assert!((funs[r.directed_index()] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_exceeds_harmonic() {
        // AM–HM inequality: for any fanout distribution the arithmetic mean
        // of local functionalities dominates the harmonic mean.
        let kb = fanout_kb();
        let am = kb.functionalities_with(FunctionalityVariant::ArithmeticMean);
        let hm = kb.functionalities_with(FunctionalityVariant::HarmonicMean);
        let r = kb.relation_by_iri("http://x/r").unwrap();
        assert!(am[r.directed_index()] >= hm[r.directed_index()]);
    }

    #[test]
    fn all_variants_in_unit_interval() {
        let kb = fanout_kb();
        for v in FunctionalityVariant::ALL {
            for f in kb.functionalities_with(v) {
                assert!((0.0..=1.0).contains(&f), "{} out of range for {v:?}", f);
            }
        }
    }

    #[test]
    fn empty_relation_defaults_to_one() {
        // A relation that only appears via subPropertyOf but has no facts.
        let mut b = KbBuilder::new("t");
        b.add_subproperty("http://x/r", "http://x/s");
        let kb = b.build();
        for r in kb.directed_relations() {
            assert_eq!(kb.functionality(r), 1.0);
        }
    }

    #[test]
    fn variant_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            FunctionalityVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
