//! Out-of-core bulk ingest: streaming RDF → single-KB v2 snapshot.
//!
//! Every other build path materializes an in-heap [`Kb`](crate::Kb) first,
//! so the largest snapshot we can *produce* is bounded by RAM even though
//! v2 *serving* is mmap'd. This module builds the same v2 image without
//! ever holding the KB: triples stream through an external-sort pipeline
//! whose resident set is capped by a configurable memory budget, with
//! sorted runs spilled to temp files and k-way merged back.
//!
//! The output is **bit-identical** to the heap path
//! (`parse → KbBuilder::build → save_kb_v2`), which is what lets the whole
//! serving / replication / explain stack work on ingested images unchanged
//! (property-tested in `tests/ingest_identity.rs`). Reproducing the heap
//! image exactly means reproducing *first-occurrence* term interning
//! without an interning hash map; the pipeline does it with sequence
//! numbers:
//!
//! ```text
//! input ─parse_chunked─▶ A: occurrences   (term record, occ#, slot)
//!                        B: directory     group by record bytes → byte
//!                           │             rank u, first occ#, kind flags
//!                           ├─▶ C: ids    merge by first occ# → dense id;
//!                           │             TERM_BLOB/OFFSETS/KINDS, classes
//!                           ├─▶ D: sorted TERM_SORTED = id per byte rank
//!                           └─▶ E: slots  resolve every mention to its id
//!                        F: facts         regroup by statement → pair keys
//!                                         (+ rdfs:subPropertyOf closure)
//!                        H/I: types       rdf:type closure → TYPES, MEMBERS
//!                        J/K: pairs/adj   PAIR_*, ADJ_*, functionalities
//! ```
//!
//! Schema-scale state (relation names, the class list, taxonomy closures)
//! stays in memory — it is bounded by the ontology's *vocabulary*, not its
//! data. Everything proportional to the number of statements or terms
//! flows through `ExternalSorter`s that share one `MemBudget`.
//!
//! Spill-run format: records framed as `[klen u32 LE][plen u32 LE][key]
//! [payload]`, sorted by `(key, payload)`. Keys are big-endian-encoded
//! integers (or raw term-record bytes), so lexicographic byte comparison
//! equals the intended order and the k-way merge needs no decoding.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use paris_rdf::ntriples::{parse_chunked, ChunkOptions};
use paris_rdf::term::Term;
use paris_rdf::triple::Triple;
use paris_rdf::vocab;
use paris_rdf::{Iri, RdfError};

use crate::closure::close_taxonomy;
use crate::fxhash::FxHashMap;
use crate::snapshot::{PayloadWriter, SnapshotKind, MAGIC};
use crate::snapshot_v2::{
    checksum_v2, checksum_v2_stream, encode_term_record, FORMAT_VERSION_V2, HEADER_LEN, KB1_BASE,
    KB_ADJ, KB_ADJ_OFFSETS, KB_CLASSES, KB_FUN, KB_MEMBERS, KB_META, KB_PAIRS, KB_PAIR_OFFSETS,
    KB_REL_BLOB, KB_REL_OFFSETS, KB_SUPER, KB_TERM_BLOB, KB_TERM_KINDS, KB_TERM_OFFSETS,
    KB_TERM_SORTED, KB_TYPES, SECTION_ENTRY_LEN, TAG_IRI,
};

// ----------------------------------------------------------------------
// Options / report / error
// ----------------------------------------------------------------------

/// Configuration for one ingest run.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// KB display name stored in the META section. Must match the heap
    /// path's name (the CLI uses the input file stem) for byte-identity.
    pub name: String,
    /// Memory budget in bytes for the sort buffers (floor: 64 KiB). The
    /// parse chunk size is derived from it; schema-scale state (relation
    /// names, class taxonomy) is excluded by design.
    pub mem_budget: usize,
    /// Parser worker threads (1 = sequential).
    pub threads: usize,
    /// Accept N-Quads (graph labels are validated, then discarded).
    pub quads: bool,
    /// Directory for spill files; defaults to the output's directory.
    pub tmp_dir: Option<PathBuf>,
    /// When set, every ingest pass (A–K plus assembly) records a span
    /// with rows/bytes/spill counts into this collector — the live
    /// progress window for long bulk loads.
    pub spans: Option<std::sync::Arc<paris_obs::span::SpanCollector>>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            name: "kb".to_owned(),
            mem_budget: 256 << 20,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            quads: false,
            tmp_dir: None,
            spans: None,
        }
    }
}

/// Counters from a completed ingest.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestReport {
    /// Statements parsed (before dedup/closure).
    pub triples: u64,
    /// Input lines consumed.
    pub lines: u64,
    /// Input bytes consumed.
    pub bytes_in: u64,
    /// Interned terms (entities + literals).
    pub entities: u64,
    /// Base relations.
    pub relations: u64,
    /// Classes.
    pub classes: u64,
    /// Deduplicated fact pairs after subPropertyOf closure.
    pub pairs: u64,
    /// Sorted runs spilled to disk.
    pub spill_runs: u64,
    /// Total bytes written to spill files.
    pub spill_bytes: u64,
    /// Size of the final snapshot file.
    pub output_bytes: u64,
}

/// An ingest failure.
#[derive(Debug)]
pub enum IngestError {
    /// The input was not valid N-Triples/N-Quads.
    Rdf(RdfError),
    /// An I/O failure reading input or writing spill/output files.
    Io(io::Error),
    /// The KB exceeds a format limit (e.g. more than `u32::MAX` terms).
    Limit(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Rdf(e) => write!(f, "{e}"),
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Limit(m) => write!(f, "ingest limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Rdf(e) => Some(e),
            IngestError::Io(e) => Some(e),
            IngestError::Limit(_) => None,
        }
    }
}

impl From<RdfError> for IngestError {
    fn from(e: RdfError) -> Self {
        match e {
            RdfError::Io(io) => IngestError::Io(io),
            other => IngestError::Rdf(other),
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

// ----------------------------------------------------------------------
// Memory budget + temp dir
// ----------------------------------------------------------------------

/// Byte budget shared by every sorter of one ingest run.
struct MemBudget {
    limit: usize,
    used: Cell<usize>,
    spill_runs: Cell<u64>,
    spill_bytes: Cell<u64>,
}

impl MemBudget {
    fn new(limit: usize) -> Self {
        MemBudget {
            limit: limit.max(64 << 10),
            used: Cell::new(0),
            spill_runs: Cell::new(0),
            spill_bytes: Cell::new(0),
        }
    }

    /// Reserves `n` bytes if they fit under the limit.
    fn try_reserve(&self, n: usize) -> bool {
        let used = self.used.get();
        if used + n <= self.limit {
            self.used.set(used + n);
            true
        } else {
            false
        }
    }

    /// Reserves `n` bytes unconditionally (a single record larger than the
    /// whole budget must still make progress).
    fn force_reserve(&self, n: usize) {
        self.used.set(self.used.get() + n);
    }

    fn release(&self, n: usize) {
        self.used.set(self.used.get().saturating_sub(n));
    }
}

/// RAII spill directory: `<base>/.paris-ingest.<pid>.<seq>`, removed with
/// everything in it on drop — success *and* every error path.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn create(base: &Path) -> io::Result<TempDir> {
        use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, AtomicOrdering::Relaxed);
        let path = base.join(format!(".paris-ingest.{}.{seq}", std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.path).ok();
    }
}

// ----------------------------------------------------------------------
// External sorter
// ----------------------------------------------------------------------

/// Spills are merged down once a sorter accumulates this many runs, keeping
/// file-descriptor use bounded under adversarially tiny budgets.
const MAX_RUNS: usize = 64;

/// Per-record bookkeeping cost charged to the budget alongside the bytes.
const INDEX_COST: usize = std::mem::size_of::<(usize, u32, u32)>();

/// A budget-bounded (key, payload) sorter: buffer in memory, spill sorted
/// runs when the shared budget is exhausted, k-way merge on drain. Records
/// compare by `(key, payload)`; drain optionally skips exact duplicates.
struct ExternalSorter {
    label: &'static str,
    dir: PathBuf,
    budget: Rc<MemBudget>,
    /// Concatenated `key ‖ payload` record bytes.
    buf: Vec<u8>,
    /// `(record start, key length, record length)` per record.
    index: Vec<(usize, u32, u32)>,
    runs: Vec<PathBuf>,
    seq: usize,
    reserved: usize,
}

impl ExternalSorter {
    fn new(label: &'static str, dir: &TempDir, budget: Rc<MemBudget>) -> Self {
        ExternalSorter {
            label,
            dir: dir.path.clone(),
            budget,
            buf: Vec::new(),
            index: Vec::new(),
            runs: Vec::new(),
            seq: 0,
            reserved: 0,
        }
    }

    fn push(&mut self, key: &[u8], payload: &[u8]) -> io::Result<()> {
        let need = key.len() + payload.len() + INDEX_COST;
        if !self.budget.try_reserve(need) {
            if !self.index.is_empty() {
                self.spill()?;
            }
            if !self.budget.try_reserve(need) {
                self.budget.force_reserve(need);
            }
        }
        self.reserved += need;
        let start = self.buf.len();
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(payload);
        let rlen = (key.len() + payload.len()) as u32;
        self.index.push((start, key.len() as u32, rlen));
        Ok(())
    }

    fn sort_index(buf: &[u8], index: &mut [(usize, u32, u32)]) {
        index.sort_unstable_by(|&(sa, ka, ra), &(sb, kb, rb)| {
            let key_a = &buf[sa..sa + ka as usize];
            let key_b = &buf[sb..sb + kb as usize];
            key_a.cmp(key_b).then_with(|| {
                let pay_a = &buf[sa + ka as usize..sa + ra as usize];
                let pay_b = &buf[sb + kb as usize..sb + rb as usize];
                pay_a.cmp(pay_b)
            })
        });
    }

    /// Flushes the in-memory buffer as one sorted run file.
    fn spill(&mut self) -> io::Result<()> {
        Self::sort_index(&self.buf, &mut self.index);
        let path = self.dir.join(format!("{}.{}.run", self.label, self.seq));
        self.seq += 1;
        let mut written = 0u64;
        let mut w = BufWriter::new(File::create(&path)?);
        for &(start, klen, rlen) in &self.index {
            w.write_all(&klen.to_le_bytes())?;
            w.write_all(&(rlen - klen).to_le_bytes())?;
            w.write_all(&self.buf[start..start + rlen as usize])?;
            written += 8 + rlen as u64;
        }
        w.flush()?;
        self.runs.push(path);
        self.budget.spill_runs.set(self.budget.spill_runs.get() + 1);
        self.budget
            .spill_bytes
            .set(self.budget.spill_bytes.get() + written);
        self.buf = Vec::new();
        self.index = Vec::new();
        self.budget.release(self.reserved);
        self.reserved = 0;
        if self.runs.len() >= MAX_RUNS {
            self.compact_runs()?;
        }
        Ok(())
    }

    /// Merges all current runs into one (duplicates preserved; only the
    /// final drain deduplicates).
    fn compact_runs(&mut self) -> io::Result<()> {
        let path = self.dir.join(format!("{}.{}.run", self.label, self.seq));
        self.seq += 1;
        let runs = std::mem::take(&mut self.runs);
        {
            let mut w = BufWriter::new(File::create(&path)?);
            merge_runs(&runs, false, |key, payload| {
                w.write_all(&(key.len() as u32).to_le_bytes())?;
                w.write_all(&(payload.len() as u32).to_le_bytes())?;
                w.write_all(key)?;
                w.write_all(payload)
            })?;
            w.flush()?;
        }
        for r in &runs {
            fs::remove_file(r).ok();
        }
        self.runs.push(path);
        Ok(())
    }

    /// Streams every record in `(key, payload)` order to `f`, consuming the
    /// sorter. With `dedup`, exact duplicate records are delivered once.
    fn drain(
        mut self,
        dedup: bool,
        mut f: impl FnMut(&[u8], &[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        if self.runs.is_empty() {
            // Fast path: everything fit in memory.
            Self::sort_index(&self.buf, &mut self.index);
            let mut prev: Option<(usize, u32)> = None;
            for &(start, klen, rlen) in &self.index {
                let rec = &self.buf[start..start + rlen as usize];
                if dedup {
                    if let Some((ps, pr)) = prev {
                        if self.buf[ps..ps + pr as usize] == *rec {
                            continue;
                        }
                    }
                }
                f(&rec[..klen as usize], &rec[klen as usize..])?;
                prev = Some((start, rlen));
            }
        } else {
            if !self.index.is_empty() {
                self.spill()?;
            }
            let runs = std::mem::take(&mut self.runs);
            merge_runs(&runs, dedup, &mut f)?;
            for r in &runs {
                fs::remove_file(r).ok();
            }
        }
        self.budget.release(self.reserved);
        self.reserved = 0;
        Ok(())
    }
}

impl Drop for ExternalSorter {
    fn drop(&mut self) {
        self.budget.release(self.reserved);
    }
}

/// One run's read head in a k-way merge.
struct RunHead {
    run: usize,
    key: Vec<u8>,
    payload: Vec<u8>,
}

impl PartialEq for RunHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for RunHead {}
impl PartialOrd for RunHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RunHead {
    /// Reversed, so the std max-heap pops the smallest `(key, payload)`;
    /// the run-index tie-break makes the merge fully deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.payload.cmp(&self.payload))
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// Reads one framed record; `false` on clean EOF.
fn read_record(
    r: &mut BufReader<File>,
    key: &mut Vec<u8>,
    payload: &mut Vec<u8>,
) -> io::Result<bool> {
    let mut lens = [0u8; 8];
    match r.read_exact(&mut lens[..1]) {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        other => other?,
    }
    r.read_exact(&mut lens[1..])?;
    let klen = u32::from_le_bytes(lens[0..4].try_into().expect("4 bytes")) as usize;
    let plen = u32::from_le_bytes(lens[4..8].try_into().expect("4 bytes")) as usize;
    key.resize(klen, 0);
    r.read_exact(key)?;
    payload.resize(plen, 0);
    r.read_exact(payload)?;
    Ok(true)
}

/// K-way merges sorted run files, delivering records in `(key, payload)`
/// order (optionally deduplicated) to `f`.
fn merge_runs(
    runs: &[PathBuf],
    dedup: bool,
    mut f: impl FnMut(&[u8], &[u8]) -> io::Result<()>,
) -> io::Result<()> {
    let mut readers: Vec<BufReader<File>> = runs
        .iter()
        .map(|p| File::open(p).map(BufReader::new))
        .collect::<io::Result<_>>()?;
    let mut heap = BinaryHeap::with_capacity(readers.len());
    for (run, reader) in readers.iter_mut().enumerate() {
        let (mut key, mut payload) = (Vec::new(), Vec::new());
        if read_record(reader, &mut key, &mut payload)? {
            heap.push(RunHead { run, key, payload });
        }
    }
    let mut prev_key: Vec<u8> = Vec::new();
    let mut prev_payload: Vec<u8> = Vec::new();
    let mut first = true;
    while let Some(mut head) = heap.pop() {
        let duplicate = dedup && !first && head.key == prev_key && head.payload == prev_payload;
        if !duplicate {
            f(&head.key, &head.payload)?;
            if dedup {
                // Swap so the buffers just delivered become "previous" and
                // the old previous buffers are reused for the next read.
                std::mem::swap(&mut prev_key, &mut head.key);
                std::mem::swap(&mut prev_payload, &mut head.payload);
            }
            first = false;
        }
        if read_record(&mut readers[head.run], &mut head.key, &mut head.payload)? {
            heap.push(head);
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Streaming section files
// ----------------------------------------------------------------------

/// One snapshot section accumulating on disk.
struct SectionFile {
    path: PathBuf,
    w: BufWriter<File>,
    len: u64,
}

impl SectionFile {
    fn create(dir: &TempDir, id: u32) -> io::Result<SectionFile> {
        let path = dir.file(&format!("sec-{id}.bin"));
        Ok(SectionFile {
            w: BufWriter::new(File::create(&path)?),
            path,
            len: 0,
        })
    }

    fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.len += bytes.len() as u64;
        self.w.write_all(bytes)
    }

    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.write(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.write(&v.to_le_bytes())
    }

    fn finish(mut self) -> io::Result<SectionSrc> {
        self.w.flush()?;
        Ok(SectionSrc::File(self.path, self.len))
    }
}

/// Where a finished section's bytes live while awaiting assembly.
enum SectionSrc {
    Mem(Vec<u8>),
    File(PathBuf, u64),
}

impl SectionSrc {
    fn len(&self) -> u64 {
        match self {
            SectionSrc::Mem(v) => v.len() as u64,
            SectionSrc::File(_, len) => *len,
        }
    }

    fn checksum(&self) -> io::Result<u64> {
        match self {
            SectionSrc::Mem(v) => Ok(checksum_v2(v)),
            SectionSrc::File(path, len) => {
                checksum_v2_stream(&mut BufReader::new(File::open(path)?), *len)
            }
        }
    }
}

/// Assembles the final v2 file — header, checksummed section table, then the
/// section bytes 8-aligned — streaming, then renames it into place. The
/// result is byte-identical to `SectionWriter::finish` + atomic write.
fn assemble_snapshot(output: &Path, sections: &[(u32, SectionSrc)]) -> io::Result<u64> {
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, AtomicOrdering::Relaxed);
    let mut tmp_name = output.file_name().unwrap_or_default().to_owned();
    tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = output.with_file_name(tmp_name);

    let write = || -> io::Result<u64> {
        let data_start = HEADER_LEN + sections.len() * SECTION_ENTRY_LEN;
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION_V2.to_le_bytes())?;
        w.write_all(&[SnapshotKind::Kb.to_byte(), 0, 0, 0])?;
        w.write_all(&(sections.len() as u32).to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        let mut offset = 0u64;
        for (id, src) in sections {
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&0u32.to_le_bytes())?;
            w.write_all(&(data_start as u64 + offset).to_le_bytes())?;
            w.write_all(&src.len().to_le_bytes())?;
            w.write_all(&src.checksum()?.to_le_bytes())?;
            offset += src.len().div_ceil(8) * 8;
        }
        let mut total = data_start as u64;
        for (_, src) in sections {
            match src {
                SectionSrc::Mem(v) => w.write_all(v)?,
                SectionSrc::File(path, len) => {
                    let copied = io::copy(&mut File::open(path)?, &mut w)?;
                    if copied != *len {
                        return Err(io::Error::other(format!(
                            "section file {} changed size mid-assembly",
                            path.display()
                        )));
                    }
                }
            }
            let pad = (src.len().div_ceil(8) * 8 - src.len()) as usize;
            w.write_all(&[0u8; 8][..pad])?;
            total += src.len() + pad as u64;
        }
        w.flush()?;
        w.into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?
            .sync_all()?;
        fs::rename(&tmp, output)?;
        Ok(total)
    };
    write().inspect_err(|_| {
        fs::remove_file(&tmp).ok();
    })
}

// ----------------------------------------------------------------------
// The pipeline
// ----------------------------------------------------------------------

/// Occurrence-slot kinds: which statement structure a term mention fills.
const SLOT_FACT: u8 = 0;
const SLOT_TYPE: u8 = 1;
const SLOT_SUB: u8 = 2;

/// Term-directory flags, carried alongside each term through pass B/C.
const FLAG_LITERAL: u8 = 1;
const FLAG_CLASS: u8 = 2;

fn intern_rel(iri: &Iri, rels: &mut Vec<Iri>, index: &mut FxHashMap<Iri, u32>) -> io::Result<u32> {
    if let Some(&b) = index.get(iri) {
        return Ok(b);
    }
    let b =
        u32::try_from(rels.len()).map_err(|_| io::Error::other("relation count exceeds u32"))?;
    rels.push(iri.clone());
    index.insert(iri.clone(), b);
    Ok(b)
}

/// Records one span per ingest pass into the configured collector: the
/// span carries a `rows` count, the pass's spill-run/spill-byte deltas
/// (sampled from the shared [`MemBudget`] around the pass), and any
/// extra attributes the pass adds. A disabled collector costs one
/// `Option` check per pass.
struct PassTracer<'a> {
    collector: Option<&'a paris_obs::span::SpanCollector>,
    budget: Rc<MemBudget>,
}

/// An open pass span plus the spill counters at pass start.
struct OpenPass(paris_obs::span::Span, u64, u64);

impl PassTracer<'_> {
    fn begin(&self, name: &'static str) -> Option<OpenPass> {
        self.collector.map(|c| {
            OpenPass(
                c.begin(name),
                self.budget.spill_runs.get(),
                self.budget.spill_bytes.get(),
            )
        })
    }

    fn finish(&self, open: Option<OpenPass>, rows: u64, extra: &[(&'static str, u64)]) {
        if let (Some(c), Some(OpenPass(mut span, runs0, bytes0))) = (self.collector, open) {
            span.attr_int("rows", rows);
            span.attr_int("spill_runs", self.budget.spill_runs.get() - runs0);
            span.attr_int("spill_bytes", self.budget.spill_bytes.get() - bytes0);
            for &(key, value) in extra {
                span.attr_int(key, value);
            }
            c.finish(span);
        }
    }
}

/// Ingests an N-Triples/N-Quads file into a single-KB v2 snapshot at
/// `output`, in memory bounded by `opts.mem_budget`.
pub fn ingest_file(
    input: impl AsRef<Path>,
    output: impl AsRef<Path>,
    opts: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    let file = File::open(input.as_ref())?;
    ingest_reader(file, output.as_ref(), opts)
}

/// [`ingest_file`] over any reader.
pub fn ingest_reader(
    reader: impl Read,
    output: &Path,
    opts: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    let out_dir = match output.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp_base = opts.tmp_dir.as_deref().unwrap_or(out_dir);
    let tmp = TempDir::create(tmp_base)?;
    let budget = Rc::new(MemBudget::new(opts.mem_budget));
    let mut report = IngestReport::default();
    let tracer = PassTracer {
        collector: opts.spans.as_deref(),
        budget: Rc::clone(&budget),
    };

    // ---- Pass A: parse; number every term mention; stream occurrences.
    //
    // `occ` replays KbBuilder's intern-call order exactly (fact: subject
    // then object; type edge: instance then class; subclass: sub then sup;
    // vocab statements with literal objects dropped whole), so "rank of a
    // term's first occurrence" below IS the heap path's dense id.
    let chunk_opts = ChunkOptions {
        threads: opts.threads.max(1),
        chunk_bytes: (budget.limit / 4).clamp(64 << 10, 8 << 20),
        quads: opts.quads,
    };
    let pass = tracer.begin("pass_a_parse");
    let mut s_occ = ExternalSorter::new("occ", &tmp, Rc::clone(&budget));
    let mut rels: Vec<Iri> = Vec::new();
    let mut rel_index: FxHashMap<Iri, u32> = FxHashMap::default();
    let mut subprop_edges: Vec<(u32, u32)> = Vec::new();
    {
        let mut occ = 0u64;
        let mut counts = [0u64; 3]; // statements per slot kind
        let mut rec: Vec<u8> = Vec::new();
        let s_occ = &mut s_occ;
        let mut push_occ =
            |s_occ: &mut ExternalSorter, term: &Term, kind: u8, idx: u64, pos: u8, rel: u32| {
                rec.clear();
                encode_term_record(&mut rec, term);
                let mut payload = [0u8; 22];
                payload[0..8].copy_from_slice(&occ.to_be_bytes());
                payload[8] = kind;
                payload[9..17].copy_from_slice(&idx.to_be_bytes());
                payload[17] = pos;
                payload[18..22].copy_from_slice(&rel.to_be_bytes());
                occ += 1;
                s_occ.push(&rec, &payload)
            };
        let stats = parse_chunked(reader, &chunk_opts, |batch: Vec<Triple>| {
            for t in &batch {
                match t.predicate.as_str() {
                    vocab::RDF_TYPE => {
                        if let Term::Iri(class) = &t.object {
                            let idx = counts[SLOT_TYPE as usize];
                            counts[SLOT_TYPE as usize] += 1;
                            push_occ(s_occ, &Term::Iri(t.subject.clone()), SLOT_TYPE, idx, 0, 0)?;
                            push_occ(s_occ, &Term::Iri(class.clone()), SLOT_TYPE, idx, 1, 0)?;
                        }
                    }
                    vocab::RDFS_SUBCLASS_OF => {
                        if let Term::Iri(sup) = &t.object {
                            let idx = counts[SLOT_SUB as usize];
                            counts[SLOT_SUB as usize] += 1;
                            push_occ(s_occ, &Term::Iri(t.subject.clone()), SLOT_SUB, idx, 0, 0)?;
                            push_occ(s_occ, &Term::Iri(sup.clone()), SLOT_SUB, idx, 1, 0)?;
                        }
                    }
                    vocab::RDFS_SUBPROPERTY_OF => {
                        if let Term::Iri(sup) = &t.object {
                            let a = intern_rel(&t.subject, &mut rels, &mut rel_index)?;
                            let b = intern_rel(sup, &mut rels, &mut rel_index)?;
                            subprop_edges.push((a, b));
                        }
                    }
                    _ => {
                        let idx = counts[SLOT_FACT as usize];
                        counts[SLOT_FACT as usize] += 1;
                        let r = intern_rel(&t.predicate, &mut rels, &mut rel_index)?;
                        push_occ(s_occ, &Term::Iri(t.subject.clone()), SLOT_FACT, idx, 0, r)?;
                        push_occ(s_occ, &t.object, SLOT_FACT, idx, 1, r)?;
                    }
                }
            }
            Ok(())
        })?;
        report.triples = stats.triples;
        report.lines = stats.lines;
        report.bytes_in = stats.bytes;
    }
    let nrel = rels.len();
    tracer.finish(pass, report.triples, &[("bytes", report.bytes_in)]);

    // ---- Pass B: term directory. Records arrive grouped by term-record
    // bytes (= TERM_SORTED order), each group's payloads sorted by occ#, so
    // the head of a group carries the term's first occurrence.
    let pass = tracer.begin("pass_b_directory");
    let mut mentions = 0u64;
    let mut s_dir = ExternalSorter::new("dir", &tmp, Rc::clone(&budget));
    let mut s_occ2 = ExternalSorter::new("occ2", &tmp, Rc::clone(&budget));
    {
        let mut prev_rec: Vec<u8> = Vec::new();
        let mut have_group = false;
        let mut first_occ = [0u8; 8];
        let mut flags = 0u8;
        let mut next_u = 0u64;
        let s_dir = &mut s_dir;
        let emit_dir = |s_dir: &mut ExternalSorter,
                        first_occ: &[u8; 8],
                        u: u64,
                        flags: u8,
                        record: &[u8]|
         -> io::Result<()> {
            let mut payload = Vec::with_capacity(5 + record.len());
            payload.extend_from_slice(&(u as u32).to_be_bytes());
            payload.push(flags);
            payload.extend_from_slice(record);
            s_dir.push(first_occ, &payload)
        };
        s_occ.drain(false, |key, payload| {
            mentions += 1;
            if !have_group || key != prev_rec.as_slice() {
                if have_group {
                    emit_dir(s_dir, &first_occ, next_u - 1, flags, &prev_rec)?;
                }
                if next_u > u64::from(u32::MAX) {
                    return Err(io::Error::other("term count exceeds u32"));
                }
                prev_rec.clear();
                prev_rec.extend_from_slice(key);
                first_occ.copy_from_slice(&payload[0..8]);
                flags = if key[0] != TAG_IRI { FLAG_LITERAL } else { 0 };
                next_u += 1;
                have_group = true;
            }
            let kind = payload[8];
            let pos = payload[17];
            if (kind == SLOT_TYPE && pos == 1) || kind == SLOT_SUB {
                flags |= FLAG_CLASS;
            }
            // Mention record for pass E: key = byte rank, payload = slot.
            let u_key = ((next_u - 1) as u32).to_be_bytes();
            let mut slot = [0u8; 14];
            slot[0] = kind;
            slot[1..9].copy_from_slice(&payload[9..17]);
            slot[9] = pos;
            slot[10..14].copy_from_slice(&payload[18..22]);
            s_occ2.push(&u_key, &slot)
        })?;
        if have_group {
            emit_dir(s_dir, &first_occ, next_u - 1, flags, &prev_rec)?;
        }
    }
    tracer.finish(pass, mentions, &[]);

    // ---- Pass C: id assignment. Merging the directory by first occurrence
    // reproduces first-occurrence interning: the i-th term out IS id i.
    // TERM_BLOB / TERM_OFFSETS / TERM_KINDS / CLASSES stream out here.
    let pass = tracer.begin("pass_c_ids");
    let mut f_blob = SectionFile::create(&tmp, KB1_BASE + KB_TERM_BLOB)?;
    let mut f_toff = SectionFile::create(&tmp, KB1_BASE + KB_TERM_OFFSETS)?;
    let mut f_kinds = SectionFile::create(&tmp, KB1_BASE + KB_TERM_KINDS)?;
    f_toff.put_u64(0)?;
    let mut s_uid = ExternalSorter::new("uid", &tmp, Rc::clone(&budget));
    let mut classes: Vec<u32> = Vec::new();
    let n_terms;
    {
        let mut blob_len = 0u64;
        let mut id = 0u64;
        let s_uid = &mut s_uid;
        let classes = &mut classes;
        s_dir.drain(false, |_, payload| {
            let flags = payload[4];
            let record = &payload[5..];
            f_blob.write(record)?;
            blob_len += record.len() as u64;
            f_toff.put_u64(blob_len)?;
            let kind_byte = if flags & FLAG_LITERAL != 0 {
                2u8
            } else if flags & FLAG_CLASS != 0 {
                1
            } else {
                0
            };
            f_kinds.write(&[kind_byte])?;
            if flags & FLAG_CLASS != 0 {
                classes.push(id as u32);
            }
            s_uid.push(&payload[0..4], &(id as u32).to_le_bytes())?;
            id += 1;
            Ok(())
        })?;
        n_terms = id;
    }
    report.entities = n_terms;
    report.relations = nrel as u64;
    report.classes = classes.len() as u64;
    tracer.finish(
        pass,
        n_terms,
        &[("relations", nrel as u64), ("classes", report.classes)],
    );

    // ---- Pass D: TERM_SORTED = dense id per byte rank. The section file
    // doubles as the rank → id table pass E reads back.
    let pass = tracer.begin("pass_d_term_sorted");
    let mut f_sorted = SectionFile::create(&tmp, KB1_BASE + KB_TERM_SORTED)?;
    s_uid.drain(false, |_, payload| f_sorted.write(payload))?;
    let sec_sorted = f_sorted.finish()?;
    tracer.finish(pass, n_terms, &[]);
    let sorted_path = match &sec_sorted {
        SectionSrc::File(p, _) => p.clone(),
        SectionSrc::Mem(_) => unreachable!("TERM_SORTED is file-backed"),
    };

    // ---- Pass E: resolve every mention. Mentions arrive sorted by byte
    // rank; the rank → id table is read sequentially in lockstep.
    let pass = tracer.begin("pass_e_mentions");
    let mut s_slots = ExternalSorter::new("slot", &tmp, Rc::clone(&budget));
    {
        let mut id_reader = BufReader::new(File::open(&sorted_path)?);
        let mut cur_u: i64 = -1;
        let mut cur_id = [0u8; 4];
        let s_slots = &mut s_slots;
        s_occ2.drain(false, |key, payload| {
            let u = i64::from(u32::from_be_bytes(key.try_into().expect("4-byte rank")));
            while cur_u < u {
                id_reader.read_exact(&mut cur_id)?;
                cur_u += 1;
            }
            let mut k = [0u8; 10];
            k[0] = payload[0]; // slot kind
            k[1..9].copy_from_slice(&payload[1..9]); // statement index (BE)
            k[9] = payload[9]; // position
            let mut p = [0u8; 8];
            p[0..4].copy_from_slice(&cur_id); // term id (LE)
            p[4..8].copy_from_slice(&payload[10..14]); // relation (BE)
            s_slots.push(&k, &p)
        })?;
    }
    tracer.finish(pass, mentions, &[]);

    // ---- Pass F: regroup by statement. Each (kind, index) group holds the
    // subject then the object id; facts expand through the subPropertyOf
    // closure exactly like KbBuilder's closed_facts.
    let pass = tracer.begin("pass_f_regroup");
    let prop_closure = close_taxonomy(
        nrel,
        subprop_edges.iter().map(|&(a, b)| (a as usize, b as usize)),
    );
    let mut s_pairs = ExternalSorter::new("pair", &tmp, Rc::clone(&budget));
    let mut s_types = ExternalSorter::new("type", &tmp, Rc::clone(&budget));
    let mut sub_resolved: Vec<(u32, u32)> = Vec::new();
    {
        let mut pending: Option<u32> = None;
        let s_pairs = &mut s_pairs;
        let s_types = &mut s_types;
        let sub_resolved = &mut sub_resolved;
        s_slots.drain(false, |key, payload| {
            let kind = key[0];
            let pos = key[9];
            let id = u32::from_le_bytes(payload[0..4].try_into().expect("4-byte id"));
            if pos == 0 {
                pending = Some(id);
                return Ok(());
            }
            let subject = pending.take().expect("pos-1 slot without its pos-0 twin");
            match kind {
                SLOT_FACT => {
                    let rel = u32::from_be_bytes(payload[4..8].try_into().expect("4-byte rel"));
                    let mut k = [0u8; 12];
                    k[0..4].copy_from_slice(&rel.to_be_bytes());
                    k[4..8].copy_from_slice(&subject.to_be_bytes());
                    k[8..12].copy_from_slice(&id.to_be_bytes());
                    s_pairs.push(&k, &[])?;
                    for &sup in &prop_closure[rel as usize] {
                        k[0..4].copy_from_slice(&(sup as u32).to_be_bytes());
                        s_pairs.push(&k, &[])?;
                    }
                }
                SLOT_TYPE => {
                    let mut k = [0u8; 8];
                    k[0..4].copy_from_slice(&subject.to_be_bytes());
                    k[4..8].copy_from_slice(&id.to_be_bytes());
                    s_types.push(&k, &[])?;
                }
                _ => sub_resolved.push((subject, id)),
            }
            Ok(())
        })?;
    }
    tracer.finish(pass, mentions / 2, &[]);

    // ---- Class taxonomy (schema-scale, in memory): CLASSES + SUPER.
    let pass = tracer.begin("pass_g_taxonomy");
    let class_pos: FxHashMap<u32, usize> =
        classes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let tax_closure = close_taxonomy(
        classes.len(),
        sub_resolved
            .iter()
            .map(|&(a, b)| (class_pos[&a], class_pos[&b])),
    );
    let (sec_sup_keys, sec_sup_offs, sec_sup_vals) = {
        let mut keys = PayloadWriter::new();
        let mut offs = PayloadWriter::new();
        let mut vals = PayloadWriter::new();
        let mut total = 0u64;
        offs.put_u64(0);
        for (i, sups) in tax_closure.iter().enumerate() {
            if sups.is_empty() {
                continue;
            }
            keys.put_u32(classes[i]);
            total += sups.len() as u64;
            offs.put_u64(total);
            for &s in sups {
                vals.put_u32(classes[s]);
            }
        }
        (keys.into_bytes(), offs.into_bytes(), vals.into_bytes())
    };
    let sec_classes = {
        let mut w = PayloadWriter::new();
        for &c in &classes {
            w.put_u32(c);
        }
        w.into_bytes()
    };
    tracer.finish(pass, classes.len() as u64, &[]);

    // ---- Pass H: rdf:type closure. Type edges arrive sorted/deduped by
    // (instance, class); each instance's row closes over the taxonomy, then
    // sorts — matching KbBuilder's types_of. Members fan back out per class.
    let pass = tracer.begin("pass_h_type_closure");
    let closed_types;
    let mut f_tkeys = SectionFile::create(&tmp, KB1_BASE + KB_TYPES)?;
    let mut f_toffs = SectionFile::create(&tmp, KB1_BASE + KB_TYPES + 1)?;
    let mut f_tvals = SectionFile::create(&tmp, KB1_BASE + KB_TYPES + 2)?;
    f_toffs.put_u64(0)?;
    let mut s_members = ExternalSorter::new("member", &tmp, Rc::clone(&budget));
    {
        let mut cur_x: Option<u32> = None;
        let mut row: Vec<u32> = Vec::new();
        let mut types_total = 0u64;
        let s_members = &mut s_members;

        fn flush_row(
            x: u32,
            row: &mut Vec<u32>,
            types_total: &mut u64,
            f_tkeys: &mut SectionFile,
            f_toffs: &mut SectionFile,
            f_tvals: &mut SectionFile,
            s_members: &mut ExternalSorter,
        ) -> io::Result<()> {
            row.sort_unstable();
            row.dedup();
            f_tkeys.put_u32(x)?;
            *types_total += row.len() as u64;
            f_toffs.put_u64(*types_total)?;
            for &c in row.iter() {
                f_tvals.put_u32(c)?;
                let mut k = [0u8; 8];
                k[0..4].copy_from_slice(&c.to_be_bytes());
                k[4..8].copy_from_slice(&x.to_be_bytes());
                s_members.push(&k, &[])?;
            }
            row.clear();
            Ok(())
        }

        s_types.drain(true, |key, _| {
            let x = u32::from_be_bytes(key[0..4].try_into().expect("4-byte id"));
            let c = u32::from_be_bytes(key[4..8].try_into().expect("4-byte id"));
            if cur_x != Some(x) {
                if let Some(px) = cur_x {
                    flush_row(
                        px,
                        &mut row,
                        &mut types_total,
                        &mut f_tkeys,
                        &mut f_toffs,
                        &mut f_tvals,
                        s_members,
                    )?;
                }
                cur_x = Some(x);
            }
            row.push(c);
            if let Some(&p) = class_pos.get(&c) {
                row.extend(tax_closure[p].iter().map(|&s| classes[s]));
            }
            Ok(())
        })?;
        if let Some(px) = cur_x {
            flush_row(
                px,
                &mut row,
                &mut types_total,
                &mut f_tkeys,
                &mut f_toffs,
                &mut f_tvals,
                s_members,
            )?;
        }
        closed_types = types_total;
    }
    tracer.finish(pass, closed_types, &[]);

    // ---- Pass I: MEMBERS (class → sorted member instances).
    let pass = tracer.begin("pass_i_members");
    let mut f_mkeys = SectionFile::create(&tmp, KB1_BASE + KB_MEMBERS)?;
    let mut f_moffs = SectionFile::create(&tmp, KB1_BASE + KB_MEMBERS + 1)?;
    let mut f_mvals = SectionFile::create(&tmp, KB1_BASE + KB_MEMBERS + 2)?;
    f_moffs.put_u64(0)?;
    {
        let mut cur_c: Option<u32> = None;
        let mut total = 0u64;
        s_members.drain(true, |key, _| {
            let c = u32::from_be_bytes(key[0..4].try_into().expect("4-byte id"));
            let x = u32::from_be_bytes(key[4..8].try_into().expect("4-byte id"));
            if cur_c != Some(c) {
                if cur_c.is_some() {
                    f_moffs.put_u64(total)?;
                }
                f_mkeys.put_u32(c)?;
                cur_c = Some(c);
            }
            f_mvals.put_u32(x)?;
            total += 1;
            Ok(())
        })?;
        if cur_c.is_some() {
            f_moffs.put_u64(total)?;
        }
    }
    tracer.finish(pass, closed_types, &[]);

    // ---- Pass J: pair lists. Keys (relation, subject, object) arrive
    // sorted and dedup to exactly KbBuilder's sorted per-relation lists.
    // Adjacency records for both directions fan out here.
    let pass = tracer.begin("pass_j_pairs");
    let mut f_poffs = SectionFile::create(&tmp, KB1_BASE + KB_PAIR_OFFSETS)?;
    let mut f_pairs = SectionFile::create(&tmp, KB1_BASE + KB_PAIRS)?;
    f_poffs.put_u64(0)?;
    let mut s_adj = ExternalSorter::new("adj", &tmp, Rc::clone(&budget));
    {
        let mut filled = 0usize; // relations whose offset entry is written
        let mut total = 0u64;
        let s_adj = &mut s_adj;
        s_pairs.drain(true, |key, _| {
            let rel = u32::from_be_bytes(key[0..4].try_into().expect("4-byte rel")) as usize;
            let s = u32::from_be_bytes(key[4..8].try_into().expect("4-byte id"));
            let o = u32::from_be_bytes(key[8..12].try_into().expect("4-byte id"));
            while filled < rel {
                f_poffs.put_u64(total)?;
                filled += 1;
            }
            f_pairs.put_u32(s)?;
            f_pairs.put_u32(o)?;
            total += 1;
            let fwd = (rel as u32) * 2;
            let mut k = [0u8; 12];
            k[0..4].copy_from_slice(&s.to_be_bytes());
            k[4..8].copy_from_slice(&fwd.to_be_bytes());
            k[8..12].copy_from_slice(&o.to_be_bytes());
            s_adj.push(&k, &[])?;
            k[0..4].copy_from_slice(&o.to_be_bytes());
            k[4..8].copy_from_slice(&(fwd + 1).to_be_bytes());
            k[8..12].copy_from_slice(&s.to_be_bytes());
            s_adj.push(&k, &[])?;
            Ok(())
        })?;
        while filled < nrel {
            f_poffs.put_u64(total)?;
            filled += 1;
        }
        report.pairs = total;
    }
    tracer.finish(pass, report.pairs, &[]);

    // ---- Pass K: adjacency + functionalities. Rows arrive sorted by
    // (entity, directed relation, neighbor) — KbBuilder's adj order — and
    // the harmonic-mean counters (Eq. 2) fall out of the same scan.
    let pass = tracer.begin("pass_k_adjacency");
    let mut f_aoffs = SectionFile::create(&tmp, KB1_BASE + KB_ADJ_OFFSETS)?;
    let mut f_adj = SectionFile::create(&tmp, KB1_BASE + KB_ADJ)?;
    f_aoffs.put_u64(0)?;
    let mut pair_count = vec![0u64; 2 * nrel];
    let mut distinct_sources = vec![0u64; 2 * nrel];
    {
        let mut filled = 0u64; // entities whose offset entry is written
        let mut total = 0u64;
        let mut prev_group: Option<(u32, u32)> = None;
        let pair_count = &mut pair_count;
        let distinct_sources = &mut distinct_sources;
        s_adj.drain(true, |key, _| {
            let x = u32::from_be_bytes(key[0..4].try_into().expect("4-byte id"));
            let rel = u32::from_be_bytes(key[4..8].try_into().expect("4-byte rel"));
            let y = u32::from_be_bytes(key[8..12].try_into().expect("4-byte id"));
            while filled < u64::from(x) {
                f_aoffs.put_u64(total)?;
                filled += 1;
            }
            f_adj.put_u32(rel)?;
            f_adj.put_u32(y)?;
            total += 1;
            pair_count[rel as usize] += 1;
            if prev_group != Some((x, rel)) {
                distinct_sources[rel as usize] += 1;
                prev_group = Some((x, rel));
            }
            Ok(())
        })?;
        while filled < n_terms {
            f_aoffs.put_u64(total)?;
            filled += 1;
        }
    }
    let sec_fun = {
        let mut w = PayloadWriter::new();
        for b in 0..nrel {
            if pair_count[2 * b] == 0 {
                w.put_f64(1.0);
                w.put_f64(1.0);
            } else {
                w.put_f64(distinct_sources[2 * b] as f64 / pair_count[2 * b] as f64);
                w.put_f64(distinct_sources[2 * b + 1] as f64 / pair_count[2 * b + 1] as f64);
            }
        }
        w.into_bytes()
    };
    // Each pair fans out one forward and one reverse adjacency row.
    tracer.finish(pass, report.pairs * 2, &[]);

    // ---- Remaining schema-scale sections.
    let sec_meta = {
        let mut w = PayloadWriter::new();
        w.put_str(&opts.name);
        w.put_u64(n_terms);
        w.put_u64(nrel as u64);
        w.put_u64(classes.len() as u64);
        w.into_bytes()
    };
    let (sec_rel_blob, sec_rel_offs) = {
        let mut blob = Vec::new();
        let mut offs = PayloadWriter::new();
        offs.put_u64(0);
        for iri in &rels {
            blob.extend_from_slice(iri.as_str().as_bytes());
            offs.put_u64(blob.len() as u64);
        }
        (blob, offs.into_bytes())
    };

    // ---- Assembly, in exactly encode_kb_sections' add order.
    let pass = tracer.begin("assemble_snapshot");
    let base = KB1_BASE;
    let sections = vec![
        (base + KB_META, SectionSrc::Mem(sec_meta)),
        (base + KB_TERM_BLOB, f_blob.finish()?),
        (base + KB_TERM_OFFSETS, f_toff.finish()?),
        (base + KB_TERM_KINDS, f_kinds.finish()?),
        (base + KB_TERM_SORTED, sec_sorted),
        (base + KB_REL_BLOB, SectionSrc::Mem(sec_rel_blob)),
        (base + KB_REL_OFFSETS, SectionSrc::Mem(sec_rel_offs)),
        (base + KB_PAIR_OFFSETS, f_poffs.finish()?),
        (base + KB_PAIRS, f_pairs.finish()?),
        (base + KB_ADJ_OFFSETS, f_aoffs.finish()?),
        (base + KB_ADJ, f_adj.finish()?),
        (base + KB_CLASSES, SectionSrc::Mem(sec_classes)),
        (base + KB_MEMBERS, f_mkeys.finish()?),
        (base + KB_MEMBERS + 1, f_moffs.finish()?),
        (base + KB_MEMBERS + 2, f_mvals.finish()?),
        (base + KB_TYPES, f_tkeys.finish()?),
        (base + KB_TYPES + 1, f_toffs.finish()?),
        (base + KB_TYPES + 2, f_tvals.finish()?),
        (base + KB_SUPER, SectionSrc::Mem(sec_sup_keys)),
        (base + KB_SUPER + 1, SectionSrc::Mem(sec_sup_offs)),
        (base + KB_SUPER + 2, SectionSrc::Mem(sec_sup_vals)),
        (base + KB_FUN, SectionSrc::Mem(sec_fun)),
    ];
    report.output_bytes = assemble_snapshot(output, &sections)?;
    report.spill_runs = budget.spill_runs.get();
    report.spill_bytes = budget.spill_bytes.get();
    tracer.finish(
        pass,
        sections.len() as u64,
        &[("bytes", report.output_bytes)],
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use crate::snapshot_v2::kb_to_bytes_v2;

    fn test_dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("paris-ingest-test-{}-{name}", std::process::id()));
        fs::create_dir_all(&d).expect("create test dir");
        d
    }

    /// No `.paris-ingest.*` spill dirs and no `*.tmp.*` output remnants.
    fn assert_no_litter(dir: &Path) {
        let litter: Vec<String> = fs::read_dir(dir)
            .expect("read dir")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .filter(|n| n.contains(".paris-ingest.") || n.contains(".tmp."))
            .collect();
        assert!(litter.is_empty(), "leftover temp files: {litter:?}");
    }

    #[test]
    fn sorter_orders_and_dedups_across_spill_boundaries() {
        let dir = test_dir("sorter");
        let tmp = TempDir::create(&dir).unwrap();
        // Floor budget (64 KiB) + ~24-byte records → plenty of spills.
        let budget = Rc::new(MemBudget::new(1));
        let mut s = ExternalSorter::new("t", &tmp, Rc::clone(&budget));
        let n = 20_000u64;
        for i in 0..n {
            // A scrambled, colliding key sequence; every key pushed twice.
            let k = (i.wrapping_mul(2_654_435_761) % (n / 2)).to_be_bytes();
            s.push(&k, b"payload").unwrap();
            s.push(&k, b"payload").unwrap();
        }
        assert!(budget.spill_runs.get() > 2, "expected multi-run spilling");
        let mut seen = Vec::new();
        s.drain(true, |key, payload| {
            assert_eq!(payload, b"payload");
            seen.push(u64::from_be_bytes(key.try_into().unwrap()));
            Ok(())
        })
        .unwrap();
        let expected: Vec<u64> = (0..n / 2).collect();
        assert_eq!(seen, expected, "total order + dedup across spills");
        drop(tmp);
        assert_no_litter(&dir);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sorter_in_memory_path_matches_spilled_path() {
        let dir = test_dir("sorter-mem");
        let keys: Vec<[u8; 8]> = (0..500u64)
            .map(|i| (i.wrapping_mul(48_271) % 250).to_be_bytes())
            .collect();
        let collect = |budget_bytes: usize| -> Vec<Vec<u8>> {
            let tmp = TempDir::create(&dir).unwrap();
            let budget = Rc::new(MemBudget::new(budget_bytes));
            let mut s = ExternalSorter::new("t", &tmp, budget);
            for k in &keys {
                s.push(k, &k[4..]).unwrap();
            }
            let mut out = Vec::new();
            s.drain(true, |key, _| {
                out.push(key.to_vec());
                Ok(())
            })
            .unwrap();
            out
        };
        // 64 KiB floor forces... nothing here (tiny data), so compare the
        // in-memory path against a run-forced path via explicit spills.
        let tmp = TempDir::create(&dir).unwrap();
        let budget = Rc::new(MemBudget::new(usize::MAX >> 1));
        let mut s = ExternalSorter::new("t", &tmp, budget);
        for (i, k) in keys.iter().enumerate() {
            s.push(k, &k[4..]).unwrap();
            if i % 100 == 99 {
                s.spill().unwrap();
            }
        }
        let mut spilled = Vec::new();
        s.drain(true, |key, _| {
            spilled.push(key.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(collect(usize::MAX >> 1), spilled);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_merge_error_still_cleans_temp_files() {
        let dir = test_dir("sorter-err");
        {
            let tmp = TempDir::create(&dir).unwrap();
            let budget = Rc::new(MemBudget::new(1));
            let mut s = ExternalSorter::new("t", &tmp, budget);
            for i in 0..20_000u64 {
                s.push(&i.to_be_bytes(), b"x").unwrap();
            }
            let err = s
                .drain(false, |_, _| {
                    Err(io::Error::other("injected mid-merge failure"))
                })
                .unwrap_err();
            assert_eq!(err.to_string(), "injected mid-merge failure");
            // tmp dropped here, taking surviving runs with it.
        }
        assert_no_litter(&dir);
        fs::remove_dir_all(&dir).ok();
    }

    const SAMPLE: &str = "\
<http://x/Elvis> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Singer> .
<http://x/Singer> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/Person> .
<http://x/Person> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/Agent> .
<http://x/hasCapital> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://x/contains> .
<http://x/fr> <http://x/hasCapital> <http://x/paris> .
<http://x/Elvis> <http://x/bornIn> <http://x/Tupelo> .
<http://x/Elvis> <http://x/bornIn> <http://x/Tupelo> .
<http://x/Elvis> <http://x/name> \"Elvis Presley\" .
<http://x/Elvis> <http://x/label> \"der King\"@de .
<http://x/Elvis> <http://x/born> \"1935\"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/Carl> <http://x/bornIn> <http://x/Tupelo> .
<http://x/Carl> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Singer> .
";

    fn heap_bytes(name: &str, doc: &str) -> Vec<u8> {
        let triples = paris_rdf::ntriples::Parser::parse_all(doc).unwrap();
        let mut b = KbBuilder::new(name);
        b.add_triples(&triples);
        kb_to_bytes_v2(&b.build())
    }

    #[test]
    fn ingest_is_byte_identical_to_heap_path() {
        let dir = test_dir("identity");
        let out = dir.join("sample.snap");
        let opts = IngestOptions {
            name: "sample".to_owned(),
            mem_budget: 1, // 64 KiB floor → spill-heavy even on this input
            threads: 2,
            ..IngestOptions::default()
        };
        let report = ingest_reader(SAMPLE.as_bytes(), &out, &opts).unwrap();
        assert_eq!(report.triples, 12);
        assert_eq!(
            report.pairs, 7,
            "bornIn×2 deduped + Carl bornIn + hasCapital + contains copy + name/label/born"
        );
        let got = fs::read(&out).unwrap();
        assert_eq!(
            got,
            heap_bytes("sample", SAMPLE),
            "ingest must be bit-identical"
        );
        assert_no_litter(&dir);
        fs::remove_dir_all(&dir).ok();
    }

    /// With a collector configured, every pass A–K plus assembly records
    /// one span, with `rows` and per-pass spill deltas as attributes.
    #[test]
    fn ingest_records_one_span_per_pass() {
        use paris_obs::span::{AttrValue, SpanCollector, SpanContext};

        let dir = test_dir("spans");
        let out = dir.join("sample.snap");
        let collector = std::sync::Arc::new(SpanCollector::new(SpanContext::new_root()));
        let opts = IngestOptions {
            name: "sample".to_owned(),
            mem_budget: 1, // 64 KiB floor → spill-heavy even on this input
            threads: 1,
            spans: Some(std::sync::Arc::clone(&collector)),
            ..IngestOptions::default()
        };
        let report = ingest_reader(SAMPLE.as_bytes(), &out, &opts).unwrap();
        let spans = collector.snapshot();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        for expected in [
            "pass_a_parse",
            "pass_b_directory",
            "pass_c_ids",
            "pass_d_term_sorted",
            "pass_e_mentions",
            "pass_f_regroup",
            "pass_g_taxonomy",
            "pass_h_type_closure",
            "pass_i_members",
            "pass_j_pairs",
            "pass_k_adjacency",
            "assemble_snapshot",
        ] {
            assert_eq!(
                names.iter().filter(|n| **n == expected).count(),
                1,
                "{expected} in {names:?}"
            );
        }
        let attr = |name: &str, key: &str| {
            let span = spans.iter().find(|s| s.name == name).unwrap();
            span.attrs
                .iter()
                .find_map(|(k, v)| match v {
                    AttrValue::Int(n) if *k == key => Some(*n),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("{name} has no int attr {key}"))
        };
        assert_eq!(attr("pass_a_parse", "rows"), report.triples);
        assert_eq!(attr("pass_c_ids", "rows"), report.entities);
        assert_eq!(attr("pass_j_pairs", "rows"), report.pairs);
        assert_eq!(attr("assemble_snapshot", "bytes"), report.output_bytes);
        // The 64 KiB floor forces spills; they must show up in the spans.
        let spilled: u64 = spans
            .iter()
            .flat_map(|s| s.attrs.iter())
            .filter_map(|(k, v)| match v {
                AttrValue::Int(n) if *k == "spill_runs" => Some(*n),
                _ => None,
            })
            .sum();
        assert_eq!(spilled, report.spill_runs, "per-pass deltas sum to total");
        // All spans closed, parented on the collector root, same trace.
        let root = collector.root();
        for s in &spans {
            assert!(s.end_ns >= s.start_ns, "{}", s.name);
            assert_eq!(s.parent, Some(root.span), "{}", s.name);
            assert_eq!(s.trace, root.trace, "{}", s.name);
        }
        assert_no_litter(&dir);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_empty_input_matches_heap_path() {
        let dir = test_dir("empty");
        let out = dir.join("empty.snap");
        let opts = IngestOptions {
            name: "empty".to_owned(),
            ..IngestOptions::default()
        };
        ingest_reader(&b"# nothing here\n"[..], &out, &opts).unwrap();
        assert_eq!(
            fs::read(&out).unwrap(),
            heap_bytes("empty", "# nothing here\n")
        );
        assert_no_litter(&dir);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_error_cleans_up_and_names_the_line() {
        let dir = test_dir("parse-err");
        let out = dir.join("bad.snap");
        let doc = "<http://s> <http://p> <http://o> .\nnot a triple\n";
        let err = ingest_reader(doc.as_bytes(), &out, &IngestOptions::default()).unwrap_err();
        match err {
            IngestError::Rdf(RdfError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a syntax error, got {other:?}"),
        }
        assert!(!out.exists(), "no partial output may remain");
        assert_no_litter(&dir);
        fs::remove_dir_all(&dir).ok();
    }
}
