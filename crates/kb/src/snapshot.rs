//! Versioned binary snapshots of knowledge bases.
//!
//! The paper's implementation kept its ontologies in Berkeley DB so a run
//! could restart without re-ingesting the source files (§5.2). This is
//! the modern equivalent: a compact, versioned, little-endian binary
//! format that freezes an interned [`Kb`] — entity and literal tables,
//! per-relation fact indexes, the closed taxonomy, and the pre-computed
//! functionalities — so a serving process can come up in milliseconds
//! instead of re-parsing N-Triples and re-running the aligner.
//!
//! # File layout
//!
//! ```text
//! magic    [8]  b"PARISNAP"
//! version  u32  format version (currently 1)
//! kind     u8   1 = single KB, 2 = aligned pair
//! reserved [3]  zero
//! length   u64  payload byte count
//! checksum u64  FNV-1a 64 of the payload
//! payload  [length] kind-specific body, built from the primitives below
//! ```
//!
//! Every integer is little-endian; strings are a u64 byte length followed
//! by UTF-8; `f64`s are stored via `to_bits`. The payload of a `Kb`
//! snapshot is produced by [`encode_kb`]; the aligned-pair payload is
//! assembled by `paris-core` (it appends the alignment tables, which this
//! crate knows nothing about) from the same primitives.
//!
//! Readers validate the magic, version, length, and checksum before
//! touching the payload, and every decode is bounds-checked — a
//! truncated or bit-flipped file yields a [`SnapshotError`], never a
//! panic or a silently wrong KB.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use paris_rdf::term::{Iri, Literal, Term};

use crate::fxhash::FxHashMap;
use crate::ids::{EntityId, EntityKind, RelationId};
use crate::store::Kb;
use crate::wire;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"PARISNAP";

/// Format version of the decode-on-load snapshot framing in this module.
pub const FORMAT_VERSION: u32 = 1;

/// Every snapshot format version this build can read: v1 via the
/// decoders here, v2 via the zero-copy arena in [`crate::snapshot_v2`].
pub const SUPPORTED_SNAPSHOT_VERSIONS: [u32; 2] = [1, crate::snapshot_v2::FORMAT_VERSION_V2];

/// Format version of the binary delta framing (deltas share this
/// module's v1 framing with their own kind byte).
pub const DELTA_FORMAT_VERSION: u32 = FORMAT_VERSION;

/// What a snapshot file contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A single knowledge base.
    Kb,
    /// Two knowledge bases plus their computed alignment.
    AlignedPair,
    /// A [`KbDelta`](crate::delta::KbDelta): facts to add to / remove from
    /// one KB.
    Delta,
}

impl SnapshotKind {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            SnapshotKind::Kb => 1,
            SnapshotKind::AlignedPair => 2,
            SnapshotKind::Delta => 3,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Result<Self, SnapshotError> {
        match b {
            1 => Ok(SnapshotKind::Kb),
            2 => Ok(SnapshotKind::AlignedPair),
            3 => Ok(SnapshotKind::Delta),
            other => Err(SnapshotError::corrupt(format!(
                "unknown snapshot kind {other}"
            ))),
        }
    }

    /// Human-readable name, used in kind-mismatch errors.
    pub fn name(self) -> &'static str {
        match self {
            SnapshotKind::Kb => "single KB",
            SnapshotKind::AlignedPair => "aligned pair",
            SnapshotKind::Delta => "KB delta",
        }
    }
}

/// Everything that can go wrong reading or writing a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// Structural corruption: truncation, out-of-range ids, bad UTF-8…
    Corrupt(String),
}

impl SnapshotError {
    /// A [`SnapshotError::Corrupt`] with the given description — public so
    /// downstream crates encoding their own sections (e.g. `paris-core`'s
    /// alignment tables) can report structural problems uniformly.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        SnapshotError::Corrupt(msg.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a PARIS snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} for this reader \
                     (v1 is decoded on load, v2 is opened zero-copy via the arena)"
                )
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum mismatch (header {expected:#018x}, computed {actual:#018x})"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// 64-bit corruption-detection checksum of a byte slice.
///
/// An FNV-style mix over 8-byte little-endian words (the trailing partial
/// word is zero-padded, and the total length is folded in so padding
/// cannot collide with real zeros). Word-at-a-time keeps validation off
/// the critical path of snapshot loading — this is integrity checking
/// against truncation and bit rot, not cryptography.
pub fn checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xCBF2_9CE4_8422_2325u64 ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let v = wire::le_u64(w, 0);
        hash = (hash ^ v).wrapping_mul(PRIME).rotate_left(23);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        for (dst, &b) in last.iter_mut().zip(tail) {
            *dst = b;
        }
        hash = (hash ^ u64::from_le_bytes(last))
            .wrapping_mul(PRIME)
            .rotate_left(23);
    }
    hash
}

// ----------------------------------------------------------------------
// Encoding primitives
// ----------------------------------------------------------------------

/// An append-only payload buffer with little-endian primitives.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        PayloadWriter::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked little-endian payload reader.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::corrupt("unexpected end of payload"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| SnapshotError::corrupt("unexpected end of payload"))?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| SnapshotError::corrupt("unexpected end of payload"))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(wire::le_u32(self.take(4)?, 0))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(wire::le_u64(self.take(8)?, 0))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a collection length, rejecting values that cannot fit in the
    /// remaining payload (cheap guard against allocating on corruption).
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.get_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(SnapshotError::corrupt(format!(
                "length {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(wire::saturating_usize(n))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.get_len()?;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| SnapshotError::corrupt("invalid UTF-8 in string"))
    }
}

// ----------------------------------------------------------------------
// File framing
// ----------------------------------------------------------------------

const HEADER_LEN: usize = 8 + 4 + 1 + 3 + 8 + 8;

/// Builds the 32-byte v1 frame header for a payload (the single source
/// of the layout, shared by the streaming and atomic-file writers).
pub(crate) fn frame_header(kind: SnapshotKind, payload: &[u8]) -> Vec<u8> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.push(kind.to_byte());
    header.extend_from_slice(&[0u8; 3]);
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&checksum(payload).to_le_bytes());
    header
}

/// Frames a payload with the snapshot header and writes it to `w`.
pub fn write_payload(
    w: &mut impl Write,
    kind: SnapshotKind,
    payload: &[u8],
) -> Result<(), SnapshotError> {
    w.write_all(&frame_header(kind, payload))?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads and fully validates a snapshot: magic, version, length, checksum.
pub fn read_payload(r: &mut impl Read) -> Result<(SnapshotKind, Vec<u8>), SnapshotError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::corrupt("file shorter than the snapshot header")
        } else {
            SnapshotError::Io(e)
        }
    })?;
    if !header.starts_with(&MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let version = wire::le_u32(&header, 2);
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let kind_and_reserved = wire::le_u32(&header, 3).to_le_bytes();
    let [kind_byte, reserved @ ..] = kind_and_reserved;
    let kind = SnapshotKind::from_byte(kind_byte)?;
    // The reserved bytes are always written as zero; validating them
    // means *every* header byte is covered by some check, so any
    // single-byte corruption of a v1 file fails the load.
    if reserved != [0, 0, 0] {
        return Err(SnapshotError::corrupt("nonzero reserved header bytes"));
    }
    let length = wire::le_u64(&header, 2);
    let expected = wire::le_u64(&header, 3);

    // Read at most `length + 1` bytes: a file with trailing garbage (or a
    // lying header) errors out instead of being slurped into memory. The
    // allocation grows with the bytes actually read, so a huge declared
    // length on a short file cannot over-allocate either.
    let mut payload = Vec::new();
    r.take(length.saturating_add(1)).read_to_end(&mut payload)?;
    if (payload.len() as u64) > length {
        return Err(SnapshotError::corrupt(format!(
            "file continues beyond the declared payload length {length}"
        )));
    }
    if (payload.len() as u64) < length {
        return Err(SnapshotError::corrupt(format!(
            "payload is {} bytes, header declares {length}",
            payload.len()
        )));
    }
    let actual = checksum(&payload);
    if actual != expected {
        return Err(SnapshotError::ChecksumMismatch { expected, actual });
    }
    Ok((kind, payload))
}

/// Writes a file atomically (unique temp file + rename), from one or
/// more byte chunks. Shared by the v1 framing below and the v2 section
/// writer — both formats promise that readers never observe a
/// half-written snapshot, and that an mmap of the old file stays valid
/// (the rename replaces the directory entry, not the old inode).
pub fn write_bytes_atomic(path: impl AsRef<Path>, chunks: &[&[u8]]) -> Result<(), SnapshotError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    // Unique per process *and* per call, so concurrent writers targeting
    // the same directory (or even the same path) never share a temp file.
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let sequence = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path.file_name().unwrap_or_default().to_owned();
    tmp_name.push(format!(".tmp.{}.{sequence}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let write = || -> Result<(), SnapshotError> {
        let mut f = std::fs::File::create(&tmp)?;
        for chunk in chunks {
            f.write_all(chunk)?;
        }
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    };
    write().inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })
}

/// Writes a framed v1 snapshot file (atomically).
pub fn write_file(
    path: impl AsRef<Path>,
    kind: SnapshotKind,
    payload: &[u8],
) -> Result<(), SnapshotError> {
    write_bytes_atomic(path, &[&frame_header(kind, payload), payload])
}

/// Reads the magic and format version of a snapshot file without loading
/// it — how callers dispatch between the v1 decoder and the v2 arena.
pub fn peek_version(path: impl AsRef<Path>) -> Result<u32, SnapshotError> {
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 12];
    f.read_exact(&mut head).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::corrupt("file shorter than the snapshot magic")
        } else {
            SnapshotError::Io(e)
        }
    })?;
    peek_version_bytes(&head)
}

/// [`peek_version`] over bytes already in memory (the first 12 suffice) —
/// how the replication layer dispatches validation of a transferred image
/// without touching the filesystem.
pub fn peek_version_bytes(bytes: &[u8]) -> Result<u32, SnapshotError> {
    let Some(head) = bytes.get(..12) else {
        return Err(SnapshotError::corrupt(
            "file shorter than the snapshot magic",
        ));
    };
    if !head.starts_with(&MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    Ok(wire::le_u32(head, 2))
}

/// Reads and validates a framed snapshot file.
pub fn read_file(path: impl AsRef<Path>) -> Result<(SnapshotKind, Vec<u8>), SnapshotError> {
    let mut f = std::fs::File::open(path)?;
    read_payload(&mut f)
}

// ----------------------------------------------------------------------
// KB body
// ----------------------------------------------------------------------

const TERM_IRI: u8 = 0;
const TERM_PLAIN: u8 = 1;
const TERM_LANG: u8 = 2;
const TERM_TYPED: u8 = 3;

/// Appends one tagged [`Term`] to a payload (shared by the KB body and the
/// delta body, so the two formats stay bit-compatible).
#[inline]
pub fn put_term(w: &mut PayloadWriter, term: &Term) {
    match term {
        Term::Iri(iri) => {
            w.put_u8(TERM_IRI);
            w.put_str(iri.as_str());
        }
        Term::Literal(l) => match l.kind() {
            paris_rdf::term::LiteralKind::Plain => {
                w.put_u8(TERM_PLAIN);
                w.put_str(l.value());
            }
            paris_rdf::term::LiteralKind::LanguageTagged(lang) => {
                w.put_u8(TERM_LANG);
                w.put_str(l.value());
                w.put_str(lang);
            }
            paris_rdf::term::LiteralKind::Typed(dt) => {
                w.put_u8(TERM_TYPED);
                w.put_str(l.value());
                w.put_str(dt.as_str());
            }
        },
    }
}

/// Decodes one tagged [`Term`] written by [`put_term`].
#[inline]
pub fn get_term(r: &mut PayloadReader<'_>) -> Result<Term, SnapshotError> {
    Ok(match r.get_u8()? {
        TERM_IRI => Term::Iri(Iri::new(r.get_str()?)),
        TERM_PLAIN => Term::Literal(Literal::plain(r.get_str()?)),
        TERM_LANG => {
            let value = r.get_str()?;
            let lang = r.get_str()?;
            Term::Literal(Literal::lang_tagged(value, lang))
        }
        TERM_TYPED => {
            let value = r.get_str()?;
            let dt = r.get_str()?;
            Term::Literal(Literal::typed(value, Iri::new(dt)))
        }
        other => return Err(SnapshotError::corrupt(format!("unknown term tag {other}"))),
    })
}

/// Appends the full body of one [`Kb`] to a payload.
pub fn encode_kb(kb: &Kb, w: &mut PayloadWriter) {
    w.put_str(&kb.name);

    // Entity tables: terms with kind tags.
    w.put_u64(kb.terms.len() as u64);
    for (term, kind) in kb.terms.iter().zip(&kb.kinds) {
        put_term(w, term);
        w.put_u8(match kind {
            EntityKind::Instance => 0,
            EntityKind::Class => 1,
            EntityKind::Literal => 2,
        });
    }

    // Relations.
    w.put_u64(kb.relation_names.len() as u64);
    for iri in &kb.relation_names {
        w.put_str(iri.as_str());
    }

    // Fact indexes: per base relation, the sorted forward pairs.
    for list in &kb.pairs {
        w.put_u64(list.len() as u64);
        for &(x, y) in list {
            w.put_u32(x.0);
            w.put_u32(y.0);
        }
    }

    // Schema: classes and the closed membership / taxonomy maps.
    put_id_list(w, &kb.classes);
    put_id_map(w, &kb.class_members);
    put_id_map(w, &kb.types_of);
    put_id_map(w, &kb.superclasses);

    // Functionalities (one per directed relation).
    w.put_u64(kb.fun.len() as u64);
    for &f in &kb.fun {
        w.put_f64(f);
    }
}

/// Decodes a [`Kb`] body, rebuilding the derived indexes (term interner,
/// relation interner, both-direction adjacency).
pub fn decode_kb(r: &mut PayloadReader<'_>) -> Result<Kb, SnapshotError> {
    let name = r.get_str()?.to_owned();

    let num_entities = r.get_len()?;
    let mut terms = Vec::with_capacity(num_entities);
    let mut kinds = Vec::with_capacity(num_entities);
    for _ in 0..num_entities {
        let term = get_term(r)?;
        let kind = match r.get_u8()? {
            0 => EntityKind::Instance,
            1 => EntityKind::Class,
            2 => EntityKind::Literal,
            other => {
                return Err(SnapshotError::corrupt(format!(
                    "unknown entity kind {other}"
                )))
            }
        };
        terms.push(term);
        kinds.push(kind);
    }
    let mut term_index: FxHashMap<Term, EntityId> =
        FxHashMap::with_capacity_and_hasher(num_entities, Default::default());
    term_index.extend(
        terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), EntityId::from_index(i))),
    );

    let num_relations = r.get_len()?;
    let mut relation_names = Vec::with_capacity(num_relations);
    for _ in 0..num_relations {
        relation_names.push(Iri::new(r.get_str()?));
    }
    let relation_index: FxHashMap<Iri, u32> = relation_names
        .iter()
        .enumerate()
        .map(|(i, iri)| (iri.clone(), i as u32))
        .collect();

    let check_entity = |id: u32| -> Result<EntityId, SnapshotError> {
        if u64::from(id) < num_entities as u64 {
            Ok(EntityId(id))
        } else {
            Err(SnapshotError::corrupt(format!(
                "entity id {id} out of range ({num_entities})"
            )))
        }
    };

    let mut pairs: Vec<Vec<(EntityId, EntityId)>> = Vec::with_capacity(num_relations);
    for _ in 0..num_relations {
        let n = r.get_len()?;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            let x = check_entity(r.get_u32()?)?;
            let y = check_entity(r.get_u32()?)?;
            list.push((x, y));
        }
        pairs.push(list);
    }

    let classes = get_id_list(r, num_entities)?;
    let class_members = get_id_map(r, num_entities)?;
    let types_of = get_id_map(r, num_entities)?;
    let superclasses = get_id_map(r, num_entities)?;

    let num_fun = r.get_len()?;
    if num_fun != num_relations * 2 {
        return Err(SnapshotError::corrupt(format!(
            "{num_fun} functionalities for {num_relations} relations"
        )));
    }
    let mut fun = Vec::with_capacity(num_fun);
    for _ in 0..num_fun {
        fun.push(r.get_f64()?);
    }

    // Rebuild the both-direction adjacency from the pair lists. Exact
    // degrees are counted first so each entity's row is allocated once.
    // Entries are unique by construction (each relation's pair list is
    // deduplicated and contributes distinct relation ids), so only the
    // builder's sort is replayed — the loaded KB is field-identical to
    // the one that was saved.
    let mut degree = vec![0usize; num_entities];
    for list in &pairs {
        for &(x, y) in list {
            degree[x.index()] += 1; // audit:allow(no-panic-decode): id validated by check_entity
            degree[y.index()] += 1; // audit:allow(no-panic-decode): id validated by check_entity
        }
    }
    let mut adj: Vec<Vec<(RelationId, EntityId)>> =
        degree.into_iter().map(Vec::with_capacity).collect();
    for (base, list) in pairs.iter().enumerate() {
        let fwd = RelationId::forward(base);
        let inv = fwd.inverse();
        for &(x, y) in list {
            adj[x.index()].push((fwd, y)); // audit:allow(no-panic-decode): id validated by check_entity
            adj[y.index()].push((inv, x)); // audit:allow(no-panic-decode): id validated by check_entity
        }
    }
    for list in &mut adj {
        list.sort_unstable();
    }

    Ok(Kb {
        name,
        terms,
        kinds,
        term_index,
        relation_names,
        relation_index,
        adj,
        pairs,
        classes,
        class_members,
        types_of,
        superclasses,
        fun,
    })
}

fn put_id_list(w: &mut PayloadWriter, ids: &[EntityId]) {
    w.put_u64(ids.len() as u64);
    for id in ids {
        w.put_u32(id.0);
    }
}

fn get_id_list(
    r: &mut PayloadReader<'_>,
    num_entities: usize,
) -> Result<Vec<EntityId>, SnapshotError> {
    let n = r.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.get_u32()?;
        if u64::from(id) >= num_entities as u64 {
            return Err(SnapshotError::corrupt(format!(
                "entity id {id} out of range"
            )));
        }
        out.push(EntityId(id));
    }
    Ok(out)
}

fn put_id_map(w: &mut PayloadWriter, map: &FxHashMap<EntityId, Vec<EntityId>>) {
    // Deterministic on-disk order: sort entries by key.
    let mut entries: Vec<(EntityId, &Vec<EntityId>)> = map.iter().map(|(&k, v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    w.put_u64(entries.len() as u64);
    for (k, ids) in entries {
        w.put_u32(k.0);
        put_id_list(w, ids);
    }
}

fn get_id_map(
    r: &mut PayloadReader<'_>,
    num_entities: usize,
) -> Result<FxHashMap<EntityId, Vec<EntityId>>, SnapshotError> {
    let n = r.get_len()?;
    let mut map = FxHashMap::default();
    for _ in 0..n {
        let k = r.get_u32()?;
        if u64::from(k) >= num_entities as u64 {
            return Err(SnapshotError::corrupt(format!("map key {k} out of range")));
        }
        let v = get_id_list(r, num_entities)?;
        map.insert(EntityId(k), v);
    }
    Ok(map)
}

// ----------------------------------------------------------------------
// Single-KB convenience API
// ----------------------------------------------------------------------

/// Serializes one KB into a framed snapshot byte vector.
pub fn kb_to_bytes(kb: &Kb) -> Vec<u8> {
    let mut payload = PayloadWriter::new();
    encode_kb(kb, &mut payload);
    let mut out = frame_header(SnapshotKind::Kb, payload.bytes());
    out.extend_from_slice(payload.bytes());
    out
}

/// Writes a single-KB snapshot file.
pub fn save_kb(kb: &Kb, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let mut payload = PayloadWriter::new();
    encode_kb(kb, &mut payload);
    write_file(path, SnapshotKind::Kb, payload.bytes())
}

/// Loads a single-KB snapshot file, auto-detecting the format version:
/// v1 decodes the framed stream, v2 (as written by `save_kb_v2` or
/// `paris ingest`) validates the section image and materializes it.
pub fn load_kb(path: impl AsRef<Path>) -> Result<Kb, SnapshotError> {
    let path = path.as_ref();
    {
        use std::io::Read;
        let mut header = [0u8; 12];
        let mut f = std::fs::File::open(path)?;
        if f.read_exact(&mut header).is_ok()
            && header.starts_with(&MAGIC)
            && wire::le_u32(&header, 2) == crate::snapshot_v2::FORMAT_VERSION_V2
        {
            let snap = crate::snapshot_v2::MappedKbSnapshot::open(path)?;
            return Ok(snap.kb().to_kb());
        }
    }
    let (kind, payload) = read_file(path)?;
    if kind != SnapshotKind::Kb {
        return Err(SnapshotError::corrupt(format!(
            "expected a single-KB snapshot, found a {}",
            kind.name()
        )));
    }
    let mut r = PayloadReader::new(&payload);
    let kb = decode_kb(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapshotError::corrupt("trailing bytes after KB body"));
    }
    Ok(kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;

    fn sample_kb() -> Kb {
        let mut b = KbBuilder::new("sample");
        b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        b.add_literal_fact(
            "http://x/Elvis",
            "http://x/name",
            Literal::plain("Elvis Presley"),
        );
        b.add_literal_fact(
            "http://x/Elvis",
            "http://x/label",
            Literal::lang_tagged("Elvis", "en"),
        );
        b.add_literal_fact(
            "http://x/Elvis",
            "http://x/born",
            Literal::typed("1935", "http://www.w3.org/2001/XMLSchema#gYear"),
        );
        b.add_type("http://x/Elvis", "http://x/Singer");
        b.add_subclass("http://x/Singer", "http://x/Person");
        b.build()
    }

    #[test]
    fn kb_round_trips_through_bytes() {
        let kb = sample_kb();
        let bytes = kb_to_bytes(&kb);
        let (kind, payload) = read_payload(&mut &bytes[..]).unwrap();
        assert_eq!(kind, SnapshotKind::Kb);
        let loaded = decode_kb(&mut PayloadReader::new(&payload)).unwrap();

        assert_eq!(loaded.name(), kb.name());
        assert_eq!(loaded.num_entities(), kb.num_entities());
        assert_eq!(loaded.num_facts(), kb.num_facts());
        assert_eq!(loaded.num_classes(), kb.num_classes());
        assert_eq!(
            crate::stats::KbStats::of(&loaded),
            crate::stats::KbStats::of(&kb)
        );

        let elvis = loaded.entity_by_iri("http://x/Elvis").unwrap();
        let born_in = loaded.relation_by_iri("http://x/bornIn").unwrap();
        assert_eq!(
            loaded.functionality(born_in),
            kb.functionality(kb.relation_by_iri("http://x/bornIn").unwrap())
        );
        assert_eq!(
            loaded.facts(elvis).len(),
            kb.facts(kb.entity_by_iri("http://x/Elvis").unwrap()).len()
        );
        assert_eq!(
            loaded.types_of(elvis).len(),
            2,
            "Singer + Person via closure"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let kb = sample_kb();
        let mut bytes = kb_to_bytes(&kb);
        bytes[0] = b'X';
        assert!(matches!(
            read_payload(&mut &bytes[..]),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let kb = sample_kb();
        let mut bytes = kb_to_bytes(&kb);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_payload(&mut &bytes[..]),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let kb = sample_kb();
        let mut bytes = kb_to_bytes(&kb);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            read_payload(&mut &bytes[..]),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let kb = sample_kb();
        let bytes = kb_to_bytes(&kb);
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
            let err = read_payload(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Corrupt(_) | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn save_and_load_file() {
        let kb = sample_kb();
        let path = std::env::temp_dir().join("paris_snapshot_unit_test.snap");
        save_kb(&kb, &path).unwrap();
        let loaded = load_kb(&path).unwrap();
        assert_eq!(
            crate::stats::KbStats::of(&loaded),
            crate::stats::KbStats::of(&kb)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_detects_single_bit_flips_and_length_changes() {
        assert_eq!(checksum(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
        // Zero-padding of the tail must not collide with explicit zeros.
        assert_ne!(checksum(b"abc"), checksum(b"abc\0"));
        assert_ne!(checksum(&[0u8; 7]), checksum(&[0u8; 8]));
        // A flip in any byte of a longer buffer changes the sum.
        let base: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let reference = checksum(&base);
        for i in [0, 7, 8, 499, 999] {
            let mut corrupted = base.clone();
            corrupted[i] ^= 0x10;
            assert_ne!(checksum(&corrupted), reference, "flip at {i}");
        }
    }
}
