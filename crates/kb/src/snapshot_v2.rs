//! Snapshot format **v2**: a zero-copy, section-table layout read in
//! place from an [`Arena`].
//!
//! The v1 format ([`crate::snapshot`]) is a stream of length-prefixed
//! records that must be decoded — every load re-interns every term and
//! re-allocates every index, so startup cost and resident memory scale
//! with the image. v2 instead lays the same data out as fixed-width,
//! 8-byte-aligned, little-endian *sections* that the accessor views
//! ([`KbView`]) read directly out of the file bytes. Opening a v2
//! snapshot validates the section table, per-section checksums, and the
//! structural invariants (array sizes, offset monotonicity, id ranges)
//! **once**, and never decodes the body: with an mmap-backed arena the
//! open is O(validation scan) with zero allocation, and the OS page
//! cache — not this process — owns the cold data.
//!
//! # File layout
//!
//! ```text
//! magic          [8]  b"PARISNAP"
//! version        u32  2
//! kind           u8   1 = single KB, 2 = aligned pair
//! reserved       [3]  zero
//! section_count  u32
//! reserved       u32  zero
//! section table  [section_count × 32]:
//!     id        u32   section identifier (see the constants below)
//!     reserved  u32   zero
//!     offset    u64   absolute file offset (8-aligned, contiguous)
//!     length    u64   exact byte length (padding to 8 follows, zeroed)
//!     checksum  u64   crate::snapshot::checksum of the section bytes
//! sections       …    contiguous, each padded to the next 8-byte boundary
//! ```
//!
//! Sections are strictly contiguous (each offset is the padded end of the
//! previous section, the first starts right after the table, the last
//! pads to end-of-file) and the padding bytes must be zero — so **every
//! byte of the file** is covered by either a validated header field or a
//! section checksum, and a single flipped bit anywhere fails the open.
//!
//! ## KB sections
//!
//! One knowledge base occupies the ids `base + k` (base `0x100` for the
//! first KB of a file, `0x200` for the second):
//!
//! | id | content |
//! |---|---|
//! | META | name, entity/relation/class counts (tiny, decoded at open) |
//! | TERM_BLOB / TERM_OFFSETS | tagged term records + `u64 × (n+1)` offsets |
//! | TERM_KINDS | `u8 × n` entity kinds |
//! | TERM_SORTED | `u32 × n` entity ids sorted by record bytes (lookup index) |
//! | REL_BLOB / REL_OFFSETS | relation IRI bytes + offsets |
//! | PAIR_OFFSETS / PAIRS | per-relation pair counts + `(u32, u32)` pairs |
//! | ADJ_OFFSETS / ADJ | per-entity adjacency counts + `(u32 rel, u32 entity)` |
//! | CLASSES | `u32 × #classes` |
//! | *_KEYS / *_OFFSETS / *_VALUES | the three closed schema maps |
//! | FUN | `f64 × 2·#relations` functionalities |
//!
//! Unlike v1, the both-direction adjacency is **stored**, not rebuilt:
//! disk is cheap next to the per-load sort it replaces.
//!
//! # Trust model
//!
//! Validation makes a *corrupted* file (bit rot, truncation, torn write)
//! fail cleanly at open. A *maliciously crafted* file with internally
//! consistent checksums can still lie about its contents — views will
//! then return wrong answers, but never panic, read out of bounds, or
//! over-allocate: every id is range-checked at open and every string is
//! decoded lossily. Snapshots remain operator-provided inputs, same as
//! v1.

use std::ops::Range;
use std::path::Path;

use paris_rdf::term::{Iri, Literal, LiteralKind, Term};

use crate::arena::Arena;
use crate::fxhash::FxHashMap;
use crate::ids::{EntityId, EntityKind, RelationId};
use crate::snapshot::{
    write_bytes_atomic, PayloadReader, PayloadWriter, SnapshotError, SnapshotKind, MAGIC,
};
use crate::stats::KbStats;
use crate::store::Kb;
use crate::wire;

/// The v2 format version number stored in the header.
pub const FORMAT_VERSION_V2: u32 = 2;

pub(crate) const HEADER_LEN: usize = 24;
pub(crate) const SECTION_ENTRY_LEN: usize = 32;
/// Hard cap on the section count (a 40-section file is the current
/// maximum; this guards the table allocation against corrupt headers).
const MAX_SECTIONS: usize = 4096;

/// Section-id base for the first (or only) KB of a file.
pub const KB1_BASE: u32 = 0x100;
/// Section-id base for the second KB of an aligned-pair file.
pub const KB2_BASE: u32 = 0x200;
/// Section-id base for the alignment tables of an aligned-pair file.
pub const ALIGN_BASE: u32 = 0x300;

pub(crate) const KB_META: u32 = 0;
pub(crate) const KB_TERM_BLOB: u32 = 1;
pub(crate) const KB_TERM_OFFSETS: u32 = 2;
pub(crate) const KB_TERM_KINDS: u32 = 3;
pub(crate) const KB_TERM_SORTED: u32 = 4;
pub(crate) const KB_REL_BLOB: u32 = 5;
pub(crate) const KB_REL_OFFSETS: u32 = 6;
pub(crate) const KB_PAIR_OFFSETS: u32 = 7;
pub(crate) const KB_PAIRS: u32 = 8;
pub(crate) const KB_ADJ_OFFSETS: u32 = 9;
pub(crate) const KB_ADJ: u32 = 10;
pub(crate) const KB_CLASSES: u32 = 11;
pub(crate) const KB_MEMBERS: u32 = 12; // +0 keys, +1 offsets, +2 values
pub(crate) const KB_TYPES: u32 = 15;
pub(crate) const KB_SUPER: u32 = 18;
pub(crate) const KB_FUN: u32 = 21;

/// 64-bit section checksum: four independent FNV-style multiply lanes
/// over 32-byte blocks, folded together at the end.
///
/// The v1 checksum ([`crate::snapshot::checksum`]) is one serial
/// xor-multiply chain — fine when hidden behind a full decode, but it
/// *is* the open cost of a v2 snapshot, so this variant breaks the
/// dependency chain into four lanes the CPU runs in parallel (~4× the
/// throughput). Detection is as strong for the corruption this guards
/// against: each lane step is bijective (odd multiplier) and the final
/// fold is injective per lane, so any change confined to one 8-byte word
/// — every single-byte flip — provably changes the sum; the length is
/// folded into the seeds so truncation to a word boundary changes it
/// too. Not cryptography, same as v1.
pub fn checksum_v2(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    const SEEDS: [u64; 4] = [
        0xCBF2_9CE4_8422_2325,
        0x9E37_79B9_7F4A_7C15,
        0xC2B2_AE3D_27D4_EB4F,
        0x1656_67B1_9E37_79F9,
    ];
    let len_mix = (bytes.len() as u64).wrapping_mul(PRIME);
    let mut lanes = SEEDS.map(|s| s ^ len_mix);
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane = (*lane ^ wire::le_u64(word, 0)).wrapping_mul(PRIME);
        }
    }
    // The remainder is < 32 bytes: at most four words, the last possibly
    // partial — `wire::le_u64` zero-pads it exactly like the old explicit
    // tail buffer, so the sum is unchanged.
    for (word, lane) in blocks.remainder().chunks(8).zip(lanes.iter_mut()) {
        *lane = (*lane ^ wire::le_u64(word, 0)).wrapping_mul(PRIME);
    }
    fold_lanes(lanes)
}

/// Folds the four checksum lanes into one word (shared tail of
/// [`checksum_v2`] and [`checksum_v2_stream`]).
fn fold_lanes(lanes: [u64; 4]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut out = 0u64;
    for (i, &lane) in lanes.iter().enumerate() {
        if i == 0 {
            out = lane;
        } else {
            out = (out ^ lane).wrapping_mul(PRIME).rotate_left(23);
        }
    }
    out
}

/// [`checksum_v2`] of exactly `len` bytes pulled from a reader in
/// 32 KiB chunks — bit-identical to the in-memory variant, computed
/// without ever buffering the input whole. This is how the serving
/// layer checksums snapshot files for the replication manifest: through
/// the same open handle it later streams, with no heap copy of a
/// possibly multi-GiB file. Errors if the reader cannot yield `len`
/// bytes (e.g. the file changed size mid-read).
pub fn checksum_v2_stream(r: &mut impl std::io::Read, len: u64) -> std::io::Result<u64> {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    const SEEDS: [u64; 4] = [
        0xCBF2_9CE4_8422_2325,
        0x9E37_79B9_7F4A_7C15,
        0xC2B2_AE3D_27D4_EB4F,
        0x1656_67B1_9E37_79F9,
    ];
    let len_mix = len.wrapping_mul(PRIME);
    let mut lanes = SEEDS.map(|s| s ^ len_mix);
    // The buffer length is a multiple of 32, so a 32-byte block never
    // straddles two reads: only the final read can leave a remainder,
    // which is exactly the remainder checksum_v2 sees.
    let mut buf = [0u8; 32 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let want = buf
            .len()
            .min(usize::try_from(remaining).unwrap_or(buf.len()));
        let chunk = buf.get_mut(..want).unwrap_or_default();
        r.read_exact(chunk)?;
        remaining -= want as u64;
        let mut blocks = chunk.chunks_exact(32);
        for block in &mut blocks {
            for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
                *lane = (*lane ^ wire::le_u64(word, 0)).wrapping_mul(PRIME);
            }
        }
        let rest = blocks.remainder();
        if !rest.is_empty() {
            debug_assert_eq!(remaining, 0, "only the final read may be partial");
            for (word, lane) in rest.chunks(8).zip(lanes.iter_mut()) {
                *lane = (*lane ^ wire::le_u64(word, 0)).wrapping_mul(PRIME);
            }
        }
    }
    let out = fold_lanes(lanes);
    Ok(out)
}

// ----------------------------------------------------------------------
// Little-endian array helpers (shared with paris-core's alignment views)
// ----------------------------------------------------------------------

pub use crate::wire::{le_f64, le_u32, le_u64};

/// Validates that a section holds exactly `expected` bytes.
pub fn expect_len(buf: &[u8], expected: usize, what: &str) -> Result<(), SnapshotError> {
    if buf.len() != expected {
        return Err(SnapshotError::corrupt(format!(
            "section {what} is {} bytes, expected {expected}",
            buf.len()
        )));
    }
    Ok(())
}

/// Validates a `u64 × (count + 1)` offsets array: monotonically
/// non-decreasing, starting at 0, ending exactly at `total`.
///
/// The monotonic scan is a branchless fold (this runs on the open path
/// over arrays with one entry per entity); the error message re-scan
/// happens only on failure.
pub fn check_offsets(
    buf: &[u8],
    count: usize,
    total: u64,
    what: &str,
) -> Result<(), SnapshotError> {
    expect_len(buf, 8 * (count + 1), what)?;
    let mut prev = 0u64;
    let mut monotonic = true;
    for word in buf.chunks_exact(8) {
        let v = wire::le_u64(word, 0);
        monotonic &= v >= prev;
        prev = v;
    }
    if !monotonic || le_u64(buf, 0) != 0 {
        let at = (1..=count)
            .find(|&i| le_u64(buf, i) < le_u64(buf, i - 1))
            .unwrap_or(0);
        return Err(SnapshotError::corrupt(format!(
            "section {what} offsets are not monotonic at {at}"
        )));
    }
    if prev != total {
        return Err(SnapshotError::corrupt(format!(
            "section {what} ends at {prev}, expected {total}"
        )));
    }
    Ok(())
}

/// Validates that every `u32` of a section is `< bound`.
///
/// Runs as a branch-free max-fold (which the compiler vectorizes — this
/// is on the open path, over the largest sections of the file); the slow
/// index-reporting scan happens only on the failure path.
pub fn check_ids(buf: &[u8], bound: u32, what: &str) -> Result<(), SnapshotError> {
    if buf.len() % 4 != 0 {
        return Err(SnapshotError::corrupt(format!(
            "section {what} is not a u32 array"
        )));
    }
    if buf.is_empty() {
        return Ok(());
    }
    let max = buf
        .chunks_exact(4)
        .map(|c| wire::le_u32(c, 0))
        .fold(0u32, u32::max);
    if max >= bound {
        let at = (0..buf.len() / 4)
            .find(|&i| le_u32(buf, i) >= bound)
            .unwrap_or(0);
        return Err(SnapshotError::corrupt(format!(
            "section {what}: id {} at {at} out of range ({bound})",
            le_u32(buf, at)
        )));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Writing
// ----------------------------------------------------------------------

/// Assembles a v2 snapshot: sections are appended in file order, then
/// [`finish`](SectionWriter::finish) frames them with the header and the
/// checksummed section table.
#[derive(Default)]
pub struct SectionWriter {
    data: Vec<u8>,
    table: Vec<(u32, usize, usize, u64)>,
}

impl SectionWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SectionWriter::default()
    }

    /// Appends one section (checksummed, then zero-padded to 8 bytes).
    pub fn add(&mut self, id: u32, bytes: &[u8]) {
        let offset = self.data.len();
        self.table
            .push((id, offset, bytes.len(), checksum_v2(bytes)));
        self.data.extend_from_slice(bytes);
        while self.data.len() % 8 != 0 {
            self.data.push(0);
        }
    }

    /// Frames the accumulated sections into a complete v2 file image.
    pub fn finish(self, kind: SnapshotKind) -> Vec<u8> {
        let data_start = HEADER_LEN + self.table.len() * SECTION_ENTRY_LEN;
        let mut out = Vec::with_capacity(data_start + self.data.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
        out.push(kind.to_byte());
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&(self.table.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        for &(id, offset, len, sum) in &self.table {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&((data_start + offset) as u64).to_le_bytes());
            out.extend_from_slice(&(len as u64).to_le_bytes());
            out.extend_from_slice(&sum.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Frames the sections and writes the file atomically.
    pub fn write_file(
        self,
        kind: SnapshotKind,
        path: impl AsRef<Path>,
    ) -> Result<(), SnapshotError> {
        let bytes = self.finish(kind);
        write_bytes_atomic(path, &[&bytes])
    }
}

/// Files at or above this size verify section checksums (and, for
/// pairs, KB layouts) on multiple threads — validation is the entire
/// open cost of a v2 snapshot, and it parallelizes embarrassingly.
pub(crate) const PARALLEL_VALIDATE_THRESHOLD: usize = 1 << 20;

/// How many validation threads to use for `total_bytes` of work.
pub(crate) fn validation_threads(total_bytes: usize) -> usize {
    if total_bytes < PARALLEL_VALIDATE_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
}

/// One checksum work item: a section's byte range and its stored sum.
type ChecksumJob = (Range<usize>, u64);

/// Verifies every section checksum, fanning out across threads when the
/// file is large enough to pay for the spawns. Sections are partitioned
/// greedily by byte count so the threads finish together.
fn verify_checksums(buf: &[u8], jobs: &[ChecksumJob]) -> Result<(), SnapshotError> {
    let check = |(range, stored): &ChecksumJob| -> Result<(), SnapshotError> {
        let actual = checksum_v2(buf.get(range.clone()).unwrap_or_default());
        if actual != *stored {
            return Err(SnapshotError::ChecksumMismatch {
                expected: *stored,
                actual,
            });
        }
        Ok(())
    };
    let total: usize = jobs.iter().map(|(r, _)| r.len()).sum();
    let threads = validation_threads(total).max(1);
    if threads <= 1 {
        return jobs.iter().try_for_each(check);
    }
    // Greedy balance: biggest section first into the lightest bucket.
    let mut order: Vec<&ChecksumJob> = jobs.iter().collect();
    order.sort_by_key(|(r, _)| std::cmp::Reverse(r.len()));
    let mut buckets: Vec<(usize, Vec<&ChecksumJob>)> = vec![(0, Vec::new()); threads];
    for job in order {
        // `threads` is clamped to ≥1 above, so a lightest bucket exists;
        // the `if let` keeps this provably panic-free anyway.
        if let Some(lightest) = buckets.iter_mut().min_by_key(|(bytes, _)| *bytes) {
            lightest.0 += job.0.len();
            lightest.1.push(job);
        }
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|(_, bucket)| scope.spawn(move || bucket.iter().try_for_each(|j| check(j))))
            .collect();
        handles.into_iter().try_for_each(|h| match h.join() {
            Ok(result) => result,
            Err(_) => Err(SnapshotError::corrupt("checksum worker panicked")),
        })
    })
}

// ----------------------------------------------------------------------
// The validated arena
// ----------------------------------------------------------------------

/// A v2 snapshot file held in an [`Arena`], with its section table parsed
/// and every section bounds- and checksum-validated exactly once.
pub struct SnapshotArena {
    arena: Arena,
    kind: SnapshotKind,
    /// `(id, byte range)`, sorted by id.
    sections: Vec<(u32, Range<usize>)>,
    /// `(byte range, stored checksum)` per section, in file order — kept
    /// so deferred verification can run after (or concurrent with)
    /// structural layout validation.
    checksum_jobs: Vec<ChecksumJob>,
}

impl SnapshotArena {
    /// Opens and fully validates a v2 snapshot file (mmap-backed on
    /// Unix): section-table structure *and* per-section checksums.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let arena = SnapshotArena::validate(Arena::open(path)?)?;
        arena.verify_checksums()?;
        Ok(arena)
    }

    /// Fully validates an in-memory v2 image.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        let arena = SnapshotArena::validate(Arena::from_vec(bytes))?;
        arena.verify_checksums()?;
        Ok(arena)
    }

    /// Opens a v2 snapshot validating the section-table structure only —
    /// the caller **must** still call
    /// [`verify_checksums`](Self::verify_checksums) before trusting the
    /// contents (the pair-open path runs it concurrently with layout
    /// validation, which is itself safe on unverified bytes: every read
    /// is bounds-checked and the worst outcome is a `Corrupt` error).
    pub fn open_deferred(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        SnapshotArena::validate(Arena::open(path)?)
    }

    /// In-memory counterpart of [`open_deferred`](Self::open_deferred).
    pub fn from_bytes_deferred(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        SnapshotArena::validate(Arena::from_vec(bytes))
    }

    /// Verifies every section checksum (in parallel for large files).
    pub fn verify_checksums(&self) -> Result<(), SnapshotError> {
        verify_checksums(self.arena.bytes(), &self.checksum_jobs)
    }

    /// Verifies one of `parts` deterministic slices of the section
    /// checksums (sections are dealt round-robin by descending size, so
    /// the slices are byte-balanced). This is how the aligned-pair open
    /// fans verification out across threads it already runs — one flat
    /// scope instead of nested spawns. All `parts` slices together cover
    /// exactly every section.
    pub fn verify_checksums_slice(&self, part: usize, parts: usize) -> Result<(), SnapshotError> {
        let buf = self.arena.bytes();
        let mut order: Vec<&ChecksumJob> = self.checksum_jobs.iter().collect();
        order.sort_by_key(|(range, _)| std::cmp::Reverse(range.len()));
        for (range, stored) in order.into_iter().skip(part).step_by(parts.max(1)) {
            let actual = checksum_v2(buf.get(range.clone()).unwrap_or_default());
            if actual != *stored {
                return Err(SnapshotError::ChecksumMismatch {
                    expected: *stored,
                    actual,
                });
            }
        }
        Ok(())
    }

    fn validate(arena: Arena) -> Result<Self, SnapshotError> {
        let buf = arena.bytes();
        if buf.len() < HEADER_LEN {
            return Err(SnapshotError::corrupt("file shorter than the v2 header"));
        }
        if !buf.starts_with(&MAGIC) {
            return Err(SnapshotError::BadMagic);
        }
        let version = wire::le_u32(buf, 2);
        if version != FORMAT_VERSION_V2 {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let [kind_byte, reserved @ ..] = wire::le_u32(buf, 3).to_le_bytes();
        let kind = SnapshotKind::from_byte(kind_byte)?;
        if kind == SnapshotKind::Delta {
            return Err(SnapshotError::corrupt("deltas have no v2 representation"));
        }
        if reserved != [0, 0, 0] || wire::le_u32(buf, 5) != 0 {
            return Err(SnapshotError::corrupt("nonzero reserved header bytes"));
        }
        let count = wire::saturating_usize(u64::from(wire::le_u32(buf, 4)));
        if count > MAX_SECTIONS {
            return Err(SnapshotError::corrupt(format!(
                "section count {count} exceeds the maximum {MAX_SECTIONS}"
            )));
        }
        let data_start = HEADER_LEN + count * SECTION_ENTRY_LEN;
        if buf.len() < data_start {
            return Err(SnapshotError::corrupt(
                "file shorter than the section table",
            ));
        }

        // Sections must tile the rest of the file exactly: contiguous,
        // 8-padded with zero bytes, nothing before, between, or after.
        let mut expected_offset = data_start;
        let mut sections = Vec::with_capacity(count);
        let mut checksum_jobs: Vec<ChecksumJob> = Vec::with_capacity(count);
        for i in 0..count {
            let entry: [u8; SECTION_ENTRY_LEN] =
                wire::array_at(buf, HEADER_LEN + i * SECTION_ENTRY_LEN)
                    .ok_or_else(|| SnapshotError::corrupt("file shorter than the section table"))?;
            let id = wire::le_u32(&entry, 0);
            if wire::le_u32(&entry, 1) != 0 {
                return Err(SnapshotError::corrupt(format!(
                    "nonzero reserved bytes in section entry {i}"
                )));
            }
            let offset = wire::le_u64(&entry, 1);
            let length = wire::le_u64(&entry, 2);
            let stored_sum = wire::le_u64(&entry, 3);
            let offset = usize::try_from(offset)
                .map_err(|_| SnapshotError::corrupt("section offset overflows"))?;
            let length = usize::try_from(length)
                .map_err(|_| SnapshotError::corrupt("section length overflows"))?;
            if offset != expected_offset {
                return Err(SnapshotError::corrupt(format!(
                    "section {i} at offset {offset}, expected {expected_offset} (not contiguous)"
                )));
            }
            let end = offset
                .checked_add(length)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| {
                    SnapshotError::corrupt(format!("section {i} extends past end of file"))
                })?;
            let padded_end = end
                .checked_add(7)
                .map(|e| e & !7usize)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| {
                    SnapshotError::corrupt(format!("section {i} padding extends past end of file"))
                })?;
            if buf
                .get(end..padded_end)
                .unwrap_or_default()
                .iter()
                .any(|&b| b != 0)
            {
                return Err(SnapshotError::corrupt(format!(
                    "nonzero padding after section {i}"
                )));
            }
            checksum_jobs.push((offset..end, stored_sum));
            sections.push((id, offset..end));
            expected_offset = padded_end;
        }
        if expected_offset != buf.len() {
            return Err(SnapshotError::corrupt(
                "file continues beyond the last section",
            ));
        }
        sections.sort_by_key(|&(id, _)| id);
        if sections
            .windows(2)
            .any(|w| matches!(w, [a, b] if a.0 == b.0))
        {
            return Err(SnapshotError::corrupt("duplicate section id"));
        }
        Ok(SnapshotArena {
            arena,
            kind,
            sections,
            checksum_jobs,
        })
    }

    /// What this snapshot contains.
    pub fn kind(&self) -> SnapshotKind {
        self.kind
    }

    /// The raw file bytes.
    pub fn bytes(&self) -> &[u8] {
        self.arena.bytes()
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.arena.bytes().len()
    }

    /// True when the arena is an OS memory mapping (resident pages belong
    /// to the page cache, not this process's heap).
    pub fn is_mapped(&self) -> bool {
        self.arena.is_mapped()
    }

    /// Byte range of a section, if present.
    pub fn section_range(&self, id: u32) -> Option<Range<usize>> {
        self.sections
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .and_then(|i| self.sections.get(i))
            .map(|(_, r)| r.clone())
    }

    /// Section contents, if present.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.section_range(id)
            .map(|r| wire::slice(self.arena.bytes(), r))
    }

    /// Byte range of a required section.
    pub fn required(&self, id: u32, what: &str) -> Result<Range<usize>, SnapshotError> {
        self.section_range(id)
            .ok_or_else(|| SnapshotError::corrupt(format!("missing section {what} ({id:#x})")))
    }
}

impl std::fmt::Debug for SnapshotArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotArena")
            .field("kind", &self.kind)
            .field("bytes", &self.file_len())
            .field("sections", &self.sections.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

// ----------------------------------------------------------------------
// Term record codec
// ----------------------------------------------------------------------

pub(crate) const TAG_IRI: u8 = 0;
pub(crate) const TAG_PLAIN: u8 = 1;
pub(crate) const TAG_LANG: u8 = 2;
pub(crate) const TAG_TYPED: u8 = 3;

/// Appends one term record (tag byte + payload) to `out`. Records are
/// delimited externally by the TERM_OFFSETS array; the encoding is
/// injective, so comparing record bytes compares terms.
pub fn encode_term_record(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            out.extend_from_slice(iri.as_str().as_bytes());
        }
        Term::Literal(l) => match l.kind() {
            LiteralKind::Plain => {
                out.push(TAG_PLAIN);
                out.extend_from_slice(l.value().as_bytes());
            }
            LiteralKind::LanguageTagged(lang) => {
                out.push(TAG_LANG);
                // audit:allow(no-panic-decode): encode side — in-memory literals are far below 4 GiB
                let len = u32::try_from(l.value().len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(l.value().as_bytes());
                out.extend_from_slice(lang.as_bytes());
            }
            LiteralKind::Typed(dt) => {
                out.push(TAG_TYPED);
                // audit:allow(no-panic-decode): encode side — in-memory literals are far below 4 GiB
                let len = u32::try_from(l.value().len()).unwrap_or(u32::MAX);
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(l.value().as_bytes());
                out.extend_from_slice(dt.as_str().as_bytes());
            }
        },
    }
}

/// Decodes one term record **defensively**: any byte sequence decodes to
/// *some* term without panicking. For records this crate wrote, the
/// decode is exact; a crafted record (checksums rule out accidental
/// corruption) degrades to a lossy plain literal. Keeping the decoder
/// total is what lets the open path skip a per-record validation scan —
/// the only structural facts accessors rely on are the offset-array
/// invariants, which *are* validated.
fn decode_term_record(rec: &[u8]) -> Term {
    let lossy = |b: &[u8]| String::from_utf8_lossy(b).into_owned();
    match rec.split_first() {
        Some((&TAG_IRI, rest)) => Term::Iri(Iri::new(lossy(rest))),
        Some((&TAG_PLAIN, rest)) => Term::Literal(Literal::plain(lossy(rest))),
        Some((&tag, rest)) if (tag == TAG_LANG || tag == TAG_TYPED) && rest.len() >= 4 => {
            let payload = rest.get(4..).unwrap_or_default();
            let vl = wire::saturating_usize(u64::from(le_u32(rest, 0))).min(payload.len());
            let (value_bytes, qualifier) = payload.split_at_checked(vl).unwrap_or((payload, &[]));
            let value = lossy(value_bytes);
            if tag == TAG_LANG {
                Term::Literal(Literal::lang_tagged(value, lossy(qualifier)))
            } else {
                Term::Literal(Literal::typed(value, Iri::new(lossy(qualifier))))
            }
        }
        // Unknown tag / truncated qualifier record / empty record:
        // degrade to a lossy literal of the raw bytes.
        _ => Term::Literal(Literal::plain(lossy(rec))),
    }
}

// ----------------------------------------------------------------------
// KB encoding
// ----------------------------------------------------------------------

/// Appends the full section set of one [`Kb`] under the given id base.
pub fn encode_kb_sections(kb: &Kb, base: u32, w: &mut SectionWriter) {
    let n = kb.terms.len();
    let nrel = kb.relation_names.len();

    let mut meta = PayloadWriter::new();
    meta.put_str(&kb.name);
    meta.put_u64(n as u64);
    meta.put_u64(nrel as u64);
    meta.put_u64(kb.classes.len() as u64);
    w.add(base + KB_META, meta.bytes());

    // Terms: blob + offsets + kinds + byte-sorted lookup permutation.
    let mut blob = Vec::new();
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0usize);
    for term in &kb.terms {
        encode_term_record(&mut blob, term);
        bounds.push(blob.len());
    }
    let mut offsets = PayloadWriter::new();
    for &b in &bounds {
        offsets.put_u64(b as u64);
    }
    w.add(base + KB_TERM_BLOB, &blob);
    w.add(base + KB_TERM_OFFSETS, offsets.bytes());

    let kinds: Vec<u8> = kb
        .kinds
        .iter()
        .map(|k| match k {
            EntityKind::Instance => 0u8,
            EntityKind::Class => 1,
            EntityKind::Literal => 2,
        })
        .collect();
    w.add(base + KB_TERM_KINDS, &kinds);

    let mut sorted: Vec<u32> = (0..n as u32).collect();
    let record = |i: u32| {
        let i = wire::saturating_usize(u64::from(i));
        let start = bounds.get(i).copied().unwrap_or(0);
        let end = bounds.get(i.wrapping_add(1)).copied().unwrap_or(start);
        blob.get(start..end).unwrap_or_default()
    };
    sorted.sort_unstable_by(|&a, &b| record(a).cmp(record(b)));
    let mut sorted_bytes = PayloadWriter::new();
    for id in sorted {
        sorted_bytes.put_u32(id);
    }
    w.add(base + KB_TERM_SORTED, sorted_bytes.bytes());

    // Relations.
    let mut rel_blob = Vec::new();
    let mut rel_offsets = PayloadWriter::new();
    rel_offsets.put_u64(0);
    for iri in &kb.relation_names {
        rel_blob.extend_from_slice(iri.as_str().as_bytes());
        rel_offsets.put_u64(rel_blob.len() as u64);
    }
    w.add(base + KB_REL_BLOB, &rel_blob);
    w.add(base + KB_REL_OFFSETS, rel_offsets.bytes());

    // Per-relation pair lists.
    let mut pair_offsets = PayloadWriter::new();
    let mut pairs = PayloadWriter::new();
    let mut total = 0u64;
    pair_offsets.put_u64(0);
    for list in &kb.pairs {
        total += list.len() as u64;
        pair_offsets.put_u64(total);
        for &(x, y) in list {
            pairs.put_u32(x.0);
            pairs.put_u32(y.0);
        }
    }
    w.add(base + KB_PAIR_OFFSETS, pair_offsets.bytes());
    w.add(base + KB_PAIRS, pairs.bytes());

    // Both-direction adjacency, stored verbatim.
    let mut adj_offsets = PayloadWriter::new();
    let mut adj = PayloadWriter::new();
    let mut total = 0u64;
    adj_offsets.put_u64(0);
    for row in &kb.adj {
        total += row.len() as u64;
        adj_offsets.put_u64(total);
        for &(r, e) in row {
            adj.put_u32(r.0);
            adj.put_u32(e.0);
        }
    }
    w.add(base + KB_ADJ_OFFSETS, adj_offsets.bytes());
    w.add(base + KB_ADJ, adj.bytes());

    let mut classes = PayloadWriter::new();
    for c in &kb.classes {
        classes.put_u32(c.0);
    }
    w.add(base + KB_CLASSES, classes.bytes());

    add_map_sections(w, base + KB_MEMBERS, &kb.class_members);
    add_map_sections(w, base + KB_TYPES, &kb.types_of);
    add_map_sections(w, base + KB_SUPER, &kb.superclasses);

    let mut fun = PayloadWriter::new();
    for &f in &kb.fun {
        fun.put_f64(f);
    }
    w.add(base + KB_FUN, fun.bytes());
}

fn add_map_sections(w: &mut SectionWriter, base: u32, map: &FxHashMap<EntityId, Vec<EntityId>>) {
    let mut entries: Vec<(EntityId, &Vec<EntityId>)> = map.iter().map(|(&k, v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    let mut key_bytes = PayloadWriter::new();
    let mut offsets = PayloadWriter::new();
    let mut values = PayloadWriter::new();
    let mut total = 0u64;
    offsets.put_u64(0);
    for (k, row) in entries {
        key_bytes.put_u32(k.0);
        total += row.len() as u64;
        offsets.put_u64(total);
        for v in row {
            values.put_u32(v.0);
        }
    }
    w.add(base, key_bytes.bytes());
    w.add(base + 1, offsets.bytes());
    w.add(base + 2, values.bytes());
}

// ----------------------------------------------------------------------
// KB layout validation + view
// ----------------------------------------------------------------------

/// Resolved byte ranges of one map's three sections.
#[derive(Clone, Debug)]
struct MapLayout {
    keys: Range<usize>,
    offsets: Range<usize>,
    values: Range<usize>,
    num_keys: usize,
}

impl MapLayout {
    fn validate(
        snap: &SnapshotArena,
        base: u32,
        num_entities: u32,
        what: &str,
    ) -> Result<MapLayout, SnapshotError> {
        let buf = snap.bytes();
        let keys = snap.required(base, &format!("{what} keys"))?;
        let offsets = snap.required(base + 1, &format!("{what} offsets"))?;
        let values = snap.required(base + 2, &format!("{what} values"))?;
        if keys.len() % 4 != 0 || values.len() % 4 != 0 {
            return Err(SnapshotError::corrupt(format!(
                "section {what} keys/values are not u32 arrays"
            )));
        }
        let num_keys = keys.len() / 4;
        let key_buf = wire::slice(buf, keys.clone());
        check_ids(key_buf, num_entities, &format!("{what} keys"))?;
        for i in 1..num_keys {
            if le_u32(key_buf, i - 1) >= le_u32(key_buf, i) {
                return Err(SnapshotError::corrupt(format!(
                    "section {what} keys are not strictly sorted"
                )));
            }
        }
        check_offsets(
            wire::slice(buf, offsets.clone()),
            num_keys,
            (values.len() / 4) as u64,
            &format!("{what} offsets"),
        )?;
        check_ids(
            wire::slice(buf, values.clone()),
            num_entities,
            &format!("{what} values"),
        )?;
        Ok(MapLayout {
            keys,
            offsets,
            values,
            num_keys,
        })
    }
}

/// Validated byte ranges of one KB's sections within a [`SnapshotArena`],
/// plus the decoded META counts. Building a layout proves every array
/// size, offset, and id of the KB consistent, so [`KbView`] accessors can
/// index without failure paths.
#[derive(Clone, Debug)]
pub struct KbLayout {
    name: String,
    num_entities: usize,
    num_relations: usize,
    num_classes: usize,
    term_blob: Range<usize>,
    term_offsets: Range<usize>,
    term_kinds: Range<usize>,
    term_sorted: Range<usize>,
    rel_blob: Range<usize>,
    rel_offsets: Range<usize>,
    pair_offsets: Range<usize>,
    pairs: Range<usize>,
    adj_offsets: Range<usize>,
    adj: Range<usize>,
    classes: Range<usize>,
    members: MapLayout,
    types_of: MapLayout,
    superclasses: MapLayout,
    fun: Range<usize>,
}

impl KbLayout {
    /// Validates the KB sections under `base` and resolves their ranges.
    pub fn validate(snap: &SnapshotArena, base: u32) -> Result<KbLayout, SnapshotError> {
        let buf = snap.bytes();
        let meta_range = snap.required(base + KB_META, "KB meta")?;
        let mut meta = PayloadReader::new(wire::slice(buf, meta_range));
        let name = meta.get_str()?.to_owned();
        // Range-check the counts as u64 *before* narrowing, so a hostile
        // count cannot truncate into range on a 32-bit target.
        let num_entities64 = meta.get_u64()?;
        let num_relations64 = meta.get_u64()?;
        let num_classes64 = meta.get_u64()?;
        if !meta.is_exhausted() {
            return Err(SnapshotError::corrupt("trailing bytes in KB meta"));
        }
        if num_entities64 > u64::from(u32::MAX)
            || num_relations64 > u64::from(u32::MAX / 2)
            || num_classes64 > num_entities64
        {
            return Err(SnapshotError::corrupt("KB meta counts out of range"));
        }
        let num_entities = wire::saturating_usize(num_entities64);
        let num_relations = wire::saturating_usize(num_relations64);
        let num_classes = wire::saturating_usize(num_classes64);
        let n = num_entities;
        let n32 = num_entities64 as u32;
        let nrel = num_relations;

        let term_blob = snap.required(base + KB_TERM_BLOB, "term blob")?;
        let term_offsets = snap.required(base + KB_TERM_OFFSETS, "term offsets")?;
        // Monotonic offsets ending at the blob length are the only
        // structural fact term access relies on: record *contents* are
        // decoded defensively (see decode_term_record), so no per-record
        // scan is needed on the open path.
        check_offsets(
            wire::slice(buf, term_offsets.clone()),
            n,
            term_blob.len() as u64,
            "term offsets",
        )?;

        let term_kinds = snap.required(base + KB_TERM_KINDS, "term kinds")?;
        expect_len(wire::slice(buf, term_kinds.clone()), n, "term kinds")?;
        if wire::slice(buf, term_kinds.clone())
            .iter()
            .fold(0u8, |a, &k| a.max(k))
            > 2
        {
            return Err(SnapshotError::corrupt("unknown entity kind"));
        }

        // The lookup index must be a valid permutation *target-wise* (ids
        // in range — that is what keeps access safe); its byte-order
        // sortedness is the writer's contract and is exercised by tests,
        // not re-proved per open. A crafted index degrades lookups to
        // wrong/absent answers, never to panics or out-of-bounds reads.
        let term_sorted = snap.required(base + KB_TERM_SORTED, "term lookup index")?;
        expect_len(
            wire::slice(buf, term_sorted.clone()),
            4 * n,
            "term lookup index",
        )?;
        check_ids(
            wire::slice(buf, term_sorted.clone()),
            n32.max(1),
            "term lookup index",
        )?;

        let rel_blob = snap.required(base + KB_REL_BLOB, "relation blob")?;
        let rel_offsets = snap.required(base + KB_REL_OFFSETS, "relation offsets")?;
        check_offsets(
            wire::slice(buf, rel_offsets.clone()),
            nrel,
            rel_blob.len() as u64,
            "relation offsets",
        )?;
        let rel_offsets_buf = wire::slice(buf, rel_offsets.clone());
        let rel_blob_buf = wire::slice(buf, rel_blob.clone());
        for i in 0..nrel {
            let start = wire::saturating_usize(le_u64(rel_offsets_buf, i));
            let end = wire::saturating_usize(le_u64(rel_offsets_buf, i + 1));
            let iri_bytes = rel_blob_buf.get(start..end).unwrap_or_default();
            if std::str::from_utf8(iri_bytes).is_err() {
                return Err(SnapshotError::corrupt("relation IRI is not UTF-8"));
            }
        }

        let pair_offsets = snap.required(base + KB_PAIR_OFFSETS, "pair offsets")?;
        let pairs = snap.required(base + KB_PAIRS, "pairs")?;
        if pairs.len() % 8 != 0 {
            return Err(SnapshotError::corrupt("pairs section is not (u32, u32)"));
        }
        check_offsets(
            wire::slice(buf, pair_offsets.clone()),
            nrel,
            (pairs.len() / 8) as u64,
            "pair offsets",
        )?;
        check_ids(wire::slice(buf, pairs.clone()), n32.max(1), "pairs")?;
        if n == 0 && !pairs.is_empty() {
            return Err(SnapshotError::corrupt("pairs without entities"));
        }

        let adj_offsets = snap.required(base + KB_ADJ_OFFSETS, "adjacency offsets")?;
        let adj = snap.required(base + KB_ADJ, "adjacency")?;
        if adj.len() % 8 != 0 {
            return Err(SnapshotError::corrupt(
                "adjacency section is not (u32, u32)",
            ));
        }
        check_offsets(
            wire::slice(buf, adj_offsets.clone()),
            n,
            (adj.len() / 8) as u64,
            "adjacency offsets",
        )?;
        // Branch-free max-fold over both lanes of the (rel, entity)
        // entries — the adjacency is the largest section of a KB and
        // this is the open path.
        let adj_buf = wire::slice(buf, adj.clone());
        let directed = (2 * nrel) as u32;
        let (mut max_r, mut max_e) = (0u32, 0u32);
        for entry in adj_buf.chunks_exact(8) {
            max_r = max_r.max(le_u32(entry, 0));
            max_e = max_e.max(le_u32(entry, 1));
        }
        if !adj_buf.is_empty() && (max_r >= directed || max_e >= n32) {
            return Err(SnapshotError::corrupt(format!(
                "adjacency entry out of range (max relation {max_r} of {directed}, \
                 max entity {max_e} of {n32})"
            )));
        }

        let classes = snap.required(base + KB_CLASSES, "classes")?;
        expect_len(
            wire::slice(buf, classes.clone()),
            4 * num_classes,
            "classes",
        )?;
        check_ids(wire::slice(buf, classes.clone()), n32.max(1), "classes")?;

        let members = MapLayout::validate(snap, base + KB_MEMBERS, n32, "class members")?;
        let types_of = MapLayout::validate(snap, base + KB_TYPES, n32, "types")?;
        let superclasses = MapLayout::validate(snap, base + KB_SUPER, n32, "superclasses")?;

        let fun = snap.required(base + KB_FUN, "functionalities")?;
        expect_len(
            wire::slice(buf, fun.clone()),
            8 * 2 * nrel,
            "functionalities",
        )?;

        Ok(KbLayout {
            name,
            num_entities,
            num_relations,
            num_classes,
            term_blob,
            term_offsets,
            term_kinds,
            term_sorted,
            rel_blob,
            rel_offsets,
            pair_offsets,
            pairs,
            adj_offsets,
            adj,
            classes,
            members,
            types_of,
            superclasses,
            fun,
        })
    }

    /// The KB's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of interned entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of base (forward) relations.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// A borrowing view over this layout's sections.
    pub fn view<'a>(&'a self, snap: &'a SnapshotArena) -> KbView<'a> {
        KbView {
            buf: snap.bytes(),
            layout: self,
        }
    }
}

/// A zero-copy, read-in-place view of one KB inside a v2 snapshot —
/// the arena-backed counterpart of [`Kb`] for the serving query paths.
/// Cheap to construct (two pointers); all accessors index the validated
/// sections directly.
#[derive(Clone, Copy)]
pub struct KbView<'a> {
    buf: &'a [u8],
    layout: &'a KbLayout,
}

impl<'a> KbView<'a> {
    #[inline]
    fn sec(&self, r: &Range<usize>) -> &'a [u8] {
        // Section ranges were bounds-validated when the arena was opened;
        // the empty-slice fallback keeps this provably panic-free.
        self.buf.get(r.start..r.end).unwrap_or_default()
    }

    /// The KB's display name.
    pub fn name(&self) -> &'a str {
        &self.layout.name
    }

    /// Total number of interned entities.
    pub fn num_entities(&self) -> usize {
        self.layout.num_entities
    }

    /// Number of base (forward) relations.
    pub fn num_base_relations(&self) -> usize {
        self.layout.num_relations
    }

    /// Number of directed relations.
    pub fn num_directed_relations(&self) -> usize {
        self.layout.num_relations * 2
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.layout.num_classes
    }

    /// Total number of stored forward facts.
    pub fn num_facts(&self) -> usize {
        self.layout.pairs.len() / 8
    }

    /// The kind of an entity.
    #[inline]
    pub fn kind(&self, e: EntityId) -> EntityKind {
        match self.sec(&self.layout.term_kinds).get(e.index()) {
            Some(0) => EntityKind::Instance,
            Some(1) => EntityKind::Class,
            _ => EntityKind::Literal,
        }
    }

    /// The raw encoded record of an entity's term.
    #[inline]
    fn term_record(&self, e: EntityId) -> &'a [u8] {
        let offsets = self.sec(&self.layout.term_offsets);
        let start = wire::saturating_usize(le_u64(offsets, e.index()));
        let end = wire::saturating_usize(le_u64(offsets, e.index() + 1));
        self.sec(&self.layout.term_blob)
            .get(start..end)
            .unwrap_or_default()
    }

    /// Decodes the term of an entity (allocates for the one entity only).
    pub fn term(&self, e: EntityId) -> Term {
        decode_term_record(self.term_record(e))
    }

    /// The IRI string of a resource entity, `None` for literals.
    pub fn iri_str(&self, e: EntityId) -> Option<&'a str> {
        let rec = self.term_record(e);
        match rec.split_first() {
            Some((&TAG_IRI, rest)) => std::str::from_utf8(rest).ok(),
            _ => None,
        }
    }

    /// Looks up an entity by exact term (binary search over the byte-
    /// sorted index — no hash map exists in a v2 image).
    pub fn entity(&self, term: &Term) -> Option<EntityId> {
        let mut probe = Vec::with_capacity(64);
        encode_term_record(&mut probe, term);
        self.entity_by_record(&probe)
    }

    /// Looks up a resource entity by IRI string.
    pub fn entity_by_iri(&self, iri: &str) -> Option<EntityId> {
        let mut probe = Vec::with_capacity(iri.len() + 1);
        probe.push(TAG_IRI);
        probe.extend_from_slice(iri.as_bytes());
        self.entity_by_record(&probe)
    }

    fn entity_by_record(&self, probe: &[u8]) -> Option<EntityId> {
        let sorted = self.sec(&self.layout.term_sorted);
        let (mut lo, mut hi) = (0usize, self.layout.num_entities);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let id = EntityId(le_u32(sorted, mid));
            match self.term_record(id).cmp(probe) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(id),
            }
        }
        None
    }

    /// The IRI of a directed relation's base relation.
    pub fn relation_iri_str(&self, r: RelationId) -> &'a str {
        let offsets = self.sec(&self.layout.rel_offsets);
        let start = wire::saturating_usize(le_u64(offsets, r.base_index()));
        let end = wire::saturating_usize(le_u64(offsets, r.base_index() + 1));
        let bytes = self
            .sec(&self.layout.rel_blob)
            .get(start..end)
            .unwrap_or_default();
        // UTF-8 validated at open.
        std::str::from_utf8(bytes).unwrap_or("")
    }

    /// Looks up the forward direction of a relation by IRI (linear scan —
    /// relation counts are small and this is off the hot path).
    pub fn relation_by_iri(&self, iri: &str) -> Option<RelationId> {
        (0..self.layout.num_relations)
            .map(RelationId::forward)
            .find(|&r| self.relation_iri_str(r) == iri)
    }

    /// The global functionality of a directed relation.
    #[inline]
    pub fn functionality(&self, r: RelationId) -> f64 {
        le_f64(self.sec(&self.layout.fun), r.directed_index())
    }

    /// Number of statements around an entity (both directions).
    #[inline]
    pub fn facts_len(&self, e: EntityId) -> usize {
        let offsets = self.sec(&self.layout.adj_offsets);
        wire::saturating_usize(
            le_u64(offsets, e.index() + 1).saturating_sub(le_u64(offsets, e.index())),
        )
    }

    /// All statements `r(x, y)` with `x = e`, both directions, in the
    /// stored (sorted) order — the view equivalent of [`Kb::facts`].
    pub fn facts(&self, e: EntityId) -> impl ExactSizeIterator<Item = (RelationId, EntityId)> + 'a {
        let offsets = self.sec(&self.layout.adj_offsets);
        let start = wire::saturating_usize(le_u64(offsets, e.index()));
        let end = wire::saturating_usize(le_u64(offsets, e.index() + 1));
        let adj = self.sec(&self.layout.adj);
        (start..end).map(move |i| {
            (
                RelationId(le_u32(adj, 2 * i)),
                EntityId(le_u32(adj, 2 * i + 1)),
            )
        })
    }

    /// Sorted forward pairs of one base relation.
    pub fn base_pairs(
        &self,
        base: usize,
    ) -> impl ExactSizeIterator<Item = (EntityId, EntityId)> + 'a {
        let offsets = self.sec(&self.layout.pair_offsets);
        let start = wire::saturating_usize(le_u64(offsets, base));
        let end = wire::saturating_usize(le_u64(offsets, base + 1));
        let pairs = self.sec(&self.layout.pairs);
        (start..end).map(move |i| {
            (
                EntityId(le_u32(pairs, 2 * i)),
                EntityId(le_u32(pairs, 2 * i + 1)),
            )
        })
    }

    /// All class entities.
    pub fn classes(&self) -> impl ExactSizeIterator<Item = EntityId> + 'a {
        let buf = self.sec(&self.layout.classes);
        (0..self.layout.num_classes).map(move |i| EntityId(le_u32(buf, i)))
    }

    fn map_entries(
        &self,
        map: &'a MapLayout,
    ) -> impl Iterator<Item = (EntityId, Vec<EntityId>)> + 'a {
        let keys = self.sec(&map.keys);
        let offsets = self.sec(&map.offsets);
        let values = self.sec(&map.values);
        (0..map.num_keys).map(move |i| {
            let start = wire::saturating_usize(le_u64(offsets, i));
            let end = wire::saturating_usize(le_u64(offsets, i + 1));
            let row = (start..end).map(|j| EntityId(le_u32(values, j))).collect();
            (EntityId(le_u32(keys, i)), row)
        })
    }

    /// Table-2-style statistics (one scan over the kinds section).
    pub fn stats(&self) -> KbStats {
        let mut instances = 0;
        let mut literals = 0;
        for &k in self.sec(&self.layout.term_kinds) {
            match k {
                0 => instances += 1,
                2 => literals += 1,
                _ => {}
            }
        }
        KbStats {
            name: self.layout.name.clone(),
            instances,
            classes: self.layout.num_classes,
            relations: self.layout.num_relations,
            facts: self.num_facts(),
            literals,
        }
    }

    /// Fully decodes ("hydrates") this view into an owned [`Kb`] — the
    /// bridge back to every API that needs an owned KB (deltas, jobs,
    /// v2 → v1 conversion). This is the expensive path v2 serving avoids.
    pub fn to_kb(&self) -> Kb {
        let n = self.layout.num_entities;
        let terms: Vec<Term> = (0..n).map(|i| self.term(EntityId::from_index(i))).collect();
        let kinds: Vec<EntityKind> = (0..n).map(|i| self.kind(EntityId::from_index(i))).collect();
        let mut term_index: FxHashMap<Term, EntityId> =
            FxHashMap::with_capacity_and_hasher(n, Default::default());
        term_index.extend(
            terms
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), EntityId::from_index(i))),
        );
        let relation_names: Vec<Iri> = (0..self.layout.num_relations)
            .map(|b| Iri::new(self.relation_iri_str(RelationId::forward(b))))
            .collect();
        let relation_index: FxHashMap<Iri, u32> = relation_names
            .iter()
            .enumerate()
            .map(|(i, iri)| (iri.clone(), i as u32))
            .collect();
        let pairs: Vec<Vec<(EntityId, EntityId)>> = (0..self.layout.num_relations)
            .map(|b| self.base_pairs(b).collect())
            .collect();
        let adj: Vec<Vec<(RelationId, EntityId)>> = (0..n)
            .map(|i| self.facts(EntityId::from_index(i)).collect())
            .collect();
        let fun: Vec<f64> = (0..2 * self.layout.num_relations)
            .map(|i| le_f64(self.sec(&self.layout.fun), i))
            .collect();
        Kb {
            name: self.layout.name.clone(),
            terms,
            kinds,
            term_index,
            relation_names,
            relation_index,
            adj,
            pairs,
            classes: self.classes().collect(),
            class_members: self.map_entries(&self.layout.members).collect(),
            types_of: self.map_entries(&self.layout.types_of).collect(),
            superclasses: self.map_entries(&self.layout.superclasses).collect(),
            fun,
        }
    }
}

impl std::fmt::Debug for KbView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KbView")
            .field("name", &self.layout.name)
            .field("entities", &self.num_entities())
            .field("relations", &self.num_base_relations())
            .field("facts", &self.num_facts())
            .finish()
    }
}

// ----------------------------------------------------------------------
// Single-KB convenience API (mirrors snapshot::save_kb / load_kb)
// ----------------------------------------------------------------------

/// Serializes one KB into a framed v2 snapshot byte vector.
pub fn kb_to_bytes_v2(kb: &Kb) -> Vec<u8> {
    let mut w = SectionWriter::new();
    encode_kb_sections(kb, KB1_BASE, &mut w);
    w.finish(SnapshotKind::Kb)
}

/// Writes a single-KB v2 snapshot file (atomically).
pub fn save_kb_v2(kb: &Kb, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let mut w = SectionWriter::new();
    encode_kb_sections(kb, KB1_BASE, &mut w);
    w.write_file(SnapshotKind::Kb, path)
}

/// An opened, validated single-KB v2 snapshot.
#[derive(Debug)]
pub struct MappedKbSnapshot {
    arena: SnapshotArena,
    layout: KbLayout,
}

impl MappedKbSnapshot {
    /// Opens and validates a single-KB v2 snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        MappedKbSnapshot::from_arena(SnapshotArena::open(path)?)
    }

    /// Validates an in-memory single-KB v2 image.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        MappedKbSnapshot::from_arena(SnapshotArena::from_bytes(bytes)?)
    }

    fn from_arena(arena: SnapshotArena) -> Result<Self, SnapshotError> {
        if arena.kind() != SnapshotKind::Kb {
            return Err(SnapshotError::corrupt(format!(
                "expected a single-KB snapshot, found a {}",
                arena.kind().name()
            )));
        }
        let layout = KbLayout::validate(&arena, KB1_BASE)?;
        Ok(MappedKbSnapshot { arena, layout })
    }

    /// The underlying arena.
    pub fn arena(&self) -> &SnapshotArena {
        &self.arena
    }

    /// The KB view.
    pub fn kb(&self) -> KbView<'_> {
        self.layout.view(&self.arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;

    #[test]
    fn streamed_checksum_matches_in_memory() {
        // Every alignment class around the 8/32-byte boundaries, plus
        // sizes spanning multiple read chunks (buffer is 32 KiB).
        for len in [
            0usize,
            1,
            7,
            8,
            9,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            32 * 1024 - 1,
            32 * 1024,
            32 * 1024 + 1,
            100_000,
        ] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            assert_eq!(
                checksum_v2_stream(&mut &bytes[..], len as u64).unwrap(),
                checksum_v2(&bytes),
                "len {len}"
            );
        }
        // A reader that cannot yield the promised length errors.
        assert!(checksum_v2_stream(&mut &[0u8; 3][..], 4).is_err());
    }

    fn sample_kb() -> Kb {
        let mut b = KbBuilder::new("sample");
        b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        b.add_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
        b.add_literal_fact(
            "http://x/Elvis",
            "http://x/name",
            Literal::plain("Elvis Presley"),
        );
        b.add_literal_fact(
            "http://x/Elvis",
            "http://x/label",
            Literal::lang_tagged("Elvis", "en"),
        );
        b.add_literal_fact(
            "http://x/Elvis",
            "http://x/born",
            Literal::typed("1935", "http://www.w3.org/2001/XMLSchema#gYear"),
        );
        b.add_type("http://x/Elvis", "http://x/Singer");
        b.add_subclass("http://x/Singer", "http://x/Person");
        b.build()
    }

    #[test]
    fn v2_view_answers_match_the_kb() {
        let kb = sample_kb();
        let snap = MappedKbSnapshot::from_bytes(kb_to_bytes_v2(&kb)).unwrap();
        let view = snap.kb();

        assert_eq!(view.name(), kb.name());
        assert_eq!(view.num_entities(), kb.num_entities());
        assert_eq!(view.num_facts(), kb.num_facts());
        assert_eq!(view.num_classes(), kb.num_classes());
        assert_eq!(view.stats(), KbStats::of(&kb));

        // Every term round-trips and every lookup agrees.
        for e in kb.entities() {
            assert_eq!(&view.term(e), kb.term(e), "{e:?}");
            assert_eq!(view.kind(e), kb.kind(e));
            assert_eq!(view.entity(kb.term(e)), Some(e));
            let view_facts: Vec<_> = view.facts(e).collect();
            assert_eq!(view_facts.as_slice(), kb.facts(e), "{e:?}");
        }
        assert_eq!(
            view.entity_by_iri("http://x/Elvis"),
            kb.entity_by_iri("http://x/Elvis")
        );
        assert_eq!(view.entity_by_iri("http://x/Nobody"), None);

        let born_in = kb.relation_by_iri("http://x/bornIn").unwrap();
        assert_eq!(view.relation_by_iri("http://x/bornIn"), Some(born_in));
        assert_eq!(view.relation_iri_str(born_in), "http://x/bornIn");
        assert_eq!(view.functionality(born_in), kb.functionality(born_in));
        assert_eq!(
            view.functionality(born_in.inverse()),
            kb.functionality(born_in.inverse())
        );
    }

    #[test]
    fn hydrated_kb_is_field_identical() {
        let kb = sample_kb();
        let snap = MappedKbSnapshot::from_bytes(kb_to_bytes_v2(&kb)).unwrap();
        let back = snap.kb().to_kb();
        assert_eq!(KbStats::of(&back), KbStats::of(&kb));
        for e in kb.entities() {
            assert_eq!(back.term(e), kb.term(e));
            assert_eq!(back.facts(e), kb.facts(e));
            assert_eq!(back.types_of(e), kb.types_of(e));
        }
        for r in kb.directed_relations() {
            assert_eq!(back.functionality(r), kb.functionality(r));
        }
        assert_eq!(back.classes(), kb.classes());
    }

    #[test]
    fn v2_open_survives_file_round_trip() {
        let kb = sample_kb();
        let path = std::env::temp_dir().join("paris_snapshot_v2_unit.snap");
        save_kb_v2(&kb, &path).unwrap();
        let snap = MappedKbSnapshot::open(&path).unwrap();
        assert_eq!(snap.kb().stats(), KbStats::of(&kb));
        #[cfg(unix)]
        assert!(snap.arena().is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let kb = sample_kb();
        let bytes = kb_to_bytes_v2(&kb);
        // Exhaustive for a small image: *no* byte may flip silently.
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x20;
            assert!(
                MappedKbSnapshot::from_bytes(corrupted).is_err(),
                "flip at byte {i} was not detected"
            );
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let kb = sample_kb();
        let bytes = kb_to_bytes_v2(&kb);
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 13, bytes.len() - 1] {
            assert!(
                SnapshotArena::from_bytes(bytes[..cut].to_vec()).is_err(),
                "truncation at {cut}"
            );
        }
    }

    #[test]
    fn v1_files_are_not_v2() {
        let kb = sample_kb();
        let v1 = crate::snapshot::kb_to_bytes(&kb);
        assert!(matches!(
            SnapshotArena::from_bytes(v1),
            Err(SnapshotError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let kb = sample_kb();
        let mut w = SectionWriter::new();
        encode_kb_sections(&kb, KB1_BASE, &mut w);
        let bytes = w.finish(SnapshotKind::AlignedPair);
        let err = MappedKbSnapshot::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("expected a single-KB"), "{err}");
    }

    #[test]
    fn empty_kb_round_trips() {
        let kb = KbBuilder::new("empty").build();
        let snap = MappedKbSnapshot::from_bytes(kb_to_bytes_v2(&kb)).unwrap();
        assert_eq!(snap.kb().num_entities(), 0);
        assert_eq!(snap.kb().num_facts(), 0);
        assert_eq!(snap.kb().entity_by_iri("http://x/y"), None);
        assert_eq!(KbStats::of(&snap.kb().to_kb()), KbStats::of(&kb));
    }
}
