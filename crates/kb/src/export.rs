//! Serializing a [`Kb`] back to triples.
//!
//! The export is the KB's *deductive closure* (§3): type memberships and
//! subclass edges are emitted in their closed form, so exporting and
//! re-importing is idempotent (verified by the round-trip tests) even
//! though the original pre-closure statements are not retained.

use paris_rdf::triple::Triple;
use paris_rdf::vocab;
use paris_rdf::Iri;

use crate::ids::RelationId;
use crate::store::Kb;

/// Emits every statement of the KB as triples: facts (forward direction
/// only — inverses are reconstructed on import), `rdf:type` memberships,
/// and `rdfs:subClassOf` edges.
pub fn to_triples(kb: &Kb) -> Vec<Triple> {
    let mut out = Vec::with_capacity(kb.num_facts());
    for base in 0..kb.num_base_relations() {
        let r = RelationId::forward(base);
        let predicate = kb.relation_iri(r).clone();
        for (x, y) in kb.pairs(r) {
            let Some(subject) = kb.iri(x) else {
                // Literal in subject position cannot be serialized; emit
                // the inverse-direction statement instead. This only
                // happens for KBs built programmatically with literal
                // subjects, which the builder does not produce.
                continue;
            };
            out.push(Triple {
                subject: subject.clone(),
                predicate: predicate.clone(),
                object: kb.term(y).clone(),
            });
        }
    }
    let rdf_type = Iri::new(vocab::RDF_TYPE);
    for &class in kb.classes() {
        let class_iri = kb.iri(class).expect("classes are resources");
        for &member in kb.members(class) {
            if let Some(m) = kb.iri(member) {
                out.push(Triple {
                    subject: m.clone(),
                    predicate: rdf_type.clone(),
                    object: class_iri.clone().into(),
                });
            }
        }
    }
    let subclass_of = Iri::new(vocab::RDFS_SUBCLASS_OF);
    for &class in kb.classes() {
        let class_iri = kb.iri(class).expect("classes are resources");
        for &sup in kb.superclasses(class) {
            if let Some(s) = kb.iri(sup) {
                out.push(Triple {
                    subject: class_iri.clone(),
                    predicate: subclass_of.clone(),
                    object: s.clone().into(),
                });
            }
        }
    }
    out
}

/// Serializes the KB as an N-Triples document.
pub fn to_ntriples(kb: &Kb) -> String {
    paris_rdf::ntriples::to_string(&to_triples(kb))
}

/// Writes the KB to an N-Triples file.
pub fn write_ntriples(kb: &Kb, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, to_ntriples(kb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{kb_from_ntriples, KbBuilder};
    use paris_rdf::Literal;

    fn sample_kb() -> Kb {
        let mut b = KbBuilder::new("t");
        b.add_fact("http://x/elvis", "http://x/bornIn", "http://x/tupelo");
        b.add_literal_fact("http://x/elvis", "http://x/name", Literal::plain("Elvis"));
        b.add_type("http://x/elvis", "http://x/Singer");
        b.add_subclass("http://x/Singer", "http://x/Person");
        b.build()
    }

    #[test]
    fn export_contains_all_statement_kinds() {
        let kb = sample_kb();
        let triples = to_triples(&kb);
        assert!(triples
            .iter()
            .any(|t| t.predicate.as_str() == "http://x/bornIn"));
        assert!(triples
            .iter()
            .any(|t| t.predicate.as_str() == vocab::RDF_TYPE));
        assert!(triples
            .iter()
            .any(|t| t.predicate.as_str() == vocab::RDFS_SUBCLASS_OF));
        // closure: elvis is typed both Singer and Person
        let types = triples
            .iter()
            .filter(|t| t.predicate.as_str() == vocab::RDF_TYPE)
            .count();
        assert_eq!(types, 2);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let kb = sample_kb();
        let reloaded = kb_from_ntriples("t2", &to_ntriples(&kb)).unwrap();
        assert_eq!(kb.num_instances(), reloaded.num_instances());
        assert_eq!(kb.num_classes(), reloaded.num_classes());
        assert_eq!(kb.num_base_relations(), reloaded.num_base_relations());
        assert_eq!(kb.num_facts(), reloaded.num_facts());
        assert_eq!(kb.num_literals(), reloaded.num_literals());
    }

    #[test]
    fn round_trip_is_idempotent_under_closure() {
        let kb = sample_kb();
        let once = kb_from_ntriples("t2", &to_ntriples(&kb)).unwrap();
        let twice = kb_from_ntriples("t3", &to_ntriples(&once)).unwrap();
        assert_eq!(once.num_facts(), twice.num_facts());
        assert_eq!(
            to_triples(&once).len(),
            to_triples(&twice).len(),
            "closure must not grow on re-export"
        );
    }

    #[test]
    fn functionality_survives_round_trip() {
        let kb = sample_kb();
        let reloaded = kb_from_ntriples("t2", &to_ntriples(&kb)).unwrap();
        let r1 = kb.relation_by_iri("http://x/bornIn").unwrap();
        let r2 = reloaded.relation_by_iri("http://x/bornIn").unwrap();
        assert_eq!(kb.functionality(r1), reloaded.functionality(r2));
    }

    #[test]
    fn file_round_trip() {
        let kb = sample_kb();
        let path = std::env::temp_dir().join("paris_kb_export_test.nt");
        write_ntriples(&kb, &path).unwrap();
        let reloaded = crate::builder::kb_from_file("t2", &path).unwrap();
        assert_eq!(kb.num_facts(), reloaded.num_facts());
        std::fs::remove_file(&path).ok();
    }
}
