//! Loading knowledge bases from tab-separated plain-text files.
//!
//! §6.4 of the paper: "The content of the IMDb database is available for
//! download as plain-text files. The format of each file is ad hoc but we
//! transformed the content of the database in a fairly straightforward
//! manner into a collection of triples." This module is that
//! transformation path, for the simplest possible tabular convention:
//!
//! ```text
//! # subject <TAB> relation <TAB> object
//! imdb:nm0001    imdb:cast      imdb:tt0099
//! imdb:tt0099    rdfs:label     "The Yukon Patrol"
//! imdb:tt0099    rdf:type       imdb:movie
//! ```
//!
//! * Blank lines and `#` comments are skipped.
//! * Objects in double quotes are literals (with `\t`, `\n`, `\"`, `\\`
//!   escapes); everything else is a resource.
//! * Compact IRIs (`prefix:local`) are expanded through a caller-provided
//!   [`Namespaces`] table; bare names fall back to a default namespace.
//! * `rdf:type`, `rdfs:subClassOf`, and `rdfs:subPropertyOf` receive
//!   their schema interpretation via the regular builder dispatch.

use paris_rdf::namespace::Namespaces;
use paris_rdf::{Iri, Literal, RdfError, Term, Triple};

use crate::builder::KbBuilder;
use crate::store::Kb;

/// Parses the TSV fact format into triples.
///
/// `namespaces` expands compact IRIs; names without a registered prefix
/// (or without any colon) are placed under `default_ns`.
pub fn parse_tsv(
    input: &str,
    namespaces: &Namespaces,
    default_ns: &str,
) -> Result<Vec<Triple>, RdfError> {
    let mut out = Vec::new();
    for (number, raw) in input.lines().enumerate() {
        let line = raw.trim_end_matches('\r');
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = line.splitn(3, '\t');
        let (Some(s), Some(p), Some(o)) = (fields.next(), fields.next(), fields.next()) else {
            return Err(RdfError::Syntax {
                line: number as u64 + 1,
                message: "expected three tab-separated fields".to_owned(),
            });
        };
        let subject = resolve(s.trim(), namespaces, default_ns);
        let predicate = resolve(p.trim(), namespaces, default_ns);
        let object = object_term(o.trim(), namespaces, default_ns, number as u64 + 1)?;
        out.push(Triple {
            subject,
            predicate,
            object,
        });
    }
    Ok(out)
}

fn resolve(name: &str, namespaces: &Namespaces, default_ns: &str) -> Iri {
    if name.contains("://") {
        return Iri::new(name);
    }
    if let Some(iri) = namespaces.expand(name) {
        return iri;
    }
    Iri::new(format!("{default_ns}{name}"))
}

fn object_term(
    text: &str,
    namespaces: &Namespaces,
    default_ns: &str,
    line: u64,
) -> Result<Term, RdfError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(RdfError::Syntax {
                line,
                message: "unterminated quoted literal".into(),
            });
        };
        let mut value = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                value.push(c);
                continue;
            }
            match chars.next() {
                Some('t') => value.push('\t'),
                Some('n') => value.push('\n'),
                Some('"') => value.push('"'),
                Some('\\') => value.push('\\'),
                other => {
                    return Err(RdfError::Syntax {
                        line,
                        message: format!("illegal escape {other:?} in literal"),
                    })
                }
            }
        }
        return Ok(Term::Literal(Literal::plain(value)));
    }
    Ok(Term::Iri(resolve(text, namespaces, default_ns)))
}

/// Parses a TSV document and builds a KB directly.
pub fn kb_from_tsv(
    name: &str,
    input: &str,
    namespaces: &Namespaces,
    default_ns: &str,
) -> Result<Kb, RdfError> {
    let triples = parse_tsv(input, namespaces, default_ns)?;
    let mut b = KbBuilder::new(name);
    b.add_triples(&triples);
    Ok(b.build())
}

/// Loads a TSV fact file and builds a KB. `rdf:`/`rdfs:` prefixes are
/// pre-registered; other names land under `default_ns`.
pub fn kb_from_tsv_file(
    name: &str,
    path: impl AsRef<std::path::Path>,
    default_ns: &str,
) -> Result<Kb, RdfError> {
    let text = std::fs::read_to_string(path)?;
    kb_from_tsv(name, &text, &Namespaces::with_well_known(), default_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> Namespaces {
        let mut ns = Namespaces::with_well_known();
        ns.insert("imdb", "http://imdb.test/");
        ns
    }

    #[test]
    fn basic_facts_parse() {
        let doc = "imdb:nm1\timdb:cast\timdb:tt9\nimdb:tt9\trdfs:label\t\"The Yukon Patrol\"\n";
        let triples = parse_tsv(doc, &ns(), "http://x/").unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].subject.as_str(), "http://imdb.test/nm1");
        assert_eq!(
            triples[1].object.as_literal().unwrap().value(),
            "The Yukon Patrol"
        );
        assert_eq!(triples[1].predicate.as_str(), paris_rdf::vocab::RDFS_LABEL);
    }

    #[test]
    fn comments_and_blank_lines() {
        let doc = "# header\n\nimdb:a\timdb:r\timdb:b\n  \n";
        assert_eq!(parse_tsv(doc, &ns(), "http://x/").unwrap().len(), 1);
    }

    #[test]
    fn bare_names_use_default_namespace() {
        let doc = "elvis\tbornIn\ttupelo\n";
        let triples = parse_tsv(doc, &ns(), "http://default/").unwrap();
        assert_eq!(triples[0].subject.as_str(), "http://default/elvis");
        assert_eq!(triples[0].predicate.as_str(), "http://default/bornIn");
    }

    #[test]
    fn full_iris_pass_through() {
        let doc = "http://a/x\thttp://a/r\thttp://a/y\n";
        let triples = parse_tsv(doc, &ns(), "http://d/").unwrap();
        assert_eq!(triples[0].subject.as_str(), "http://a/x");
    }

    #[test]
    fn literal_escapes() {
        let doc = "imdb:a\timdb:note\t\"tab\\there \\\"quoted\\\" back\\\\slash\"\n";
        let triples = parse_tsv(doc, &ns(), "http://x/").unwrap();
        assert_eq!(
            triples[0].object.as_literal().unwrap().value(),
            "tab\there \"quoted\" back\\slash"
        );
    }

    #[test]
    fn malformed_lines_error_with_number() {
        let doc = "imdb:a\timdb:r\timdb:b\nonly-two\tfields\n";
        match parse_tsv(doc, &ns(), "http://x/") {
            Err(RdfError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn schema_vocabulary_reaches_the_builder() {
        let doc = "\
imdb:elvis\trdf:type\timdb:Singer
imdb:Singer\trdfs:subClassOf\timdb:Person
imdb:elvis\trdfs:label\t\"Elvis\"
";
        let kb = kb_from_tsv("t", doc, &ns(), "http://x/").unwrap();
        assert_eq!(kb.num_classes(), 2);
        let elvis = kb.entity_by_iri("http://imdb.test/elvis").unwrap();
        assert_eq!(kb.types_of(elvis).len(), 2, "closure applied");
        assert_eq!(kb.num_facts(), 1, "label is the only plain fact");
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("paris_tsv_test.tsv");
        std::fs::write(&path, "a\tr\tb\na\tlabel\t\"A!\"\n").unwrap();
        let kb = kb_from_tsv_file("t", &path, "http://d/").unwrap();
        assert_eq!(kb.num_facts(), 2);
        assert_eq!(kb.num_literals(), 1);
        std::fs::remove_file(&path).ok();
    }
}
