//! Summary statistics of a knowledge base (paper Table 2).

use crate::store::Kb;

/// Counts reported in the paper's Table 2 plus a few extras useful for
/// sizing synthetic datasets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KbStats {
    /// KB display name.
    pub name: String,
    /// Number of instance entities.
    pub instances: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of base relations.
    pub relations: usize,
    /// Number of stored (deduplicated, forward) facts.
    pub facts: usize,
    /// Number of distinct literals.
    pub literals: usize,
}

impl KbStats {
    /// Gathers statistics from a KB.
    pub fn of(kb: &Kb) -> Self {
        KbStats {
            name: kb.name().to_owned(),
            instances: kb.num_instances(),
            classes: kb.num_classes(),
            relations: kb.num_base_relations(),
            facts: kb.num_facts(),
            literals: kb.num_literals(),
        }
    }

    /// Renders one row of a Table-2-style report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:>10} {:>9} {:>10} {:>10} {:>10}",
            self.name, self.instances, self.classes, self.relations, self.facts, self.literals
        )
    }

    /// The header matching [`KbStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>10} {:>9} {:>10} {:>10} {:>10}",
            "Ontology", "#Instances", "#Classes", "#Relations", "#Facts", "#Literals"
        )
    }
}

impl std::fmt::Display for KbStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} instances, {} classes, {} relations, {} facts, {} literals",
            self.name, self.instances, self.classes, self.relations, self.facts, self.literals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use paris_rdf::Literal;

    #[test]
    fn counts_are_consistent() {
        let mut b = KbBuilder::new("demo");
        b.add_fact("http://x/a", "http://x/r", "http://x/b");
        b.add_literal_fact("http://x/a", "http://x/name", Literal::plain("A"));
        b.add_type("http://x/a", "http://x/C");
        let kb = b.build();
        let s = KbStats::of(&kb);
        assert_eq!(s.name, "demo");
        assert_eq!(s.instances, 2);
        assert_eq!(s.classes, 1);
        assert_eq!(s.relations, 2);
        assert_eq!(s.facts, 2);
        assert_eq!(s.literals, 1);
    }

    #[test]
    fn header_and_row_align() {
        let mut b = KbBuilder::new("x");
        b.add_fact("http://x/a", "http://x/r", "http://x/b");
        let s = KbStats::of(&b.build());
        assert_eq!(KbStats::table_header().len(), s.table_row().len());
    }
}
