//! KB deltas: incremental fact additions and removals.
//!
//! Real knowledge bases change continuously; re-ingesting the full dump
//! (and re-running the whole alignment) on every update throws away the
//! work the snapshot layer made persistent. A [`KbDelta`] captures a batch
//! of changes to one KB — facts to add, facts to remove, with any new
//! terms and relations implied by the added facts — and [`apply`] folds it
//! into an existing [`Kb`](crate::Kb) *incrementally*: only the pair lists, adjacency
//! rows, and functionalities of touched relations and entities are
//! rebuilt, and the [`AppliedDelta`] reports exactly which ids were
//! touched so downstream consumers (the incremental re-aligner in
//! `paris-core`) can seed their dirty sets from it.
//!
//! # Binary format
//!
//! Deltas serialize through the same framing as snapshots
//! ([`snapshot::write_file`](crate::snapshot::write_file), kind =
//! [`SnapshotKind::Delta`]): the payload is the target KB name, then the
//! added and removed fact lists, each fact a `(subject IRI, relation IRI,
//! tagged object term)` triple using the exact term encoding of the KB
//! body — see [`snapshot`](crate::snapshot) for the header layout.
//!
//! # Scope
//!
//! Deltas carry plain facts only. Schema changes (`rdf:type`,
//! `rdfs:subClassOf`, `rdfs:subPropertyOf`) would invalidate the
//! pre-computed deductive closure, so [`KbDelta::add_triple`] rejects them
//! with [`DeltaError::SchemaChange`] — rebuild the KB from source for
//! schema evolution. Removing a fact never un-interns its terms: entity
//! ids are append-only across delta application, which is what keeps
//! previously computed alignment scores addressable.
//!
//! ```
//! use paris_kb::{KbBuilder, delta::{KbDelta, apply}};
//!
//! let mut b = KbBuilder::new("demo");
//! b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
//! let kb = b.build();
//!
//! let mut delta = KbDelta::new("demo");
//! delta.add_fact("http://x/Priscilla", "http://x/bornIn", "http://x/Brooklyn");
//! delta.remove_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
//!
//! let applied = apply(&kb, &delta).unwrap();
//! assert_eq!(applied.kb.num_facts(), 1);
//! assert_eq!(applied.added, 1);
//! assert_eq!(applied.removed, 1);
//! ```

use std::fmt;
use std::path::Path;

use paris_rdf::term::{Iri, Literal, Term};
use paris_rdf::triple::Triple;
use paris_rdf::vocab;

use crate::snapshot::{
    get_term, put_term, read_file, write_file, PayloadReader, PayloadWriter, SnapshotError,
    SnapshotKind,
};

/// One fact at the term level (ids are assigned only when the delta is
/// applied to a concrete KB, since added facts may introduce new terms).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaFact {
    /// Subject resource.
    pub subject: Iri,
    /// Relation (always the forward direction).
    pub relation: Iri,
    /// Object: a resource or a literal.
    pub object: Term,
}

/// A batch of changes to one knowledge base: facts to add and facts to
/// remove. See the [module docs](self) for scope and the binary format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KbDelta {
    /// Name of the KB this delta targets. [`apply`] rejects a mismatch
    /// unless the target is empty (a wildcard delta).
    pub target: String,
    /// Facts to add.
    pub added: Vec<DeltaFact>,
    /// Facts to remove.
    pub removed: Vec<DeltaFact>,
}

/// Everything that can go wrong building or applying a delta.
#[derive(Debug)]
pub enum DeltaError {
    /// The delta contains a schema-changing predicate; deltas carry plain
    /// facts only (the deductive closure would need a full rebuild).
    SchemaChange(String),
    /// The delta names a different KB than the one it is applied to.
    WrongTarget {
        /// The KB the delta was built for.
        delta: String,
        /// The KB it was applied to.
        kb: String,
    },
    /// Reading or writing the binary delta file failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::SchemaChange(pred) => write!(
                f,
                "deltas cannot change the schema (predicate {pred}); rebuild the KB instead"
            ),
            DeltaError::WrongTarget { delta, kb } => {
                write!(f, "delta targets KB '{delta}' but was applied to '{kb}'")
            }
            DeltaError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<SnapshotError> for DeltaError {
    fn from(e: SnapshotError) -> Self {
        DeltaError::Snapshot(e)
    }
}

impl KbDelta {
    /// An empty delta targeting the named KB (`""` targets any KB).
    pub fn new(target: impl Into<String>) -> Self {
        KbDelta {
            target: target.into(),
            added: Vec::new(),
            removed: Vec::new(),
        }
    }

    /// Queues a resource-to-resource fact for addition.
    pub fn add_fact(
        &mut self,
        subject: impl Into<Iri>,
        relation: impl Into<Iri>,
        object: impl Into<Iri>,
    ) {
        self.added.push(DeltaFact {
            subject: subject.into(),
            relation: relation.into(),
            object: Term::Iri(object.into()),
        });
    }

    /// Queues a resource-to-literal fact for addition.
    pub fn add_literal_fact(
        &mut self,
        subject: impl Into<Iri>,
        relation: impl Into<Iri>,
        literal: Literal,
    ) {
        self.added.push(DeltaFact {
            subject: subject.into(),
            relation: relation.into(),
            object: Term::Literal(literal),
        });
    }

    /// Queues a resource-to-resource fact for removal.
    pub fn remove_fact(
        &mut self,
        subject: impl Into<Iri>,
        relation: impl Into<Iri>,
        object: impl Into<Iri>,
    ) {
        self.removed.push(DeltaFact {
            subject: subject.into(),
            relation: relation.into(),
            object: Term::Iri(object.into()),
        });
    }

    /// Queues a resource-to-literal fact for removal.
    pub fn remove_literal_fact(
        &mut self,
        subject: impl Into<Iri>,
        relation: impl Into<Iri>,
        literal: Literal,
    ) {
        self.removed.push(DeltaFact {
            subject: subject.into(),
            relation: relation.into(),
            object: Term::Literal(literal),
        });
    }

    /// Queues one parsed triple for addition (`remove: false`) or removal
    /// (`remove: true`). Schema predicates are rejected — see the
    /// [module docs](self).
    pub fn add_triple(&mut self, triple: &Triple, remove: bool) -> Result<(), DeltaError> {
        match triple.predicate.as_str() {
            vocab::RDF_TYPE | vocab::RDFS_SUBCLASS_OF | vocab::RDFS_SUBPROPERTY_OF => {
                return Err(DeltaError::SchemaChange(
                    triple.predicate.as_str().to_owned(),
                ))
            }
            _ => {}
        }
        let fact = DeltaFact {
            subject: triple.subject.clone(),
            relation: triple.predicate.clone(),
            object: triple.object.clone(),
        };
        if remove {
            self.removed.push(fact);
        } else {
            self.added.push(fact);
        }
        Ok(())
    }

    /// Queues every triple from an iterator, all as additions or all as
    /// removals. Fails on the first schema predicate.
    pub fn add_triples<'t>(
        &mut self,
        triples: impl IntoIterator<Item = &'t Triple>,
        remove: bool,
    ) -> Result<(), DeltaError> {
        for t in triples {
            self.add_triple(t, remove)?;
        }
        Ok(())
    }

    /// Total number of queued changes.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// True when no changes are queued.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    // ------------------------------------------------------------------
    // Binary encoding
    // ------------------------------------------------------------------

    /// Appends the delta body to a payload.
    pub fn encode(&self, w: &mut PayloadWriter) {
        w.put_str(&self.target);
        for list in [&self.added, &self.removed] {
            w.put_u64(list.len() as u64);
            for fact in list {
                w.put_str(fact.subject.as_str());
                w.put_str(fact.relation.as_str());
                put_term(w, &fact.object);
            }
        }
    }

    /// Decodes a delta body written by [`encode`](Self::encode).
    pub fn decode(r: &mut PayloadReader<'_>) -> Result<Self, SnapshotError> {
        fn decode_list(r: &mut PayloadReader<'_>) -> Result<Vec<DeltaFact>, SnapshotError> {
            let n = r.get_len()?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let subject = Iri::new(r.get_str()?);
                let relation = Iri::new(r.get_str()?);
                let object = get_term(r)?;
                list.push(DeltaFact {
                    subject,
                    relation,
                    object,
                });
            }
            Ok(list)
        }
        let target = r.get_str()?.to_owned();
        let added = decode_list(r)?;
        let removed = decode_list(r)?;
        Ok(KbDelta {
            target,
            added,
            removed,
        })
    }

    /// Serializes into framed bytes (kind [`SnapshotKind::Delta`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = PayloadWriter::new();
        self.encode(&mut payload);
        let mut out = crate::snapshot::frame_header(SnapshotKind::Delta, payload.bytes());
        out.extend_from_slice(payload.bytes());
        out
    }

    /// Writes a framed delta file (atomically, like snapshots).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut payload = PayloadWriter::new();
        self.encode(&mut payload);
        write_file(path, SnapshotKind::Delta, payload.bytes())
    }

    /// Loads and validates a framed delta file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let (kind, payload) = read_file(path)?;
        if kind != SnapshotKind::Delta {
            return Err(SnapshotError::corrupt(format!(
                "expected a KB delta, found a {}",
                kind.name()
            )));
        }
        let mut r = PayloadReader::new(&payload);
        let delta = KbDelta::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::corrupt("trailing bytes after delta body"));
        }
        Ok(delta)
    }
}

pub use crate::delta_apply::{
    apply, apply_owned, apply_owned_with_functionality, apply_with_functionality, AppliedDelta,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use crate::stats::KbStats;
    use crate::store::Kb;

    fn base_kb() -> Kb {
        let mut b = KbBuilder::new("base");
        b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        b.add_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
        b.add_literal_fact("http://x/Elvis", "http://x/name", Literal::plain("Elvis"));
        b.add_type("http://x/Elvis", "http://x/Singer");
        b.build()
    }

    #[test]
    fn delta_round_trips_through_bytes() {
        let mut delta = KbDelta::new("base");
        delta.add_fact("http://x/a", "http://x/r", "http://x/b");
        delta.add_literal_fact(
            "http://x/a",
            "http://x/name",
            Literal::lang_tagged("a", "en"),
        );
        delta.remove_literal_fact(
            "http://x/b",
            "http://x/born",
            Literal::typed("1935", "http://www.w3.org/2001/XMLSchema#gYear"),
        );
        let path = std::env::temp_dir().join("paris_delta_unit_roundtrip.delta");
        delta.save(&path).unwrap();
        let loaded = KbDelta::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, delta);
    }

    #[test]
    fn delta_file_kind_is_checked() {
        let kb = base_kb();
        let path = std::env::temp_dir().join("paris_delta_unit_kind.snap");
        crate::snapshot::save_kb(&kb, &path).unwrap();
        let err = KbDelta::load(&path).unwrap_err();
        assert!(err.to_string().contains("expected a KB delta"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_delta_is_rejected() {
        let mut delta = KbDelta::new("base");
        delta.add_fact("http://x/a", "http://x/r", "http://x/b");
        let mut bytes = delta.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = crate::snapshot::read_payload(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }));
    }

    #[test]
    fn apply_adds_and_removes_facts() {
        let kb = base_kb();
        let elvis = kb.entity_by_iri("http://x/Elvis").unwrap();
        let born_in = kb.relation_by_iri("http://x/bornIn").unwrap();
        assert_eq!(kb.num_pairs(born_in), 2);

        let mut delta = KbDelta::new("base");
        delta.remove_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
        delta.add_fact("http://x/Elvis", "http://x/diedIn", "http://x/Memphis");
        let applied = apply(&kb, &delta).unwrap();
        assert_eq!(applied.added, 1);
        assert_eq!(applied.removed, 1);

        let new = &applied.kb;
        assert_eq!(
            new.num_pairs(new.relation_by_iri("http://x/bornIn").unwrap()),
            1
        );
        let died_in = new.relation_by_iri("http://x/diedIn").unwrap();
        let memphis = new.entity_by_iri("http://x/Memphis").unwrap();
        assert!(new.facts(elvis).contains(&(died_in, memphis)));
        assert!(new.facts(memphis).contains(&(died_in.inverse(), elvis)));
        // Carl keeps his id but lost his fact.
        let carl = new.entity_by_iri("http://x/Carl").unwrap();
        assert!(new.facts(carl).is_empty());
        // Terms are never un-interned.
        assert_eq!(carl, kb.entity_by_iri("http://x/Carl").unwrap());
    }

    #[test]
    fn entity_ids_are_stable_and_appended() {
        let kb = base_kb();
        let mut delta = KbDelta::new("base");
        delta.add_fact("http://x/New", "http://x/bornIn", "http://x/Tupelo");
        let applied = apply(&kb, &delta).unwrap();
        for e in kb.entities() {
            assert_eq!(kb.term(e), applied.kb.term(e), "{e:?} must keep its term");
        }
        let new = applied.kb.entity_by_iri("http://x/New").unwrap();
        assert_eq!(new.index(), kb.num_entities());
        assert!(applied.touched_entities.contains(&new));
    }

    #[test]
    fn functionalities_refresh_only_touched_relations() {
        let kb = base_kb();
        let born_in = kb.relation_by_iri("http://x/bornIn").unwrap();
        // Two people born in one city: fun⁻¹ = 1/2.
        assert_eq!(kb.functionality(born_in.inverse()), 0.5);
        let mut delta = KbDelta::new("base");
        delta.remove_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
        let applied = apply(&kb, &delta).unwrap();
        // Now one person, one city: fun⁻¹ = 1.
        assert_eq!(applied.kb.functionality(born_in.inverse()), 1.0);
        assert_eq!(applied.touched_relations, vec![born_in]);
        // The untouched relation keeps its value.
        let name = kb.relation_by_iri("http://x/name").unwrap();
        assert_eq!(applied.kb.functionality(name), kb.functionality(name));
    }

    #[test]
    fn duplicate_adds_and_absent_removes_are_noops() {
        let kb = base_kb();
        let mut delta = KbDelta::new("base");
        delta.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        delta.remove_fact("http://x/Nobody", "http://x/bornIn", "http://x/Nowhere");
        delta.remove_fact("http://x/Elvis", "http://x/unknownRel", "http://x/Tupelo");
        let applied = apply(&kb, &delta).unwrap();
        assert_eq!(applied.added, 0);
        assert_eq!(applied.removed, 0);
        assert_eq!(applied.touched_relations, Vec::new());
        assert_eq!(KbStats::of(&applied.kb), KbStats::of(&kb));
    }

    #[test]
    fn delta_matches_full_rebuild() {
        // Applying a delta must produce the same observable KB as building
        // from the union of facts from scratch.
        let kb = base_kb();
        let mut delta = KbDelta::new("base");
        delta.add_fact("http://x/Carl", "http://x/diedIn", "http://x/Memphis");
        delta.add_literal_fact("http://x/Carl", "http://x/name", Literal::plain("Carl"));
        delta.remove_literal_fact("http://x/Elvis", "http://x/name", Literal::plain("Elvis"));
        let applied = apply(&kb, &delta).unwrap();

        let mut b = KbBuilder::new("base");
        b.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        b.add_fact("http://x/Carl", "http://x/bornIn", "http://x/Tupelo");
        b.add_type("http://x/Elvis", "http://x/Singer");
        b.add_fact("http://x/Carl", "http://x/diedIn", "http://x/Memphis");
        b.add_literal_fact("http://x/Carl", "http://x/name", Literal::plain("Carl"));
        let rebuilt = b.build();

        assert_eq!(applied.kb.num_facts(), rebuilt.num_facts());
        for e in rebuilt.entities() {
            let via_delta = applied.kb.entity(rebuilt.term(e)).unwrap();
            let mut a: Vec<String> = applied
                .kb
                .facts(via_delta)
                .iter()
                .map(|&(r, y)| format!("{} {}", applied.kb.relation_display(r), applied.kb.term(y)))
                .collect();
            let mut b: Vec<String> = rebuilt
                .facts(e)
                .iter()
                .map(|&(r, y)| format!("{} {}", rebuilt.relation_display(r), rebuilt.term(y)))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "facts of {}", rebuilt.term(e));
        }
        for r in rebuilt.directed_relations() {
            let via_delta = applied
                .kb
                .relation_by_iri(rebuilt.relation_iri(r).as_str())
                .unwrap();
            let via_delta = if r.is_inverse() {
                via_delta.inverse()
            } else {
                via_delta
            };
            assert!(
                (applied.kb.functionality(via_delta) - rebuilt.functionality(r)).abs() < 1e-12,
                "functionality of {}",
                rebuilt.relation_display(r)
            );
        }
    }

    #[test]
    fn schema_predicates_are_rejected() {
        let mut delta = KbDelta::new("base");
        let t = Triple::new(
            Iri::new("http://x/e"),
            Iri::new(vocab::RDF_TYPE),
            Term::Iri(Iri::new("http://x/C")),
        );
        let err = delta.add_triple(&t, false).unwrap_err();
        assert!(matches!(err, DeltaError::SchemaChange(_)), "{err}");
        assert!(delta.is_empty());
    }

    #[test]
    fn wrong_target_is_rejected_and_wildcard_accepted() {
        let kb = base_kb();
        let mut delta = KbDelta::new("other");
        delta.add_fact("http://x/a", "http://x/r", "http://x/b");
        assert!(matches!(
            apply(&kb, &delta),
            Err(DeltaError::WrongTarget { .. })
        ));
        let mut wildcard = KbDelta::new("");
        wildcard.add_fact("http://x/a", "http://x/r", "http://x/b");
        assert!(apply(&kb, &wildcard).is_ok());
    }

    #[test]
    fn removed_then_added_fact_survives() {
        let kb = base_kb();
        let mut delta = KbDelta::new("base");
        delta.remove_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        delta.add_fact("http://x/Elvis", "http://x/bornIn", "http://x/Tupelo");
        let applied = apply(&kb, &delta).unwrap();
        let born_in = applied.kb.relation_by_iri("http://x/bornIn").unwrap();
        assert_eq!(
            applied.kb.num_pairs(born_in),
            2,
            "remove-then-add keeps the fact"
        );
    }
}
