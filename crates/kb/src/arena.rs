//! Byte arenas backing zero-copy snapshots.
//!
//! A v2 snapshot (see [`crate::snapshot_v2`]) is read *in place*: the
//! accessor views borrow byte ranges out of one immutable buffer instead
//! of decoding records into owned structures. [`Arena`] is that buffer.
//! On Unix it memory-maps the file (`mmap`, declared here directly — the
//! workspace builds without external crates, so there is no `libc` to
//! lean on), which makes opening a snapshot O(1) in the file size and
//! lets the OS page cache own the cold data: unread sections never enter
//! this process's resident set, and the kernel can reclaim clean pages
//! under memory pressure. On other platforms, or when `mmap` fails
//! (exotic filesystems, resource limits), it falls back to reading the
//! whole file into a `Vec<u8>` — same API, eager cost.
//!
//! Safety note: a mapped file must not be truncated in place while the
//! arena is alive (the kernel would deliver `SIGBUS` on access). The
//! snapshot writer only ever replaces files atomically via
//! rename — the old inode stays intact until the last mapping drops — so
//! the serving pipeline never hits this; operators editing snapshot
//! files in place must follow the same rule.

use std::fmt;
use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An immutable byte buffer holding one snapshot file: either a private
/// read-only memory mapping or an owned heap copy.
pub enum Arena {
    /// A `mmap`ed region (Unix only). Unmapped on drop.
    #[cfg(unix)]
    Mapped {
        /// Start of the mapping. Never null; valid for `len` bytes for
        /// the lifetime of the arena.
        ptr: *const u8,
        /// Length of the mapping in bytes (> 0).
        len: usize,
    },
    /// An owned in-memory copy (fallback path and `from_vec`).
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE and never mutated or
// remapped after construction; sharing immutable bytes across threads is
// sound. The Heap variant is a plain Vec.
#[cfg(unix)]
unsafe impl Send for Arena {}
#[cfg(unix)]
unsafe impl Sync for Arena {}

impl Arena {
    /// Opens a file as an arena, preferring `mmap` on Unix.
    ///
    /// Falls back to an eager read when the platform has no mmap, the
    /// file is empty (zero-length mappings are invalid), or the `mmap`
    /// call itself fails.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Arena> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large for this address space",
            ));
        }
        Arena::map_file(&file, len as usize)
    }

    /// Wraps an in-memory buffer (used by tests and the non-file paths).
    pub fn from_vec(bytes: Vec<u8>) -> Arena {
        Arena::Heap(bytes)
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> io::Result<Arena> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Arena::Heap(Vec::new()));
        }
        // SAFETY: we pass a null addr hint, a positive length, read-only
        // protection, and a file descriptor that lives across the call
        // (mappings outlive their fd by design). The result is checked
        // against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Arena::read_file(file, len);
        }
        Ok(Arena::Mapped {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn map_file(file: &File, len: usize) -> io::Result<Arena> {
        Arena::read_file(file, len)
    }

    fn read_file(mut file: &File, len: usize) -> io::Result<Arena> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Arena::Heap(buf))
    }

    /// The buffer contents.
    pub fn bytes(&self) -> &[u8] {
        match self {
            // SAFETY: ptr/len come from a successful mmap and the region
            // stays mapped until drop.
            #[cfg(unix)]
            Arena::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Arena::Heap(v) => v,
        }
    }

    /// True when this arena is a memory mapping (its pages belong to the
    /// OS page cache, not this process's allocator).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Arena::Mapped { .. } => true,
            Arena::Heap(_) => false,
        }
    }
}

impl Deref for Arena {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        match self {
            #[cfg(unix)]
            Arena::Mapped { ptr, len } => {
                // SAFETY: exactly the region returned by mmap, unmapped
                // exactly once.
                unsafe {
                    sys::munmap(*ptr as *mut std::os::raw::c_void, *len);
                }
            }
            Arena::Heap(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_maps_file_contents() {
        let path = std::env::temp_dir().join("paris_arena_unit_test.bin");
        std::fs::write(&path, b"hello arena").unwrap();
        let arena = Arena::open(&path).unwrap();
        assert_eq!(&arena[..], b"hello arena");
        #[cfg(unix)]
        assert!(arena.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_an_empty_heap_arena() {
        let path = std::env::temp_dir().join("paris_arena_unit_test_empty.bin");
        std::fs::write(&path, b"").unwrap();
        let arena = Arena::open(&path).unwrap();
        assert!(arena.is_empty());
        assert!(!arena.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_vec_round_trips() {
        let arena = Arena::from_vec(vec![1, 2, 3]);
        assert_eq!(&arena[..], &[1, 2, 3]);
        assert!(!arena.is_mapped());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Arena::open("/definitely/not/here.bin").is_err());
    }

    #[test]
    fn arenas_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arena>();
    }
}
