//! Applying a [`KbDelta`] to an in-memory [`Kb`].
//!
//! Split out of [`crate::delta`] so that module stays a pure wire codec:
//! the workspace audit's `no-panic-decode` rule (see docs/CORRECTNESS.md)
//! covers the decode modules file-by-file, and apply-time index surgery —
//! which works entirely on ids interned in this very pass, where direct
//! indexing is in-bounds by construction — lives outside that boundary.
//! The public paths are unchanged: everything here is re-exported through
//! `paris_kb::delta`.

use crate::delta::{DeltaError, KbDelta};
use crate::functionality::{functionality_of, FunctionalityVariant};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{EntityId, EntityKind, RelationId};
use crate::store::Kb;
use paris_rdf::term::Term;

/// The result of applying a [`KbDelta`]: the updated KB plus the dirty
/// sets an incremental re-aligner needs.
#[derive(Debug)]
pub struct AppliedDelta {
    /// The updated knowledge base. Entity and relation ids of the input KB
    /// are preserved; new terms and relations get appended ids.
    pub kb: Kb,
    /// Entities whose adjacency changed, plus all newly interned entities.
    /// Sorted, deduplicated.
    pub touched_entities: Vec<EntityId>,
    /// The subset of [`touched_entities`](Self::touched_entities) whose
    /// *resource* adjacency changed (an added/removed fact whose object is
    /// not a literal). Literal-attribute changes reach the aligner only
    /// through the literal bridge, so incremental re-alignment seeds
    /// cross-KB dirtiness from this narrower set. Sorted, deduplicated.
    pub resource_touched: Vec<EntityId>,
    /// Forward ids of base relations whose pair list changed (the inverse
    /// direction is implied). Sorted, deduplicated.
    pub touched_relations: Vec<RelationId>,
    /// Facts actually added (duplicates of existing facts are no-ops).
    pub added: usize,
    /// Facts actually removed (removals of absent facts are no-ops).
    pub removed: usize,
}

/// Applies a delta to a KB, producing an updated KB and the touched-id
/// sets. Functionalities are refreshed with the paper's default
/// (harmonic-mean) definition; use [`apply_with_functionality`] to match
/// an ablation variant.
///
/// This clones the KB first; the serving path, which owns its KBs, uses
/// [`apply_owned`] to mutate in place.
pub fn apply(kb: &Kb, delta: &KbDelta) -> Result<AppliedDelta, DeltaError> {
    apply_owned(kb.clone(), delta)
}

/// [`apply`] without the clone: consumes the KB and updates its indexes
/// in place (the KB is dropped on error).
pub fn apply_owned(kb: Kb, delta: &KbDelta) -> Result<AppliedDelta, DeltaError> {
    apply_owned_with_functionality(kb, delta, FunctionalityVariant::HarmonicMean)
}

/// [`apply`] with an explicit functionality definition for the refreshed
/// relations (must match the variant the KB was built with).
pub fn apply_with_functionality(
    kb: &Kb,
    delta: &KbDelta,
    variant: FunctionalityVariant,
) -> Result<AppliedDelta, DeltaError> {
    apply_owned_with_functionality(kb.clone(), delta, variant)
}

/// [`apply_owned`] with an explicit functionality definition.
pub fn apply_owned_with_functionality(
    mut kb: Kb,
    delta: &KbDelta,
    variant: FunctionalityVariant,
) -> Result<AppliedDelta, DeltaError> {
    if !delta.target.is_empty() && delta.target != kb.name {
        return Err(DeltaError::WrongTarget {
            delta: delta.target.clone(),
            kb: kb.name.clone(),
        });
    }

    // Mutate the fact indexes in place; schema tables carry over
    // untouched (deltas are facts-only, so the closure is still valid).
    let terms = &mut kb.terms;
    let kinds = &mut kb.kinds;
    let term_index = &mut kb.term_index;
    let relation_names = &mut kb.relation_names;
    let relation_index = &mut kb.relation_index;
    let pairs = &mut kb.pairs;
    let adj = &mut kb.adj;
    let fun = &mut kb.fun;

    let first_new_entity = terms.len();
    fn intern(
        term: &Term,
        terms: &mut Vec<Term>,
        kinds: &mut Vec<EntityKind>,
        term_index: &mut FxHashMap<Term, EntityId>,
        adj: &mut Vec<Vec<(RelationId, EntityId)>>,
    ) -> EntityId {
        if let Some(&id) = term_index.get(term) {
            return id;
        }
        let id = EntityId::from_index(terms.len());
        terms.push(term.clone());
        kinds.push(if term.is_literal() {
            EntityKind::Literal
        } else {
            EntityKind::Instance
        });
        adj.push(Vec::new());
        term_index.insert(term.clone(), id);
        id
    }

    // Resolve removals first: a fact that is both removed and (re-)added
    // ends up present. Unresolvable removals (unknown term or relation)
    // are no-ops by construction — the fact cannot exist.
    let mut removals: FxHashMap<usize, FxHashSet<(EntityId, EntityId)>> = FxHashMap::default();
    for fact in &delta.removed {
        let (Some(&s), Some(&base)) = (
            term_index.get(&Term::Iri(fact.subject.clone())),
            relation_index.get(&fact.relation),
        ) else {
            continue;
        };
        let Some(&o) = term_index.get(&fact.object) else {
            continue;
        };
        removals.entry(base as usize).or_default().insert((s, o));
    }

    let mut additions: FxHashMap<usize, Vec<(EntityId, EntityId)>> = FxHashMap::default();
    for fact in &delta.added {
        let s = intern(
            &Term::Iri(fact.subject.clone()),
            terms,
            kinds,
            term_index,
            adj,
        );
        let o = intern(&fact.object, terms, kinds, term_index, adj);
        let base = match relation_index.get(&fact.relation) {
            Some(&b) => b as usize,
            None => {
                let b = u32::try_from(relation_names.len()).expect("relation count exceeds u32");
                relation_names.push(fact.relation.clone());
                relation_index.insert(fact.relation.clone(), b);
                pairs.push(Vec::new());
                // New relation: no pairs yet, functionality defaults to 1.
                fun.extend([1.0, 1.0]);
                b as usize
            }
        };
        additions.entry(base).or_default().push((s, o));
    }

    // Rewrite the pair list and adjacency of every touched relation.
    let mut touched_entities: FxHashSet<EntityId> = (first_new_entity..terms.len())
        .map(EntityId::from_index)
        .collect();
    let mut resource_touched: FxHashSet<EntityId> = FxHashSet::default();
    let mut touched_bases: FxHashSet<usize> = FxHashSet::default();
    let mut resort: FxHashSet<EntityId> = FxHashSet::default();
    let mut added_count = 0usize;
    let mut removed_count = 0usize;

    let all_bases: FxHashSet<usize> = removals.keys().chain(additions.keys()).copied().collect();
    for base in all_bases {
        let fwd = RelationId::forward(base);
        let inv = fwd.inverse();
        let list = &mut pairs[base];
        let mut changed = false;

        if let Some(remove_set) = removals.get(&base) {
            list.retain(|pair| {
                if remove_set.contains(pair) {
                    let (x, y) = *pair;
                    retain_out(&mut adj[x.index()], (fwd, y));
                    retain_out(&mut adj[y.index()], (inv, x));
                    touched_entities.insert(x);
                    touched_entities.insert(y);
                    if kinds[y.index()] != EntityKind::Literal {
                        resource_touched.insert(x);
                        resource_touched.insert(y);
                    }
                    removed_count += 1;
                    changed = true;
                    false
                } else {
                    true
                }
            });
        }

        if let Some(adds) = additions.get(&base) {
            let existing: FxHashSet<(EntityId, EntityId)> = list.iter().copied().collect();
            let mut fresh: Vec<(EntityId, EntityId)> = adds
                .iter()
                .copied()
                .filter(|p| !existing.contains(p))
                .collect();
            fresh.sort_unstable();
            fresh.dedup();
            for &(x, y) in &fresh {
                adj[x.index()].push((fwd, y));
                adj[y.index()].push((inv, x));
                touched_entities.insert(x);
                touched_entities.insert(y);
                if kinds[y.index()] != EntityKind::Literal {
                    resource_touched.insert(x);
                    resource_touched.insert(y);
                }
                resort.insert(x);
                resort.insert(y);
                added_count += 1;
                changed = true;
            }
            list.extend(fresh);
            list.sort_unstable();
        }

        if changed {
            touched_bases.insert(base);
        }
    }
    for e in resort {
        adj[e.index()].sort_unstable();
    }

    // Refresh functionalities of touched relations only.
    for &base in &touched_bases {
        let fwd = RelationId::forward(base);
        let (f_fwd, f_inv) = functionality_of(&kb, base, variant);
        kb.fun[fwd.directed_index()] = f_fwd;
        kb.fun[fwd.inverse().directed_index()] = f_inv;
    }

    let mut touched_entities: Vec<EntityId> = touched_entities.into_iter().collect();
    touched_entities.sort_unstable();
    let mut resource_touched: Vec<EntityId> = resource_touched.into_iter().collect();
    resource_touched.sort_unstable();
    let mut touched_relations: Vec<RelationId> =
        touched_bases.into_iter().map(RelationId::forward).collect();
    touched_relations.sort_unstable();

    Ok(AppliedDelta {
        kb,
        touched_entities,
        resource_touched,
        touched_relations,
        added: added_count,
        removed: removed_count,
    })
}

/// Removes one `(relation, entity)` entry from a sorted adjacency row.
fn retain_out(row: &mut Vec<(RelationId, EntityId)>, entry: (RelationId, EntityId)) {
    if let Ok(pos) = row.binary_search(&entry) {
        row.remove(pos);
    }
}
