//! Transitive closure of taxonomy DAGs (with cycle tolerance).
//!
//! The paper assumes ontologies come in their deductive closure (§3): all
//! statements implied by `rdfs:subClassOf` and `rdfs:subPropertyOf` are
//! materialized. Real dumps are not closed, so we close them at build time.
//! Cycles (`A ⊑ B ⊑ A`) occasionally occur in real taxonomies; the
//! memoized DFS below treats every node on a cycle as reaching the whole
//! cycle minus itself, and never loops.

/// Computes, for each of `n` nodes, the set of *strict* ancestors reachable
/// through `edges` (pairs `(child, parent)`), sorted ascending.
///
/// Runs a memoized DFS; complexity `O(V + E + output)`.
pub fn close_taxonomy(
    n: usize,
    edges: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (child, parent) in edges {
        if child != parent {
            parents[child].push(parent);
        }
    }
    for p in &mut parents {
        p.sort_unstable();
        p.dedup();
    }

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InProgress,
        Done,
    }

    let mut state = vec![State::Unvisited; n];
    let mut closure: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut cycle_detected = false;
    // Iterative DFS so deep taxonomies (yago's is ~20 levels, but synthetic
    // ones can be deeper) cannot overflow the stack.
    for root in 0..n {
        if state[root] == State::Done {
            continue;
        }
        // Stack frames: (node, next parent index to process).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = State::InProgress;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < parents[node].len() {
                let parent = parents[node][*next];
                *next += 1;
                match state[parent] {
                    State::Unvisited => {
                        state[parent] = State::InProgress;
                        stack.push((parent, 0));
                    }
                    // On a cycle: the parent's closure is incomplete; the
                    // repair rounds below finish the job.
                    State::InProgress => cycle_detected = true,
                    State::Done => {}
                }
            } else {
                // All parents fully processed (or on-cycle): fold their
                // closures into ours.
                let mut acc: Vec<usize> = Vec::new();
                for &parent in &parents[node] {
                    acc.push(parent);
                    acc.extend_from_slice(&closure[parent]);
                }
                acc.sort_unstable();
                acc.dedup();
                acc.retain(|&a| a != node); // strict ancestors only
                closure[node] = acc;
                state[node] = State::Done;
                stack.pop();
            }
        }
    }

    if !cycle_detected {
        return closure;
    }

    // Cycles truncated some closures; iterate propagation to a fixpoint.
    // Bounded by the longest cycle — real taxonomies are almost acyclic, so
    // this runs 1–2 rounds on data that triggers it at all.
    loop {
        let mut changed = false;
        for node in 0..n {
            let current: crate::fxhash::FxHashSet<usize> = closure[node].iter().copied().collect();
            let mut extra: Vec<usize> = Vec::new();
            for &a in &closure[node] {
                for &aa in &closure[a] {
                    if aa != node && !current.contains(&aa) && !extra.contains(&aa) {
                        extra.push(aa);
                    }
                }
            }
            if !extra.is_empty() {
                closure[node].extend(extra);
                closure[node].sort_unstable();
                changed = true;
            }
        }
        if !changed {
            return closure;
        }
    }
}

/// Returns all nodes reachable from `start` (excluding `start` unless it is
/// on a cycle through itself) given an adjacency list.
pub fn reachable_from(adjacency: &[Vec<usize>], start: usize) -> Vec<usize> {
    let mut seen = vec![false; adjacency.len()];
    let mut stack = vec![start];
    let mut out = Vec::new();
    while let Some(node) = stack.pop() {
        for &next in &adjacency[node] {
            if !seen[next] {
                seen[next] = true;
                out.push(next);
                stack.push(next);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_closure() {
        // 0 ⊑ 1 ⊑ 2 ⊑ 3
        let c = close_taxonomy(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(c[0], vec![1, 2, 3]);
        assert_eq!(c[1], vec![2, 3]);
        assert_eq!(c[2], vec![3]);
        assert!(c[3].is_empty());
    }

    #[test]
    fn diamond_closure() {
        // 0 ⊑ {1, 2}, both ⊑ 3
        let c = close_taxonomy(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(c[0], vec![1, 2, 3]);
        assert_eq!(c[1], vec![3]);
        assert_eq!(c[2], vec![3]);
    }

    #[test]
    fn two_cycle() {
        let c = close_taxonomy(2, [(0, 1), (1, 0)]);
        assert_eq!(c[0], vec![1]);
        assert_eq!(c[1], vec![0]);
    }

    #[test]
    fn three_cycle_with_tail() {
        // 0 → 1 → 2 → 0, and 3 → 0.
        let c = close_taxonomy(4, [(0, 1), (1, 2), (2, 0), (3, 0)]);
        assert_eq!(c[0], vec![1, 2]);
        assert_eq!(c[1], vec![0, 2]);
        assert_eq!(c[2], vec![0, 1]);
        assert_eq!(c[3], vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_is_ignored() {
        let c = close_taxonomy(2, [(0, 0), (0, 1)]);
        assert_eq!(c[0], vec![1]);
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let c = close_taxonomy(3, [(0, 1), (0, 1), (1, 2), (1, 2)]);
        assert_eq!(c[0], vec![1, 2]);
    }

    #[test]
    fn empty_graph() {
        let c = close_taxonomy(3, std::iter::empty());
        assert!(c.iter().all(Vec::is_empty));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // Deep enough that a recursive DFS would blow the 8 MiB stack; the
        // iterative implementation must not. (Closures are materialized, so
        // memory bounds the workable chain length — 2 000 is plenty deep.)
        let n = 2_000;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let c = close_taxonomy(n, edges);
        assert_eq!(c[0].len(), n - 1);
        assert_eq!(c[n - 2], vec![n - 1]);
    }

    #[test]
    fn reachable_from_basics() {
        let adj = vec![vec![1], vec![2], vec![], vec![0]];
        assert_eq!(reachable_from(&adj, 0), vec![1, 2]);
        assert_eq!(reachable_from(&adj, 3), vec![0, 1, 2]);
        assert_eq!(reachable_from(&adj, 2), Vec::<usize>::new());
    }
}
