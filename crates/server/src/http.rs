//! A deliberately small HTTP/1.1 implementation over `std::io`.
//!
//! The workspace's no-external-dependency rule extends to the serving
//! layer, so this module hand-rolls exactly the subset the daemon needs:
//! request-line + header parsing, `Content-Length` bodies, query-string
//! splitting with percent-decoding, and response framing with keep-alive.
//! Everything is bounds-limited so a malicious peer cannot balloon
//! memory: 8 KiB per line, 100 headers, 1 MiB bodies.

use std::io::{BufRead, Write};

/// Upper bound on one request line or header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 100;
/// Upper bound on a request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names with raw values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// True for `HTTP/1.0` requests, whose connections default to close.
    pub http10: bool,
}

impl Request {
    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should close after this request: an
    /// explicit `Connection` header wins; otherwise HTTP/1.1 defaults to
    /// keep-alive and HTTP/1.0 to close.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http10,
        }
    }

    /// Whether the request's `If-None-Match` validator matches `etag`
    /// (either exactly, ignoring quotes, or via `*`) — if so, a cacheable
    /// `200` should be served as a body-less `304`.
    pub fn if_none_match_matches(&self, etag: &str) -> bool {
        self.header("if-none-match").is_some_and(|header| {
            header.split(',').map(str::trim).any(|candidate| {
                candidate == "*"
                    || candidate == etag
                    || candidate.trim_matches('"') == etag.trim_matches('"')
            })
        })
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending a request.
    ConnectionClosed,
    /// Transport failure.
    Io(std::io::Error),
    /// Malformed request; the message is safe to echo to the client.
    Malformed(String),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn read_line(r: &mut impl BufRead) -> Result<Option<String>, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::Malformed("connection closed mid-line".into()));
            }
            _ => {
                let [b] = byte;
                if b == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| ParseError::Malformed("non-UTF-8 header line".into()));
                }
                if line.len() >= MAX_LINE {
                    return Err(ParseError::Malformed("header line too long".into()));
                }
                line.push(b);
            }
        }
    }
}

/// Reads one request from the stream. `Err(ConnectionClosed)` means the
/// peer hung up cleanly between requests (normal for keep-alive).
pub fn read_request(r: &mut impl BufRead) -> Result<Request, ParseError> {
    let request_line = match read_line(r)? {
        None => return Err(ParseError::ConnectionClosed),
        Some(l) if l.is_empty() => return Err(ParseError::Malformed("empty request line".into())),
        Some(l) => l,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing path".into()))?;
    let http10 = match parts.next() {
        Some("HTTP/1.0") => true,
        Some(v) if v.starts_with("HTTP/1.") => false,
        _ => return Err(ParseError::Malformed("expected an HTTP/1.x request".into())),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?
            .ok_or_else(|| ParseError::Malformed("connection closed in headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    // Chunked (or any other) transfer coding is not implemented; silently
    // treating the body as empty would desynchronize the keep-alive
    // stream (request smuggling), so refuse and close instead.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ParseError::Malformed(
            "transfer-encoding is not supported; send a Content-Length body".into(),
        ));
    }
    // Like Transfer-Encoding above, conflicting duplicate Content-Length
    // values would let two framing interpretations of the same bytes
    // coexist (request smuggling); reject them outright.
    let mut lengths = headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v);
    let content_length: usize = match lengths.next() {
        Some(v) => {
            if lengths.any(|other| other != v) {
                return Err(ParseError::Malformed(
                    "conflicting duplicate content-length headers".into(),
                ));
            }
            v.parse()
                .map_err(|_| ParseError::Malformed(format!("bad content-length '{v}'")))?
        }
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(ParseError::Malformed(format!(
            "body of {content_length} bytes is too large"
        )));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path: percent_decode(path),
        query,
        headers,
        body,
        http10,
    })
}

/// Splits and percent-decodes an `application/x-www-form-urlencoded`
/// string (also the format of a URL query).
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Percent-decoding with `+` treated as space (form encoding).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One HTTP response, always `Content-Length`-framed. The body is
/// either in-memory bytes or — for snapshot transfers — streamed
/// straight from an open file, never buffered whole.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// Response body (ignored while `stream` is set).
    pub body: Vec<u8>,
    /// Value of an `Allow` header (RFC 9110 requires one on every 405).
    pub allow: Option<&'static str>,
    /// Value of an `ETag` header (quoted, per RFC 9110).
    pub etag: Option<String>,
    /// Additional headers (e.g. the deprecation `Warning` on legacy
    /// routes). Names are static; values must not contain CR/LF.
    pub extra_headers: Vec<(&'static str, String)>,
    /// When set, exactly this many bytes are streamed from the file (in
    /// 64 KiB chunks) instead of writing `body`. A short file aborts the
    /// write with an error, which closes the connection — the peer sees
    /// a truncated transfer, never silently reframed bytes.
    pub stream: Option<(std::fs::File, u64)>,
}

impl Response {
    fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type,
            body,
            allow: None,
            etag: None,
            extra_headers: Vec::new(),
            stream: None,
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status, "application/json", body.into().into_bytes())
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// A binary response streamed from an open file (`len` bytes from
    /// the file's current position).
    pub fn file_stream(file: std::fs::File, len: u64) -> Self {
        let mut r = Response::new(200, "application/octet-stream", Vec::new());
        r.stream = Some((file, len));
        r
    }

    /// An empty `304 Not Modified` carrying the entity's `ETag`.
    pub fn not_modified(etag: impl Into<String>) -> Self {
        Response::new(304, "application/json", Vec::new()).with_etag(etag)
    }

    /// Attaches an `Allow` header (comma-separated method list).
    pub fn with_allow(mut self, methods: &'static str) -> Self {
        self.allow = Some(methods);
        self
    }

    /// Attaches an `ETag` header (the value must already be quoted).
    pub fn with_etag(mut self, etag: impl Into<String>) -> Self {
        self.etag = Some(etag.into());
        self
    }

    /// Attaches an arbitrary additional header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            403 => "Forbidden",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Writes the response; `keep_alive` selects the `Connection` header.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let length = match &self.stream {
            Some((_, len)) => *len,
            None => self.body.len() as u64,
        };
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            length,
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        if let Some(allow) = self.allow {
            write!(w, "Allow: {allow}\r\n")?;
        }
        if let Some(etag) = &self.etag {
            write!(w, "ETag: {etag}\r\n")?;
        }
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        match &self.stream {
            Some((file, len)) => copy_exactly(file, w, *len)?,
            None => w.write_all(&self.body)?,
        }
        w.flush()
    }
}

/// Streams exactly `len` bytes from `file` to `w` in 64 KiB chunks.
/// Running out of file bytes early is an error (the `Content-Length`
/// promise is already on the wire).
fn copy_exactly(mut file: &std::fs::File, w: &mut impl Write, len: u64) -> std::io::Result<()> {
    use std::io::Read;
    let mut buf = [0u8; 64 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let want = buf
            .len()
            .min(usize::try_from(remaining).unwrap_or(usize::MAX));
        let got = file.read(buf.get_mut(..want).unwrap_or_default())?;
        if got == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "snapshot file shorter than its advertised length",
            ));
        }
        w.write_all(buf.get(..got).unwrap_or_default())?;
        remaining -= got as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /sameas?iri=http%3A%2F%2Fa%2Fb&threshold=0.5 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sameas");
        assert_eq!(req.query_param("iri"), Some("http://a/b"));
        assert_eq!(req.query_param("threshold"), Some("0.5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body() {
        let req = parse(
            "POST /align HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nleft=a.snap",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"left=a.snap");
        assert!(req.wants_close());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.http10);
        assert!(req.wants_close());
        let keep = parse("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!keep.wants_close());
        let eleven = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert!(!eleven.wants_close());
    }

    #[test]
    fn closed_connection_is_distinguished() {
        assert!(matches!(parse(""), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(
            parse("BLARGH\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        // Unimplemented transfer codings must be refused, not read as an
        // empty body (keep-alive desynchronization).
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn percent_decoding_handles_edge_cases() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%C3%A9"), "é");
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, true).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Connection: keep-alive"));
        assert!(s.ends_with("\r\n\r\n{}"));
        assert!(!s.contains("Allow:"));
    }

    #[test]
    fn if_none_match_matching() {
        let parse_with = |value: &str| {
            parse(&format!(
                "GET /stats HTTP/1.1\r\nIf-None-Match: {value}\r\n\r\n"
            ))
            .unwrap()
        };
        assert!(parse_with("\"abc\"").if_none_match_matches("\"abc\""));
        assert!(parse_with("abc").if_none_match_matches("\"abc\""));
        assert!(parse_with("\"x\", \"abc\"").if_none_match_matches("\"abc\""));
        assert!(parse_with("*").if_none_match_matches("\"whatever\""));
        assert!(!parse_with("\"abc\"").if_none_match_matches("\"def\""));
        let bare = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert!(!bare.if_none_match_matches("\"abc\""));
    }

    #[test]
    fn etag_and_not_modified_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_etag("\"00ff\"")
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("\r\nETag: \"00ff\"\r\n"), "{s}");

        let mut out = Vec::new();
        Response::not_modified("\"00ff\"")
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 304 Not Modified\r\n"), "{s}");
        assert!(s.contains("Content-Length: 0\r\n"), "{s}");
        assert!(s.contains("ETag: \"00ff\""), "{s}");
        assert!(s.ends_with("\r\n\r\n"), "no body: {s}");
    }

    #[test]
    fn file_streaming_frames_and_copies() {
        let path = std::env::temp_dir().join("paris_http_stream_unit.bin");
        let payload: Vec<u8> = (0..200_000u32).map(|i| i as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let mut out = Vec::new();
        Response::file_stream(file, payload.len() as u64)
            .with_etag("\"aa\"")
            .write_to(&mut out, false)
            .unwrap();
        let header_end = out.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let head = String::from_utf8_lossy(&out[..header_end]);
        assert!(
            head.contains("Content-Type: application/octet-stream"),
            "{head}"
        );
        assert!(
            head.contains(&format!("Content-Length: {}", payload.len())),
            "{head}"
        );
        assert_eq!(&out[header_end..], &payload[..], "body streamed intact");

        // A file shorter than the advertised length aborts the write.
        let file = std::fs::File::open(&path).unwrap();
        let err = Response::file_stream(file, payload.len() as u64 + 1)
            .write_to(&mut Vec::new(), false)
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("Warning", "299 - \"deprecated\"")
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("\r\nWarning: 299 - \"deprecated\"\r\n"), "{s}");
    }

    #[test]
    fn method_not_allowed_carries_allow_header() {
        let mut out = Vec::new();
        Response::json(405, "{\"error\":\"nope\"}")
            .with_allow("GET, POST")
            .write_to(&mut out, false)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"), "{s}");
        assert!(s.contains("\r\nAllow: GET, POST\r\n"), "{s}");
        assert!(s.contains("Content-Type: application/json"), "{s}");
    }
}
