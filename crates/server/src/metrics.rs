//! Server-side telemetry: the instrument set behind `GET /v1/metrics`
//! and the structured per-request log.
//!
//! Everything recorded on the request path is a relaxed atomic bump
//! against handles resolved **once at startup** — route and status
//! classes live in fixed arrays looked up by a `&'static str` scan, and
//! per-pair counters are created on a pair's first request and cached,
//! so the steady-state hot path neither allocates nor takes the registry
//! lock. Gauges (pair generations, resident bytes, replication lag) are
//! refreshed at scrape time instead of being maintained continuously.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::SystemTime;

use paris_obs as obs;

use crate::http::Request;
use crate::json;

/// Every route class the server exports metrics for. Requests are
/// classified by *path shape* (independent of the `/v1` prefix, so a
/// legacy alias and its v1 spelling share one series) and fall back to
/// `other` — the label set is bounded no matter what peers request.
pub(crate) const ROUTE_CLASSES: [&str; 17] = [
    "healthz",
    "pairs",
    "manifest",
    "sameas",
    "neighbors",
    "explain",
    "query",
    "stats",
    "diagnostics",
    "pair_healthz",
    "snapshot",
    "reload",
    "align",
    "jobs",
    "debug",
    "metrics",
    "other",
];

/// The route class of a request path (see [`ROUTE_CLASSES`]).
pub(crate) fn route_class(path: &str) -> &'static str {
    let p = match path.strip_prefix("/v1") {
        Some("") => "/",
        Some(rest) if rest.starts_with('/') => rest,
        _ => path,
    };
    if let Some(rest) = p.strip_prefix("/pairs/") {
        if rest == "manifest" {
            return "manifest";
        }
        return match rest.split_once('/').map(|(_, op)| op) {
            Some("sameas") => "sameas",
            Some("neighbors") => "neighbors",
            Some("explain") => "explain",
            Some("query") => "query",
            Some("stats") => "stats",
            Some("diagnostics") => "diagnostics",
            Some("healthz") => "pair_healthz",
            Some("snapshot") => "snapshot",
            Some("reload") => "reload",
            _ => "other",
        };
    }
    match p {
        "/pairs" => "pairs",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/align" => "align",
        "/stats" => "stats",
        "/sameas" => "sameas",
        "/neighbors" => "neighbors",
        "/reload" => "reload",
        _ if p.starts_with("/jobs/") => "jobs",
        _ if p == "/debug/traces"
            || p.starts_with("/debug/traces/")
            || p == "/debug/profile"
            || p == "/debug/runs" =>
        {
            "debug"
        }
        _ => "other",
    }
}

/// The pair a request path addresses, if it names one explicitly.
pub(crate) fn pair_of(path: &str) -> Option<&str> {
    let p = path.strip_prefix("/v1").unwrap_or(path);
    let rest = p.strip_prefix("/pairs/")?;
    let name = rest.split('/').next().unwrap_or("");
    (!name.is_empty() && name != "manifest").then_some(name)
}

/// The request-path instrument set, fully resolved at construction.
pub(crate) struct ServerMetrics {
    pub(crate) registry: obs::Registry,
    /// `(class, request counter, latency histogram)` — one row per
    /// [`ROUTE_CLASSES`] entry, scanned linearly (16 entries).
    routes: Vec<(&'static str, Arc<obs::Counter>, Arc<obs::Histogram>)>,
    /// Status classes `2xx`..`5xx` (everything else lands in `other`).
    status: Vec<(&'static str, Arc<obs::Counter>)>,
    /// Per-pair request counters, created on a pair's first request.
    pair_requests: RwLock<HashMap<String, Arc<obs::Counter>>>,
    /// Conditional-`GET` cache outcomes: `304` answered vs. `ETag`-bearing
    /// `200` served in full.
    pub(crate) etag_hits: Arc<obs::Counter>,
    pub(crate) etag_misses: Arc<obs::Counter>,
    /// Seed of generated request ids (process-unique enough: start time
    /// nanos mixed with the pid).
    id_seed: u64,
    id_counter: AtomicU64,
}

impl ServerMetrics {
    pub(crate) fn new() -> ServerMetrics {
        let registry = obs::Registry::new();
        let routes = ROUTE_CLASSES
            .iter()
            .map(|&class| {
                let labels = &[("route", class)];
                (
                    class,
                    registry.counter(
                        "paris_route_requests_total",
                        "Requests served, by route class.",
                        labels,
                    ),
                    registry.histogram(
                        "paris_route_latency_microseconds",
                        "Request handling latency in microseconds, by route class.",
                        labels,
                    ),
                )
            })
            .collect();
        let status = ["2xx", "3xx", "4xx", "5xx", "other"]
            .iter()
            .map(|&class| {
                (
                    class,
                    registry.counter(
                        "paris_responses_total",
                        "Responses sent, by status class.",
                        &[("class", class)],
                    ),
                )
            })
            .collect();
        let etag_hits = registry.counter(
            "paris_etag_hits_total",
            "Cacheable requests answered 304 from the client's validator.",
            &[],
        );
        let etag_misses = registry.counter(
            "paris_etag_misses_total",
            "Cacheable requests served in full (ETag attached).",
            &[],
        );
        let id_seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ (u64::from(std::process::id()) << 32);
        ServerMetrics {
            registry,
            routes,
            status,
            pair_requests: RwLock::new(HashMap::new()),
            etag_hits,
            etag_misses,
            id_seed,
            id_counter: AtomicU64::new(0),
        }
    }

    /// Records one finished request against its route class, status
    /// class, latency histogram, and (when the path names one) pair.
    pub(crate) fn record(&self, class: &'static str, status: u16, latency_us: u64) {
        for (c, counter, histogram) in &self.routes {
            if *c == class {
                counter.inc();
                histogram.record(latency_us);
                break;
            }
        }
        let status_class = match status {
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            500..=599 => "5xx",
            _ => "other",
        };
        for (c, counter) in &self.status {
            if *c == status_class {
                counter.inc();
                break;
            }
        }
    }

    /// The request counter of one pair. Steady state is a read-locked
    /// borrowed-key lookup; the write path runs once per pair name.
    pub(crate) fn pair_counter(&self, pair: &str) -> Arc<obs::Counter> {
        if let Some(c) = self
            .pair_requests
            .read()
            .expect("pair counters poisoned")
            .get(pair)
        {
            return Arc::clone(c);
        }
        let counter = self.registry.counter(
            "paris_pair_requests_total",
            "Requests addressed to a pair explicitly, by pair.",
            &[("pair", pair)],
        );
        self.pair_requests
            .write()
            .expect("pair counters poisoned")
            .insert(pair.to_owned(), Arc::clone(&counter));
        counter
    }

    /// The response's `X-Request-Id`: the client's own id echoed back
    /// when it sent a sane one, else a fresh `seed-serial` id.
    pub(crate) fn request_id(&self, req: &Request) -> String {
        if let Some(id) = req.header("x-request-id") {
            let sane = !id.is_empty()
                && id.len() <= 64
                && id
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'));
            if sane {
                return id.to_owned();
            }
        }
        let n = self.id_counter.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{n:x}", self.id_seed as u32)
    }
}

/// Shape of the per-request log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// No request logging (the library/test default).
    Off,
    /// One human-readable `key=value` line per request.
    Text,
    /// One JSON object per line (machine-ingestable).
    Json,
}

impl LogFormat {
    /// Parses a `--log-format` value.
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "off" => Some(LogFormat::Off),
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// The structured request log: one line per finished request, written to
/// stderr by default (swap the destination with
/// [`Server::set_log_output`](crate::Server::set_log_output)). Each line
/// is rendered into one buffer and written with a single locked call, so
/// concurrent workers never interleave partial lines.
pub(crate) struct RequestLog {
    format: LogFormat,
    out: Mutex<Box<dyn Write + Send>>,
}

impl RequestLog {
    pub(crate) fn new(format: LogFormat) -> Option<RequestLog> {
        if format == LogFormat::Off {
            return None;
        }
        Some(RequestLog {
            format,
            out: Mutex::new(Box::new(std::io::stderr())),
        })
    }

    pub(crate) fn set_output(&self, w: Box<dyn Write + Send>) {
        *self.out.lock().expect("request log poisoned") = w;
    }

    /// Writes one request line. Log I/O failures are swallowed — losing
    /// a log line must never fail the request that produced it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write(
        &self,
        id: &str,
        method: &str,
        path: &str,
        pair: Option<&str>,
        status: u16,
        bytes: u64,
        latency_us: u64,
    ) {
        let ts_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let line = match self.format {
            LogFormat::Off => return,
            LogFormat::Text => {
                let pair = pair.unwrap_or("-");
                format!(
                    "ts_ms={ts_ms} id={id} method={method} path={path} pair={pair} \
                     status={status} bytes={bytes} latency_us={latency_us}\n"
                )
            }
            LogFormat::Json => {
                let mut obj = json::Object::new()
                    .int("ts_ms", ts_ms)
                    .str("id", id)
                    .str("method", method)
                    .str("path", path);
                if let Some(pair) = pair {
                    obj = obj.str("pair", pair);
                }
                let mut line = obj
                    .int("status", u64::from(status))
                    .int("bytes", bytes)
                    .int("latency_us", latency_us)
                    .build();
                line.push('\n');
                line
            }
        };
        // The request log is an append-only stream; the lock IS the
        // serialization point for interleaving-free lines.
        // audit:allow(no-lock-across-call): writes are line-buffered
        let mut out = self.out.lock().expect("request log poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }

    /// Writes one `--slow-ms` slow-request line, carrying the pair the
    /// path addresses (when it names one) and the trace id (when
    /// tracing is on) so the operator can jump straight to
    /// `GET /v1/debug/traces/<trace>` for the span tree.
    pub(crate) fn write_slow(
        &self,
        id: &str,
        method: &str,
        path: &str,
        pair: Option<&str>,
        latency_us: u64,
        trace: Option<&str>,
    ) {
        let line = match self.format {
            LogFormat::Off => return,
            LogFormat::Text => {
                let pair = pair.unwrap_or("-");
                let trace = trace.unwrap_or("-");
                format!(
                    "slow_request id={id} method={method} path={path} pair={pair} \
                     latency_us={latency_us} trace={trace}\n"
                )
            }
            LogFormat::Json => {
                let mut obj = json::Object::new()
                    .str("event", "slow_request")
                    .str("id", id)
                    .str("method", method)
                    .str("path", path);
                if let Some(pair) = pair {
                    obj = obj.str("pair", pair);
                }
                obj = obj.int("latency_us", latency_us);
                if let Some(trace) = trace {
                    obj = obj.str("trace", trace);
                }
                let mut line = obj.build();
                line.push('\n');
                line
            }
        };
        // The request log is an append-only stream; the lock IS the
        // serialization point for interleaving-free lines.
        // audit:allow(no-lock-across-call): writes are line-buffered
        let mut out = self.out.lock().expect("request log poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_classification_ignores_the_v1_prefix() {
        for (path, class) in [
            ("/healthz", "healthz"),
            ("/v1/healthz", "healthz"),
            ("/v1/metrics", "metrics"),
            ("/pairs", "pairs"),
            ("/v1/pairs", "pairs"),
            ("/v1/pairs/manifest", "manifest"),
            ("/pairs/movies/sameas", "sameas"),
            ("/v1/pairs/movies/sameas", "sameas"),
            ("/v1/pairs/movies/query", "query"),
            ("/v1/pairs/movies/healthz", "pair_healthz"),
            ("/v1/pairs/movies/snapshot", "snapshot"),
            ("/sameas", "sameas"),
            ("/stats", "stats"),
            ("/reload", "reload"),
            ("/v1/jobs/3", "jobs"),
            ("/v1/pairs/movies/diagnostics", "diagnostics"),
            ("/v1/debug/traces", "debug"),
            ("/v1/debug/traces/0af7651916cd43dd8448eb211c80319c", "debug"),
            ("/v1/debug/profile", "debug"),
            ("/v1/debug/runs", "debug"),
            ("/v1/pairs/movies", "other"),
            ("/nope", "other"),
        ] {
            assert_eq!(route_class(path), class, "{path}");
            assert!(ROUTE_CLASSES.contains(&route_class(path)), "{path}");
        }
    }

    #[test]
    fn pair_extraction() {
        assert_eq!(pair_of("/v1/pairs/movies/sameas"), Some("movies"));
        assert_eq!(pair_of("/pairs/movies/stats"), Some("movies"));
        assert_eq!(pair_of("/v1/pairs/manifest"), None);
        assert_eq!(pair_of("/v1/healthz"), None);
        assert_eq!(pair_of("/sameas"), None);
    }

    #[test]
    fn request_ids_echo_sane_client_ids_only() {
        let m = ServerMetrics::new();
        let req = |id: Option<&str>| Request {
            method: "GET".into(),
            path: "/healthz".into(),
            query: Vec::new(),
            headers: id
                .map(|v| vec![("x-request-id".to_owned(), v.to_owned())])
                .unwrap_or_default(),
            body: Vec::new(),
            http10: false,
        };
        assert_eq!(m.request_id(&req(Some("abc-123.X"))), "abc-123.X");
        // Injection attempts and garbage get a generated id instead.
        let generated = m.request_id(&req(Some("evil\r\nSet-Cookie: x")));
        assert_ne!(generated, "evil\r\nSet-Cookie: x");
        let a = m.request_id(&req(None));
        let b = m.request_id(&req(None));
        assert_ne!(a, b, "generated ids must be distinct");
    }

    #[test]
    fn record_touches_route_and_status_series() {
        let m = ServerMetrics::new();
        m.record("sameas", 200, 120);
        m.record("sameas", 404, 80);
        m.record("metrics", 200, 10);
        assert_eq!(
            m.registry
                .counter_value("paris_route_requests_total", &[("route", "sameas")]),
            Some(2)
        );
        assert_eq!(
            m.registry
                .counter_value("paris_responses_total", &[("class", "4xx")]),
            Some(1)
        );
        assert_eq!(
            m.registry
                .counter_value("paris_responses_total", &[("class", "2xx")]),
            Some(2)
        );
        m.pair_counter("movies").inc();
        m.pair_counter("movies").inc();
        assert_eq!(
            m.registry
                .counter_value("paris_pair_requests_total", &[("pair", "movies")]),
            Some(2)
        );
    }

    #[test]
    fn log_lines_render_both_formats() {
        let log = RequestLog::new(LogFormat::Json).unwrap();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        log.set_output(Box::new(Sink(Arc::clone(&buf))));
        log.write("id1", "GET", "/v1/healthz", None, 200, 42, 17);
        log.write("id2", "GET", "/v1/pairs/m/sameas", Some("m"), 404, 9, 3);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":\"id1\""), "{}", lines[0]);
        assert!(lines[0].contains("\"status\":200"), "{}", lines[0]);
        assert!(lines[1].contains("\"pair\":\"m\""), "{}", lines[1]);
        assert!(lines[1].contains("\"latency_us\":3"), "{}", lines[1]);

        assert!(RequestLog::new(LogFormat::Off).is_none());
        assert_eq!(LogFormat::parse("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("bogus"), None);
    }
}
