//! # The alignment-serving daemon (`paris serve`)
//!
//! The seed reproduced PARIS as a batch CLI: parse two RDF files, align,
//! print, exit. This crate is the serving half of the system: a
//! long-lived HTTP/1.1 daemon that loads an aligned-pair snapshot
//! (computed once by `paris snapshot`) and answers alignment queries from
//! an [`Arc`]-shared, immutable, fully-indexed in-memory image —
//! startup in milliseconds, reads without locks.
//!
//! Built entirely on `std::net` (the workspace takes no external
//! dependencies): a fixed pool of worker threads pulls accepted
//! connections from a channel and speaks the minimal HTTP/1.1 subset in
//! [`http`].
//!
//! ## Endpoints
//!
//! | route | method | answer |
//! |---|---|---|
//! | `/healthz` | GET | liveness + uptime |
//! | `/stats` | GET | KB + alignment statistics |
//! | `/sameas?iri=…[&side=left\|right][&threshold=θ]` | GET | best match of an instance, with score |
//! | `/neighbors?iri=…[&side=…][&limit=n]` | GET | facts around an entity |
//! | `/align` | POST | enqueue a batch job over two single-KB snapshots |
//! | `/jobs/<id>` | GET | job status / outcome |

pub mod http;
pub mod jobs;
pub mod json;

use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use paris_core::AlignedPairSnapshot;
use paris_kb::{EntityId, Kb, KbStats};

use http::{ParseError, Request, Response};
use jobs::{JobRequest, JobStore};

pub use jobs::{JobOutcome, JobState};

/// Server tuning knobs.
///
/// **Trust model:** the daemon has no authentication. `POST /align`
/// makes the server read and write server-local snapshot paths named by
/// the client, so it is only safe for trusted peers — keep the default
/// loopback bind, or disable the endpoint (`enable_jobs: false` /
/// `paris serve --no-jobs`) before exposing the read-only query routes
/// more widely.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Whether `POST /align` (filesystem-touching batch jobs) is served.
    pub enable_jobs: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".to_owned(),
            threads: 4,
            enable_jobs: true,
        }
    }
}

/// Shared immutable serving state: the snapshot plus counters.
struct ServeState {
    snapshot: AlignedPairSnapshot,
    /// Assigned KB-1 instances, computed once at bind time — the snapshot
    /// is immutable, so `/stats` must not rescan the assignment per hit.
    aligned_instances: usize,
    /// Pre-rendered KB statistics (also immutable, also per-hit otherwise).
    kb1_stats_json: String,
    kb2_stats_json: String,
    started: Instant,
    requests: AtomicU64,
    jobs: Arc<JobStore>,
    /// Whether `POST /align` is served (see [`ServerConfig::enable_jobs`]).
    jobs_enabled: bool,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread (used by tests and
/// benches; production callers use [`Server::run`]).
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Worker threads
    /// finish their in-flight connection and exit.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds the listener and prepares the shared state.
    pub fn bind(snapshot: AlignedPairSnapshot, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let aligned_instances = snapshot.alignment.instance_pairs(&snapshot.kb1).len();
        let kb1_stats_json = kb_stats_json(&snapshot.kb1);
        let kb2_stats_json = kb_stats_json(&snapshot.kb2);
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                snapshot,
                aligned_instances,
                kb1_stats_json,
                kb2_stats_json,
                started: Instant::now(),
                requests: AtomicU64::new(0),
                jobs: Arc::new(JobStore::new()),
                jobs_enabled: config.enable_jobs,
            }),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves `:0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until shut down.
    ///
    /// Connections are handed to a fixed pool of worker threads over a
    /// channel; each worker serves its connection keep-alive style until
    /// the client closes.
    pub fn run(self) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.config.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("paris-serve-worker-{i}"))
                    .spawn(move || loop {
                        let conn = match rx.lock().expect("worker queue lock").recv() {
                            Ok(c) => c,
                            Err(_) => return, // acceptor gone: shut down
                        };
                        serve_connection(&state, conn);
                    })
                    .expect("spawning worker thread")
            })
            .collect();

        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    // If every worker died the channel is closed; stop.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Transient accept failures (aborted handshakes, fd
                // exhaustion under a connection burst) must not bring the
                // daemon down; back off briefly and keep serving.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Starts [`run`](Self::run) on a background thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::Builder::new()
            .name("paris-serve-acceptor".to_owned())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// How long a worker waits for (the next) request on a connection before
/// reclaiming itself. Without this, `threads` idle connections would pin
/// the whole fixed pool forever.
const IDLE_CONNECTION_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

fn serve_connection(state: &ServeState, stream: TcpStream) {
    // Responses are written in one buffered flush; disabling Nagle keeps
    // keep-alive request/response turnarounds from hitting the delayed-ACK
    // stall (~40 ms per exchange on Linux).
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_CONNECTION_TIMEOUT));
    let peer_writable = stream.try_clone();
    let Ok(write_half) = peer_writable else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        match http::read_request(&mut reader) {
            Ok(request) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let keep_alive = !request.wants_close();
                let response = route(state, &request);
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Io(_)) => return,
            Err(ParseError::Malformed(msg)) => {
                let body = json::Object::new().str("error", &msg).build();
                let _ = Response::json(400, body).write_to(&mut writer, false);
                return;
            }
        }
    }
}

// ----------------------------------------------------------------------
// Routing
// ----------------------------------------------------------------------

fn route(state: &ServeState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/stats") => stats(state),
        ("GET", "/sameas") => sameas(state, req),
        ("GET", "/neighbors") => neighbors(state, req),
        ("POST", "/align") => submit_align(state, req),
        ("GET", path) if path.starts_with("/jobs/") => job_status(state, &path["/jobs/".len()..]),
        ("GET", _) => error(404, &format!("no such route {}", req.path)),
        (method, _) => error(405, &format!("method {method} not supported")),
    }
}

fn error(status: u16, message: &str) -> Response {
    Response::json(status, json::Object::new().str("error", message).build())
}

fn healthz(state: &ServeState) -> Response {
    Response::json(
        200,
        json::Object::new()
            .str("status", "ok")
            .num("uptime_seconds", state.started.elapsed().as_secs_f64())
            .int("requests", state.requests.load(Ordering::Relaxed))
            .build(),
    )
}

fn kb_stats_json(kb: &Kb) -> String {
    let s = KbStats::of(kb);
    json::Object::new()
        .str("name", &s.name)
        .int("instances", s.instances as u64)
        .int("classes", s.classes as u64)
        .int("relations", s.relations as u64)
        .int("facts", s.facts as u64)
        .int("literals", s.literals as u64)
        .build()
}

fn stats(state: &ServeState) -> Response {
    let alignment = &state.snapshot.alignment;
    Response::json(
        200,
        json::Object::new()
            .raw("kb1", state.kb1_stats_json.clone())
            .raw("kb2", state.kb2_stats_json.clone())
            .int("aligned_instances", state.aligned_instances as u64)
            .int(
                "instance_equivalences",
                alignment.num_instance_pairs() as u64,
            )
            .int("literal_pairs", alignment.literal_pairs as u64)
            .int("iterations", alignment.iterations.len() as u64)
            .bool("converged", alignment.converged)
            .int("jobs_submitted", state.jobs.submitted())
            .build(),
    )
}

/// Which KB an `iri` query refers to.
enum Side {
    Left,
    Right,
}

fn parse_side(req: &Request) -> Result<Side, Response> {
    match req.query_param("side") {
        None | Some("left") => Ok(Side::Left),
        Some("right") => Ok(Side::Right),
        Some(other) => Err(error(
            400,
            &format!("side must be left or right, not '{other}'"),
        )),
    }
}

fn require_iri(req: &Request) -> Result<&str, Response> {
    req.query_param("iri")
        .filter(|s| !s.is_empty())
        .ok_or_else(|| error(400, "missing required query parameter 'iri'"))
}

fn sameas(state: &ServeState, req: &Request) -> Response {
    let iri = match require_iri(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let side = match parse_side(req) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let threshold: f64 = match req.query_param("threshold").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(0.0),
        Err(_) => return error(400, "threshold must be a number"),
    };

    let snap = &state.snapshot;
    let (dst, best): (&Kb, Option<(EntityId, f64)>) = match side {
        Side::Left => {
            let Some(x) = snap.kb1.entity_by_iri(iri) else {
                return error(404, &format!("unknown IRI {iri} in {}", snap.kb1.name()));
            };
            (&snap.kb2, snap.alignment.best_match(x))
        }
        Side::Right => {
            let Some(x2) = snap.kb2.entity_by_iri(iri) else {
                return error(404, &format!("unknown IRI {iri} in {}", snap.kb2.name()));
            };
            (&snap.kb1, snap.alignment.best_match_rev(x2))
        }
    };
    match best.filter(|&(_, p)| p >= threshold) {
        Some((e, p)) => {
            let matched = dst
                .iri(e)
                .map(|i| i.as_str().to_owned())
                .unwrap_or_default();
            Response::json(
                200,
                json::Object::new()
                    .str("iri", iri)
                    .str("sameas", &matched)
                    .num("score", p)
                    .build(),
            )
        }
        None => Response::json(
            200,
            json::Object::new()
                .str("iri", iri)
                .raw("sameas", "null")
                .num("score", 0.0)
                .build(),
        ),
    }
}

fn neighbors(state: &ServeState, req: &Request) -> Response {
    let iri = match require_iri(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let side = match parse_side(req) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let limit: usize = match req.query_param("limit").map(str::parse).transpose() {
        Ok(l) => l.unwrap_or(50),
        Err(_) => return error(400, "limit must be an integer"),
    };
    let kb: &Kb = match side {
        Side::Left => &state.snapshot.kb1,
        Side::Right => &state.snapshot.kb2,
    };
    let Some(e) = kb.entity_by_iri(iri) else {
        return error(404, &format!("unknown IRI {iri} in {}", kb.name()));
    };
    let facts = kb.facts(e);
    let rendered = facts.iter().take(limit).map(|&(r, y)| {
        json::Object::new()
            .str("relation", kb.relation_iri(r).as_str())
            .bool("inverse", r.is_inverse())
            .str("value", &kb.term(y).to_string())
            .num("functionality", kb.functionality(r))
            .build()
    });
    Response::json(
        200,
        json::Object::new()
            .str("iri", iri)
            .int("total_facts", facts.len() as u64)
            .raw("facts", json::array(rendered))
            .build(),
    )
}

fn submit_align(state: &ServeState, req: &Request) -> Response {
    if !state.jobs_enabled {
        return error(
            403,
            "alignment jobs are disabled on this server (--no-jobs)",
        );
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return error(400, "body must be UTF-8 form data"),
    };
    let params = http::parse_query(body.trim());
    let get = |name: &str| {
        params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .filter(|v| !v.is_empty())
    };
    let (Some(left), Some(right)) = (get("left"), get("right")) else {
        return error(
            400,
            "POST /align needs 'left' and 'right' snapshot paths (form-encoded)",
        );
    };
    let max_iterations = match get("max_iterations")
        .map(|v| v.parse::<usize>())
        .transpose()
    {
        Ok(v) => v,
        Err(_) => return error(400, "max_iterations must be an integer"),
    };
    let id = state.jobs.submit(JobRequest {
        left,
        right,
        out: get("out"),
        max_iterations,
    });
    Response::json(
        202,
        json::Object::new()
            .int("job", id)
            .str("poll", &format!("/jobs/{id}"))
            .build(),
    )
}

fn job_status(state: &ServeState, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return error(400, "job id must be an integer");
    };
    let Some(job) = state.jobs.get(id) else {
        return error(404, &format!("no job {id}"));
    };
    let mut obj = json::Object::new()
        .int("job", id)
        .str("status", job.label());
    match job {
        JobState::Done(outcome) => {
            obj = obj
                .int("aligned_instances", outcome.aligned_instances as u64)
                .int("iterations", outcome.iterations as u64)
                .bool("converged", outcome.converged)
                .num("seconds", outcome.seconds);
            if let Some(out) = &outcome.out_path {
                obj = obj.str("out", out);
            }
        }
        JobState::Failed(message) => obj = obj.str("error", &message),
        JobState::Queued | JobState::Running => {}
    }
    Response::json(200, obj.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_core::{Aligner, OwnedAlignment, ParisConfig};
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn tiny_snapshot() -> AlignedPairSnapshot {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..3 {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
        }
        let (kb1, kb2) = (a.build(), b.build());
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        AlignedPairSnapshot::new(kb1, kb2, owned)
    }

    fn state() -> ServeState {
        let snapshot = tiny_snapshot();
        let aligned_instances = snapshot.alignment.instance_pairs(&snapshot.kb1).len();
        let kb1_stats_json = kb_stats_json(&snapshot.kb1);
        let kb2_stats_json = kb_stats_json(&snapshot.kb2);
        ServeState {
            snapshot,
            aligned_instances,
            kb1_stats_json,
            kb2_stats_json,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            jobs: Arc::new(JobStore::new()),
            jobs_enabled: true,
        }
    }

    fn get(path_and_query: &str) -> Request {
        let (path, q) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, http::parse_query(q)),
            None => (path_and_query, Vec::new()),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            query: q,
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        }
    }

    #[test]
    fn healthz_and_stats_respond() {
        let s = state();
        assert_eq!(route(&s, &get("/healthz")).status, 200);
        let stats = route(&s, &get("/stats"));
        assert_eq!(stats.status, 200);
        let body = String::from_utf8(stats.body).unwrap();
        assert!(body.contains("\"aligned_instances\":3"), "{body}");
    }

    #[test]
    fn sameas_finds_the_alignment() {
        let s = state();
        let r = route(&s, &get("/sameas?iri=http://a/p1"));
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("http://b/q1"), "{body}");

        let rev = route(&s, &get("/sameas?iri=http://b/q2&side=right"));
        let body = String::from_utf8(rev.body).unwrap();
        assert!(body.contains("http://a/p2"), "{body}");
    }

    #[test]
    fn sameas_threshold_suppresses_match() {
        let s = state();
        let r = route(&s, &get("/sameas?iri=http://a/p1&threshold=1.01"));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"sameas\":null"), "{body}");
    }

    #[test]
    fn unknown_iri_is_404() {
        let s = state();
        assert_eq!(route(&s, &get("/sameas?iri=http://a/nope")).status, 404);
        assert_eq!(route(&s, &get("/sameas")).status, 400);
        assert_eq!(
            route(&s, &get("/sameas?iri=http://a/p0&side=middle")).status,
            400
        );
    }

    #[test]
    fn neighbors_lists_facts() {
        let s = state();
        let r = route(&s, &get("/neighbors?iri=http://a/p0"));
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("http://a/email"), "{body}");
        assert!(body.contains("p0@x.org"), "{body}");
    }

    #[test]
    fn unknown_route_and_method() {
        let s = state();
        assert_eq!(route(&s, &get("/nope")).status, 404);
        let mut del = get("/stats");
        del.method = "DELETE".into();
        assert_eq!(route(&s, &del).status, 405);
    }

    #[test]
    fn align_requires_paths() {
        let s = state();
        let mut post = get("/align");
        post.method = "POST".into();
        post.body = b"left=".to_vec();
        assert_eq!(route(&s, &post).status, 400);
    }

    #[test]
    fn disabled_jobs_refuse_align() {
        let mut s = state();
        s.jobs_enabled = false;
        let mut post = get("/align");
        post.method = "POST".into();
        post.body = b"left=a.snap&right=b.snap".to_vec();
        let r = route(&s, &post);
        assert_eq!(r.status, 403);
        assert_eq!(s.jobs.submitted(), 0);
        // Read-only routes keep working.
        assert_eq!(route(&s, &get("/healthz")).status, 200);
    }

    #[test]
    fn job_status_validation() {
        let s = state();
        assert_eq!(route(&s, &get("/jobs/abc")).status, 400);
        assert_eq!(route(&s, &get("/jobs/7")).status, 404);
    }
}
